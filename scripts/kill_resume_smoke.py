#!/usr/bin/env python
"""Kill-and-resume smoke test, exercised at the CLI level.

Three runs of the same spec:

1. an uninterrupted run with a SQLite store (the reference);
2. a run against a second store that is SIGKILLed as soon as its first
   checkpoint lands (before any result is written);
3. ``run-spec --resume`` against the killed store.

The resumed run must reproduce the uninterrupted run's result exactly —
summary, series, spec hash — and the two stores must hold identical
per-URL records (fetch timestamps included). This is the paper's
"incremental crawler you can stop and restart" property, end to end.

The same three-step dance then repeats for a *sharded* spec
(``engine="sharded"``, two shards in two worker processes): the SIGKILL
lands on the coordinator once any shard has checkpointed (workers die
with it via PDEATHSIG), and the resume must replay completed shards from
their stored results, resume interrupted ones from their namespaced
checkpoints, and merge to the uninterrupted run's exact result.

Two failure-injection phases then harden the story further:

* **corrupted checkpoint** — a run is killed after its *second*
  checkpoint, the latest checkpoint's stored bytes are flipped, and the
  resume must detect the damage via the integrity checksum, fall back to
  the demoted previous snapshot, and still reproduce the uninterrupted
  result exactly;
* **worker SIGKILL** — a sharded run loses one of its *worker
  processes* (not the coordinator) to SIGKILL mid-crawl; the coordinator
  must detect the silent death, re-run the shard from its store, and
  finish with the uninterrupted run's exact result — no resume
  invocation involved.

Run from the repository root:

    PYTHONPATH=src python scripts/kill_resume_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SPEC = {
    "name": "kill-resume-smoke",
    "kind": "crawl",
    "web": {
        "site_scale": 0.08,
        "pages_per_site": 30,
        "horizon_days": 127.0,
        "new_page_fraction": 0.25,
        "seed": 42,
    },
    "crawler": {
        "kind": "incremental",
        "collection_capacity": 200,
        "crawl_budget_per_day": 2000.0,
        "duration_days": 60.0,
        "measurement_interval_days": 0.5,
        "track_quality": True,
        "storage": "sqlite",
        "checkpoint_every": 1.0,
    },
}

SHARDED_SPEC = {
    "name": "kill-resume-smoke-sharded",
    "kind": "crawl",
    "web": {
        "site_scale": 0.08,
        "pages_per_site": 30,
        "horizon_days": 127.0,
        "new_page_fraction": 0.25,
        "seed": 42,
    },
    "crawler": {
        "kind": "incremental",
        "engine": "sharded",
        "shards": 2,
        "workers": 2,
        "collection_capacity": 200,
        "crawl_budget_per_day": 1500.0,
        "duration_days": 30.0,
        "measurement_interval_days": 0.5,
        "track_quality": True,
        "storage": "sqlite",
        "checkpoint_every": 1.0,
    },
}

POLL_SECONDS = 0.02
KILL_TIMEOUT_SECONDS = 120.0


def cli_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def run_spec(spec_path: str, *extra: str) -> None:
    subprocess.run(
        [sys.executable, "-m", "repro", "run-spec", spec_path, *extra],
        cwd=REPO,
        env=cli_env(),
        check=True,
        stdout=subprocess.DEVNULL,
    )


def state_keys(store: str) -> set:
    """State-table keys currently in the store ('' set while unreadable)."""
    try:
        conn = sqlite3.connect(f"file:{store}?mode=ro", uri=True, timeout=0.1)
    except sqlite3.OperationalError:
        return set()
    try:
        rows = conn.execute("SELECT key FROM state").fetchall()
    except sqlite3.OperationalError:
        return set()
    finally:
        conn.close()
    return {key for (key,) in rows}


def records_table(store: str) -> list:
    conn = sqlite3.connect(f"file:{store}?mode=ro", uri=True)
    try:
        return conn.execute(
            "SELECT url, fetched_at, first_fetched_at, visit_count,"
            " change_count, checksum, importance FROM records ORDER BY url"
        ).fetchall()
    finally:
        conn.close()


def result_doc(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="kill-resume-smoke-")
    spec_path = os.path.join(tmp, "spec.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(SPEC, handle)
    store_a = os.path.join(tmp, "uninterrupted.sqlite")
    store_b = os.path.join(tmp, "killed.sqlite")
    out_a = os.path.join(tmp, "a.json")
    out_b = os.path.join(tmp, "b.json")

    print("[1/3] uninterrupted run ...")
    run_spec(spec_path, "--store", store_a, "--out", out_a, "--compact")

    print("[2/3] run to first checkpoint, then SIGKILL ...")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run-spec", spec_path,
         "--store", store_b, "--out", out_b, "--compact"],
        cwd=REPO,
        env=cli_env(),
        stdout=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + KILL_TIMEOUT_SECONDS
    killed = False
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                "FAIL: the run finished before its first checkpoint could be "
                "observed; enlarge the spec so the kill window exists"
            )
        keys = state_keys(store_b)
        if "result" in keys:
            raise SystemExit(
                "FAIL: result row appeared before the kill; the run was "
                "too fast for this machine"
            )
        if "checkpoint" in keys:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            killed = True
            break
        time.sleep(POLL_SECONDS)
    if not killed:
        proc.kill()
        proc.wait()
        raise SystemExit("FAIL: no checkpoint observed before the timeout")
    assert proc.returncode == -signal.SIGKILL, proc.returncode
    keys_after_kill = state_keys(store_b)
    assert "checkpoint" in keys_after_kill and "result" not in keys_after_kill
    assert not os.path.exists(out_b), "killed run must not have written a result"
    print(f"      killed mid-run (returncode {proc.returncode})")

    print("[3/3] resume from the checkpoint ...")
    run_spec(spec_path, "--store", store_b, "--resume", "--out", out_b, "--compact")

    a = result_doc(out_a)
    b = result_doc(out_b)
    for key in ("name", "kind", "summary", "series"):
        if a[key] != b[key]:
            raise SystemExit(f"FAIL: resumed run differs from uninterrupted in {key!r}")
    if a["provenance"]["spec_hash"] != b["provenance"]["spec_hash"]:
        raise SystemExit("FAIL: spec hash mismatch between runs")

    rows_a = records_table(store_a)
    rows_b = records_table(store_b)
    if rows_a != rows_b:
        raise SystemExit(
            "FAIL: the two stores hold different records "
            f"({len(rows_a)} vs {len(rows_b)} rows)"
        )

    print(
        f"PASS: resumed run is bit-identical to the uninterrupted run "
        f"({len(rows_a)} records, mean freshness "
        f"{a['summary']['mean_freshness']:.4f})"
    )

    sharded_phase(tmp)
    corrupted_checkpoint_phase(tmp, out_a)
    worker_kill_phase(tmp)
    return 0


def shard_store_paths(base: str, n_shards: int) -> list:
    return [f"{base}.shard{k:02d}" for k in range(n_shards)]


def any_shard_checkpoint(base: str, n_shards: int) -> bool:
    for k, path in enumerate(shard_store_paths(base, n_shards)):
        if f"shard{k:02d}/checkpoint" in state_keys(path):
            return True
    return False


def shard_records(base: str, n_shards: int) -> list:
    rows = []
    for path in shard_store_paths(base, n_shards):
        rows.extend(records_table(path))
    return sorted(rows)


def sharded_phase(tmp: str) -> None:
    """SIGKILL a two-shard, two-worker run and resume it bit-identically."""
    n_shards = SHARDED_SPEC["crawler"]["shards"]
    spec_path = os.path.join(tmp, "sharded_spec.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(SHARDED_SPEC, handle)
    store_c = os.path.join(tmp, "sharded_uninterrupted.sqlite")
    store_d = os.path.join(tmp, "sharded_killed.sqlite")
    out_c = os.path.join(tmp, "c.json")
    out_d = os.path.join(tmp, "d.json")

    print("[1/3] uninterrupted sharded run ...")
    run_spec(spec_path, "--store", store_c, "--out", out_c, "--compact")

    print("[2/3] sharded run to a shard checkpoint, then SIGKILL the coordinator ...")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run-spec", spec_path,
         "--store", store_d, "--out", out_d, "--compact"],
        cwd=REPO,
        env=cli_env(),
        stdout=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + KILL_TIMEOUT_SECONDS
    killed = False
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                "FAIL: the sharded run finished before any shard checkpoint "
                "could be observed; enlarge the spec so the kill window exists"
            )
        if "result" in state_keys(store_d):
            raise SystemExit(
                "FAIL: merged result appeared before the kill; the run was "
                "too fast for this machine"
            )
        if any_shard_checkpoint(store_d, n_shards):
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            killed = True
            break
        time.sleep(POLL_SECONDS)
    if not killed:
        proc.kill()
        proc.wait()
        raise SystemExit("FAIL: no shard checkpoint observed before the timeout")
    assert proc.returncode == -signal.SIGKILL, proc.returncode
    assert "result" not in state_keys(store_d)
    assert not os.path.exists(out_d), "killed run must not have written a result"
    # The workers carry PR_SET_PDEATHSIG: killing the coordinator reaps
    # them, so the resumed run never races orphans for the shard stores.
    # Give the kernel a moment to deliver the signal before resuming.
    time.sleep(0.5)
    print(f"      killed mid-run (returncode {proc.returncode})")

    print("[3/3] resume the sharded run from the per-shard stores ...")
    run_spec(spec_path, "--store", store_d, "--resume", "--out", out_d, "--compact")

    c = result_doc(out_c)
    d = result_doc(out_d)
    for key in ("name", "kind", "summary", "series"):
        if c[key] != d[key]:
            raise SystemExit(
                f"FAIL: resumed sharded run differs from uninterrupted in {key!r}"
            )
    if c["provenance"]["spec_hash"] != d["provenance"]["spec_hash"]:
        raise SystemExit("FAIL: spec hash mismatch between sharded runs")

    rows_c = shard_records(store_c, n_shards)
    rows_d = shard_records(store_d, n_shards)
    if rows_c != rows_d:
        raise SystemExit(
            "FAIL: the sharded stores hold different records "
            f"({len(rows_c)} vs {len(rows_d)} rows)"
        )

    print(
        f"PASS: resumed sharded run is bit-identical to the uninterrupted "
        f"run ({len(rows_c)} records across {n_shards} shard stores, mean "
        f"freshness {c['summary']['mean_freshness']:.4f})"
    )


def corrupt_state_value(store: str, key: str) -> None:
    """Flip one byte in the middle of a stored state document."""
    conn = sqlite3.connect(store)
    try:
        row = conn.execute(
            "SELECT value FROM state WHERE key = ?", (key,)
        ).fetchone()
        assert row is not None, f"no state row {key!r} to corrupt"
        value = row[0]
        mid = len(value) // 2
        flipped = value[:mid] + ("0" if value[mid] != "0" else "1") + value[mid + 1:]
        assert flipped != value
        conn.execute("UPDATE state SET value = ? WHERE key = ?", (flipped, key))
        conn.commit()
    finally:
        conn.close()


def corrupted_checkpoint_phase(tmp: str, out_reference: str) -> None:
    """Corrupt the latest checkpoint; the resume must use the previous one.

    The run is killed only after ``checkpoint_prev`` exists (the second
    save demotes the first), then the *current* checkpoint's stored bytes
    are flipped. The integrity checksum must catch the damage and the
    resume fall back to the previous snapshot — bit-identical to having
    crashed one checkpoint earlier, hence to the uninterrupted run.
    """
    spec_path = os.path.join(tmp, "spec.json")  # written by main()
    store = os.path.join(tmp, "corrupted.sqlite")
    out = os.path.join(tmp, "corrupted.json")

    print("[corrupt 1/3] run to the second checkpoint, then SIGKILL ...")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run-spec", spec_path,
         "--store", store, "--out", out, "--compact"],
        cwd=REPO,
        env=cli_env(),
        stdout=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + KILL_TIMEOUT_SECONDS
    killed = False
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                "FAIL: the run finished before its second checkpoint could "
                "be observed; enlarge the spec so the kill window exists"
            )
        keys = state_keys(store)
        if "result" in keys:
            raise SystemExit("FAIL: result row appeared before the kill")
        if "checkpoint_prev" in keys:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            killed = True
            break
        time.sleep(POLL_SECONDS)
    if not killed:
        proc.kill()
        proc.wait()
        raise SystemExit("FAIL: no second checkpoint observed before the timeout")

    print("[corrupt 2/3] flip a byte inside the latest checkpoint ...")
    corrupt_state_value(store, "checkpoint")

    print("[corrupt 3/3] resume; must fall back to the previous snapshot ...")
    run_spec(spec_path, "--store", store, "--resume", "--out", out, "--compact")

    a = result_doc(out_reference)
    b = result_doc(out)
    for key in ("name", "kind", "summary", "series"):
        if a[key] != b[key]:
            raise SystemExit(
                "FAIL: resume after checkpoint corruption differs from the "
                f"uninterrupted run in {key!r}"
            )
    print(
        "PASS: corrupted checkpoint detected, previous snapshot resumed "
        f"bit-identically (mean freshness {b['summary']['mean_freshness']:.4f})"
    )


def worker_pids(coordinator_pid: int) -> list:
    """PIDs of spawn worker children of ``coordinator_pid`` (no trackers)."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "rb") as handle:
                stat = handle.read()
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read()
        except OSError:
            continue
        # stat: pid (comm) state ppid ... — comm may contain spaces.
        ppid = int(stat[stat.rindex(b")") + 2:].split()[1])
        if ppid == coordinator_pid and b"spawn_main" in cmdline:
            pids.append(int(entry))
    return pids


def worker_kill_phase(tmp: str) -> None:
    """SIGKILL one shard *worker*; the coordinator must recover in-flight.

    Unlike the coordinator-kill phase there is no resume invocation: the
    coordinator notices the silently dead worker, re-runs its shard from
    the shard store (checkpoint or start-over), and the merged result must
    still equal the uninterrupted sharded run bit for bit.
    """
    n_shards = SHARDED_SPEC["crawler"]["shards"]
    spec_path = os.path.join(tmp, "sharded_spec.json")  # written by sharded_phase
    out_reference = os.path.join(tmp, "c.json")
    store = os.path.join(tmp, "worker_killed.sqlite")
    out = os.path.join(tmp, "worker_killed.json")

    print("[worker-kill 1/2] sharded run; SIGKILL one worker mid-crawl ...")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run-spec", spec_path,
         "--store", store, "--out", out, "--compact"],
        cwd=REPO,
        env=cli_env(),
        stdout=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + KILL_TIMEOUT_SECONDS
    victim = None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                "FAIL: the sharded run finished before a worker could be "
                "killed; enlarge the spec so the kill window exists"
            )
        if any_shard_checkpoint(store, n_shards):
            for pid in worker_pids(proc.pid):
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    continue
                victim = pid
                break
            if victim is not None:
                break
        time.sleep(POLL_SECONDS)
    if victim is None:
        proc.kill()
        proc.wait()
        raise SystemExit("FAIL: no worker process found to kill before the timeout")
    print(f"      killed worker pid {victim}; waiting for the coordinator ...")

    returncode = proc.wait()
    if returncode != 0:
        raise SystemExit(
            f"FAIL: coordinator exited with {returncode} instead of "
            "recovering the killed worker"
        )

    print("[worker-kill 2/2] compare against the uninterrupted sharded run ...")
    c = result_doc(out_reference)
    d = result_doc(out)
    for key in ("name", "kind", "summary", "series"):
        if c[key] != d[key]:
            raise SystemExit(
                "FAIL: worker-kill recovery differs from the uninterrupted "
                f"sharded run in {key!r}"
            )
    rows_c = shard_records(os.path.join(tmp, "sharded_uninterrupted.sqlite"), n_shards)
    rows_d = shard_records(store, n_shards)
    if rows_c != rows_d:
        raise SystemExit(
            "FAIL: the sharded stores hold different records after worker-kill "
            f"recovery ({len(rows_c)} vs {len(rows_d)} rows)"
        )
    print(
        "PASS: coordinator recovered the SIGKILLed worker bit-identically "
        f"({len(rows_d)} records, mean freshness "
        f"{d['summary']['mean_freshness']:.4f})"
    )


if __name__ == "__main__":
    raise SystemExit(main())
