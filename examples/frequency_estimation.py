"""Estimating how often a page changes (Section 5.3, estimators EP and EB).

The UpdateModule only observes one bit per visit — "did the checksum change
since last time?" — and must infer the page's change rate from that. The
estimators are pluggable: this example resolves both of them by their
registered names (``"ep"`` and ``"eb"``, see
:data:`repro.api.ESTIMATORS`) — exactly the way a crawler config or an
experiment spec does — and shows:

* how the naive estimate (changes detected / observation time) saturates for
  pages that change faster than the visit interval (Figure 1(a));
* how the bias-corrected EP estimator recovers the true rate, with a
  confidence interval that narrows as more visits accumulate;
* how the Bayesian EB estimator's posterior over frequency classes evolves
  visit by visit, reproducing the paper's example ("if the UpdateModule
  learns that page p1 did not change for one month, it increases P{p1 in CM}
  and decreases P{p1 in CW}").

Run with:

    python examples/frequency_estimation.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.api import ESTIMATORS
from repro.estimation.change_history import ChangeHistory
from repro.estimation.poisson_estimator import naive_rate_estimate


def simulate_visits(rate: float, n_visits: int, visit_interval: float,
                    rng: np.random.Generator) -> ChangeHistory:
    """Simulate daily checksum comparisons against a Poisson page."""
    history = ChangeHistory(first_visit=0.0)
    time = 0.0
    for _ in range(n_visits):
        time += visit_interval
        changed = rng.random() < 1.0 - np.exp(-rate * visit_interval)
        history.record_visit(time, changed)
    return history


def demonstrate_ep() -> None:
    """Naive vs bias-corrected EP estimates across true change rates."""
    rng = np.random.default_rng(42)
    estimator = ESTIMATORS.create("ep").estimator
    rows = []
    for true_rate in (0.05, 0.2, 0.5, 1.0, 3.0):
        history = simulate_visits(true_rate, n_visits=180, visit_interval=1.0, rng=rng)
        naive = naive_rate_estimate(history.n_changes, history.observation_time)
        estimate = estimator.estimate(history)
        rows.append(
            (
                f"{true_rate:.2f}",
                f"{naive:.3f}",
                f"{estimate.rate:.3f}",
                f"[{estimate.lower:.3f}, "
                f"{'inf' if estimate.upper == float('inf') else f'{estimate.upper:.3f}'}]",
            )
        )
    print(format_table(
        ["true rate (1/day)", "naive estimate", "EP estimate", "EP 95% interval"],
        rows,
        title="EP: daily visits detect at most one change per day, so the naive "
              "estimate saturates",
    ))


def demonstrate_eb() -> None:
    """EB posterior evolution for a page that stops changing."""
    # The registered "eb" strategy keeps one Bayesian estimator per page;
    # ask it for the page we are about to monitor.
    estimator = ESTIMATORS.create("eb").estimator_for("http://example.com/p1")
    print("\nEB: posterior over frequency classes for a page observed daily")
    rng = np.random.default_rng(7)
    # The page changes roughly weekly for a month, then goes quiet.
    observations = []
    for day in range(1, 91):
        if day <= 30:
            changed = rng.random() < 1.0 - np.exp(-1.0 / 7.0)
        else:
            changed = False
        observations.append(changed)
    rows = []
    rows.append(("day 0 (prior)",) + tuple(
        f"{p:.2f}" for p in estimator.posterior().values()
    ))
    for day, changed in enumerate(observations, start=1):
        estimator.observe(1.0, changed)
        if day in (30, 60, 90):
            rows.append((f"day {day}",) + tuple(
                f"{p:.2f}" for p in estimator.posterior().values()
            ))
    class_names = [c.name for c in estimator.classes]
    print(format_table(["checkpoint"] + class_names, rows,
                       title="posterior P{page belongs to class}"))
    print(f"most likely class after 90 days: {estimator.most_likely_class().name} "
          f"(expected interval {estimator.expected_interval():.0f} days)")


def main() -> None:
    demonstrate_ep()
    demonstrate_eb()


if __name__ == "__main__":
    main()
