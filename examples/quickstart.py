"""Quickstart: crawl an evolving synthetic web with the incremental crawler.

This example declares the whole experiment — the synthetic web, the
incremental crawler and its policy choices — as an
:class:`~repro.api.specs.ExperimentSpec`, runs it through the unified
:func:`repro.api.run` entry point, and prints the freshness and quality of
the resulting collection, together with a few of the change-frequency
estimates the UpdateModule learned along the way. The same spec serialized
to JSON (``spec.to_json()``) can be run from the command line with
``python -m repro run-spec``.

Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.report import format_series, format_table
from repro.api import CrawlerSpec, ExperimentSpec, PolicySpec, WebSpec, run


def main() -> None:
    # 1. Declare the experiment: web, crawler and policy choices are data.
    spec = ExperimentSpec(
        name="quickstart/incremental-crawl",
        kind="crawl",
        web=WebSpec(
            site_scale=0.05,        # ~13 sites with the Table 1 domain mix
            pages_per_site=30,
            horizon_days=60.0,
            seed=7,
        ),
        crawler=CrawlerSpec(
            kind="incremental",
            collection_capacity=200,
            crawl_budget_per_day=500.0,
            duration_days=45.0,
            ranking_interval_days=3.0,  # PageRank refinement scan cadence
            measurement_interval_days=1.0,
        ),
        policy=PolicySpec(
            revisit_policy="optimal",   # the Figure 9 allocation
            estimator="ep",             # Poisson change-rate estimator
        ),
    )

    # 2. Run it through the unified runner.
    result = run(spec)
    web = result.artifacts["web"]
    crawler = result.artifacts["crawler"]
    print(f"synthetic web: {web.n_sites} sites, {web.n_pages} pages, "
          f"mean change rate {web.mean_change_rate():.2f} changes/day")
    print(f"spec hash: {result.spec_hash[:12]}  seed: {result.seed}")

    # 3. Report what happened.
    outcome = result.artifacts["outcome"]
    print()
    print(format_table(
        ["metric", "value"],
        [
            ("pages fetched", result.summary["pages_crawled"]),
            ("changes detected", result.summary["changes_detected"]),
            ("pages replaced by the RankingModule", result.summary["pages_replaced"]),
            ("collection size", result.summary["collection_size"]),
            ("mean freshness", f"{result.summary['mean_freshness']:.3f}"),
            ("steady-state freshness (after day 15)",
             f"{outcome.freshness.after(15.0).mean_freshness():.3f}"),
            ("final collection quality", f"{result.summary['final_quality']:.3f}"),
        ],
        title="incremental crawl summary",
    ))

    print()
    print(format_series(result.series["times"], result.series["freshness"],
                        x_label="day", y_label="freshness",
                        title="collection freshness over time", max_points=15))

    # 4. Peek at what the UpdateModule learned about individual pages.
    estimates = sorted(
        crawler.update_module.estimated_rates().items(), key=lambda kv: -kv[1]
    )[:5]
    print()
    print(format_table(
        ["url", "estimated changes/day", "true changes/day"],
        [
            (url, f"{rate:.2f}", f"{web.page(url).change_process.mean_rate:.2f}")
            for url, rate in estimates
        ],
        title="fastest-changing pages according to the EP estimator",
    ))


if __name__ == "__main__":
    main()
