"""Quickstart: crawl an evolving synthetic web with the incremental crawler.

This example builds a small synthetic web calibrated to the paper's
measurements, runs the Section 5 incremental crawler against it for a month
of virtual time, and prints the freshness and quality of the resulting
collection, together with a few of the change-frequency estimates the
UpdateModule learned along the way.

Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import IncrementalCrawler, IncrementalCrawlerConfig, WebGeneratorConfig, generate_web
from repro.analysis.report import format_series, format_table


def main() -> None:
    # 1. Build a synthetic evolving web (the stand-in for the live web).
    web = generate_web(
        WebGeneratorConfig(
            site_scale=0.05,        # ~13 sites with the Table 1 domain mix
            pages_per_site=30,
            horizon_days=60.0,
            seed=7,
        )
    )
    print(f"synthetic web: {web.n_sites} sites, {web.n_pages} pages, "
          f"mean change rate {web.mean_change_rate():.2f} changes/day")

    # 2. Configure and run the incremental crawler.
    crawler = IncrementalCrawler(
        web,
        IncrementalCrawlerConfig(
            collection_capacity=200,
            crawl_budget_per_day=500.0,
            revisit_policy="optimal",   # the Figure 9 allocation
            estimator="ep",             # Poisson change-rate estimator
            ranking_interval_days=3.0,  # PageRank refinement scan cadence
            measurement_interval_days=1.0,
        ),
    )
    result = crawler.run(duration_days=45.0)

    # 3. Report what happened.
    print()
    print(format_table(
        ["metric", "value"],
        [
            ("pages fetched", result.pages_crawled),
            ("changes detected", result.changes_detected),
            ("pages replaced by the RankingModule", result.pages_replaced),
            ("collection size", len(crawler.collection.current_records())),
            ("mean freshness", f"{result.mean_freshness():.3f}"),
            ("steady-state freshness (after day 15)",
             f"{result.freshness.after(15.0).mean_freshness():.3f}"),
            ("final collection quality", f"{result.final_quality():.3f}"),
        ],
        title="incremental crawl summary",
    ))

    print()
    times, freshness = result.freshness.as_series()
    print(format_series(list(times), list(freshness), x_label="day",
                        y_label="freshness", title="collection freshness over time",
                        max_points=15))

    # 4. Peek at what the UpdateModule learned about individual pages.
    estimates = sorted(
        crawler.update_module.estimated_rates().items(), key=lambda kv: -kv[1]
    )[:5]
    print()
    print(format_table(
        ["url", "estimated changes/day", "true changes/day"],
        [
            (url, f"{rate:.2f}", f"{web.page(url).change_process.mean_rate:.2f}")
            for url, rate in estimates
        ],
        title="fastest-changing pages according to the EP estimator",
    ))


if __name__ == "__main__":
    main()
