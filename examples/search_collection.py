"""Serve queries from the crawled collection (in-place vs. shadowed index).

The paper notes that the crawled collection typically feeds an indexer, and
that the choice between in-place updates and shadowing also shows up there:
with in-place updates the index is maintained incrementally and newly
fetched pages are searchable immediately, while with shadowing the index is
rebuilt from the shadow collection and swapped in at the end of each crawl
cycle.

This example declares an incremental crawl as an
:class:`~repro.api.specs.ExperimentSpec`, runs it through
:func:`repro.api.run`, builds an inverted index over the resulting
collection both ways, and compares what a user searching the index sees.

Run with:

    python examples/search_collection.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.api import CrawlerSpec, ExperimentSpec, PolicySpec, WebSpec, run
from repro.storage.inverted_index import InvertedIndex


def main() -> None:
    result = run(ExperimentSpec(
        name="example/search-collection",
        kind="crawl",
        web=WebSpec(site_scale=0.04, pages_per_site=25, horizon_days=40.0, seed=31),
        crawler=CrawlerSpec(
            kind="incremental",
            collection_capacity=150,
            crawl_budget_per_day=400.0,
            duration_days=30.0,
            measurement_interval_days=2.0,
            track_quality=False,
        ),
        policy=PolicySpec(revisit_policy="optimal"),
    ))
    records = result.artifacts["crawler"].collection.current_records()
    print(f"collection holds {len(records)} pages after 30 days of incremental crawling")

    # In-place style: the index is maintained incrementally as pages are
    # (re)fetched; here we replay that by adding every current record.
    live_index = InvertedIndex()
    for record in records:
        live_index.add_document(record.url, record.content)

    # Shadowing style: a fresh index is built from scratch in one batch, the
    # way an indexer would process the shadow collection at the end of a
    # crawl cycle.
    rebuilt_index = InvertedIndex.build(
        (record.url, record.content) for record in records
    )

    print(format_table(
        ["property", "incrementally maintained", "rebuilt from scratch"],
        [
            ("indexed documents", live_index.n_documents, rebuilt_index.n_documents),
            ("distinct terms", live_index.n_terms, rebuilt_index.n_terms),
        ],
        title="index maintenance disciplines",
    ))

    for query in ("news update", "research project", "product catalog"):
        results = live_index.search(query, limit=3)
        rows = [(url, f"{score:.3f}") for url, score in results]
        print()
        print(format_table(["url", "score"], rows, title=f'results for "{query}"'))


if __name__ == "__main__":
    main()
