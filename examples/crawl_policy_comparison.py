"""Compare crawl-policy design choices (Section 4, Table 2 and Figure 10).

The script runs three declarative experiments through :func:`repro.api.run`:

* the ``"table2"`` scenario — the four combinations of crawling mode
  (steady vs. batch) and update discipline (in-place vs. shadowing) with
  the paper's Table 2 parameters;
* the ``"revisit-policies"`` scenario — fixed, proportional and
  freshness-optimal revisit frequencies on a page population drawn from the
  calibrated domain mix;
* two ``"crawl"`` experiments — the incremental and periodic crawler
  archetypes of Figure 10, end to end against the same synthetic web.

Run with:

    python examples/crawl_policy_comparison.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.api import CrawlerSpec, ExperimentSpec, PolicySpec, WebSpec, run
from repro.api.runner import build_web


def compare_table2_policies() -> None:
    """Table 2: the four design-choice combinations."""
    result = run(ExperimentSpec(
        name="example/table2", kind="scenario", scenario="table2",
        params={"simulate": False},
    ))
    paper, analytic = result.tables["paper"], result.tables["analytic"]
    rows = [
        (name, f"{paper[name]:.2f}", f"{analytic[name]:.3f}") for name in paper
    ]
    print(format_table(["policy", "paper", "this reproduction"], rows,
                       title="Table 2: freshness of the current collection"))


def compare_revisit_policies() -> None:
    """Section 4.3: fixed vs proportional vs optimal revisit frequencies."""
    result = run(ExperimentSpec(
        name="example/revisit-policies", kind="scenario",
        scenario="revisit-policies",
        params={"n_pages": 300, "rates_seed": 3, "simulate": False},
    ))
    analytic = result.tables["analytic"]
    labels = {
        "uniform": "fixed frequency",
        "proportional": "proportional to change rate",
        "optimal": "freshness-optimal (variable)",
    }
    baseline = analytic["uniform"]
    rows = [
        (labels[name], f"{freshness:.3f}",
         f"{100 * (freshness - baseline) / baseline:+.1f}%")
        for name, freshness in analytic.items()
    ]
    print()
    print(format_table(
        ["revisit policy", "expected freshness", "vs fixed frequency"], rows,
        title="Section 4.3: revisit-frequency policies "
              "(paper cites a 10-23% gain for the optimal policy)",
    ))


def compare_crawler_archetypes() -> None:
    """Figure 10: incremental vs periodic crawler on the same evolving web."""
    web_spec = WebSpec(site_scale=0.05, pages_per_site=25, horizon_days=70.0, seed=23)
    web = build_web(web_spec)  # shared by both crawlers, generated once
    capacity, cycle = 150, 10.0
    average_budget = 4.0 * capacity / cycle

    incremental = run(ExperimentSpec(
        name="example/incremental", kind="crawl", web=web_spec,
        crawler=CrawlerSpec(
            kind="incremental",
            collection_capacity=capacity,
            crawl_budget_per_day=average_budget,
            duration_days=60.0,
            ranking_interval_days=5.0,
            measurement_interval_days=1.0,
            track_quality=True,
        ),
        policy=PolicySpec(revisit_policy="optimal"),
    ), web=web)
    periodic = run(ExperimentSpec(
        name="example/periodic", kind="crawl", web=web_spec,
        crawler=CrawlerSpec(
            kind="periodic",
            collection_capacity=capacity,
            crawl_budget_per_day=average_budget * 4,
            duration_days=60.0,
            cycle_days=cycle,
            measurement_interval_days=1.0,
            track_quality=True,
        ),
    ), web=web)

    inc_outcome = incremental.artifacts["outcome"]
    per_outcome = periodic.artifacts["outcome"]
    rows = [
        ("mean freshness (after first cycle)",
         f"{inc_outcome.freshness.after(cycle).mean_freshness():.3f}",
         f"{per_outcome.freshness.after(cycle).mean_freshness():.3f}"),
        ("final collection quality",
         f"{incremental.summary['final_quality']:.3f}",
         f"{periodic.summary['final_quality']:.3f}"),
        ("peak crawl speed (pages/day)",
         f"{average_budget:.0f}", f"{average_budget * 4:.0f}"),
    ]
    print()
    print(format_table(
        ["metric", "incremental crawler", "periodic crawler"], rows,
        title="Figure 10: the two crawler archetypes on the same evolving web",
    ))


def main() -> None:
    compare_table2_policies()
    compare_revisit_policies()
    compare_crawler_archetypes()


if __name__ == "__main__":
    main()
