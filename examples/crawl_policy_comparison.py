"""Compare crawl-policy design choices (Section 4, Table 2 and Figure 10).

The script evaluates the four combinations of crawling mode (steady vs.
batch) and update discipline (in-place vs. shadowing) with the paper's
Table 2 parameters, then compares the three revisit-frequency policies
(fixed, proportional, freshness-optimal) on a page population drawn from
the calibrated domain mix, and finally runs the two crawler archetypes of
Figure 10 end to end against the same synthetic web.

Run with:

    python examples/crawl_policy_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.core.periodic_crawler import PeriodicCrawler, PeriodicCrawlerConfig
from repro.freshness.analytic import time_averaged_freshness
from repro.freshness.optimal_allocation import (
    optimal_revisit_frequencies,
    proportional_revisit_frequencies,
    total_freshness,
    uniform_revisit_frequencies,
)
from repro.simulation.scenarios import (
    PAPER_TABLE2_FRESHNESS,
    paper_table2_policies,
    table2_scenario_rate,
)
from repro.simweb.domains import DOMAIN_PROFILES, RATE_CLASSES
from repro.simweb.generator import WebGeneratorConfig, generate_web


def compare_table2_policies() -> None:
    """Table 2: the four design-choice combinations."""
    rate = table2_scenario_rate()
    rows = []
    for name, policy in paper_table2_policies().items():
        rows.append(
            (name, f"{PAPER_TABLE2_FRESHNESS[name]:.2f}",
             f"{time_averaged_freshness(policy, rate):.3f}")
        )
    print(format_table(["policy", "paper", "this reproduction"], rows,
                       title="Table 2: freshness of the current collection"))


def compare_revisit_policies() -> None:
    """Section 4.3: fixed vs proportional vs optimal revisit frequencies."""
    rng = np.random.default_rng(3)
    rates = []
    total_sites = sum(p.site_count for p in DOMAIN_PROFILES.values())
    for profile in DOMAIN_PROFILES.values():
        for _ in range(int(round(300 * profile.site_count / total_sites))):
            index = rng.choice(len(RATE_CLASSES), p=np.asarray(profile.rate_mixture))
            rates.append(RATE_CLASSES[index].rate_per_day)
    budget = len(rates) / 15.0

    allocations = {
        "fixed frequency": uniform_revisit_frequencies(rates, budget),
        "proportional to change rate": proportional_revisit_frequencies(rates, budget),
        "freshness-optimal (variable)": optimal_revisit_frequencies(rates, budget),
    }
    baseline = total_freshness(rates, allocations["fixed frequency"])
    rows = []
    for name, freqs in allocations.items():
        freshness = total_freshness(rates, freqs)
        rows.append(
            (name, f"{freshness:.3f}", f"{100 * (freshness - baseline) / baseline:+.1f}%")
        )
    print()
    print(format_table(
        ["revisit policy", "expected freshness", "vs fixed frequency"], rows,
        title="Section 4.3: revisit-frequency policies "
              "(paper cites a 10-23% gain for the optimal policy)",
    ))


def compare_crawler_archetypes() -> None:
    """Figure 10: incremental vs periodic crawler on the same evolving web."""
    web = generate_web(
        WebGeneratorConfig(site_scale=0.05, pages_per_site=25, horizon_days=70.0, seed=23)
    )
    capacity, cycle = 150, 10.0
    average_budget = 4.0 * capacity / cycle

    incremental = IncrementalCrawler(
        web,
        IncrementalCrawlerConfig(
            collection_capacity=capacity,
            crawl_budget_per_day=average_budget,
            revisit_policy="optimal",
            ranking_interval_days=5.0,
            measurement_interval_days=1.0,
            track_quality=True,
        ),
    )
    periodic = PeriodicCrawler(
        web,
        PeriodicCrawlerConfig(
            collection_capacity=capacity,
            crawl_budget_per_day=average_budget * 4,
            cycle_days=cycle,
            measurement_interval_days=1.0,
            track_quality=True,
        ),
    )
    incremental_result = incremental.run(60.0)
    periodic_result = periodic.run(60.0)
    rows = [
        ("mean freshness (after first cycle)",
         f"{incremental_result.freshness.after(cycle).mean_freshness():.3f}",
         f"{periodic_result.freshness.after(cycle).mean_freshness():.3f}"),
        ("final collection quality",
         f"{incremental_result.final_quality():.3f}",
         f"{periodic_result.final_quality():.3f}"),
        ("peak crawl speed (pages/day)",
         f"{average_budget:.0f}", f"{average_budget * 4:.0f}"),
    ]
    print()
    print(format_table(
        ["metric", "incremental crawler", "periodic crawler"], rows,
        title="Figure 10: the two crawler archetypes on the same evolving web",
    ))


def main() -> None:
    compare_table2_policies()
    compare_revisit_policies()
    compare_crawler_archetypes()


if __name__ == "__main__":
    main()
