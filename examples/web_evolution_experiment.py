"""Reproduce the Sections 2-3 web-evolution experiment end to end.

The whole pipeline — synthetic-web generation, "popular" site selection
with webmaster consent (Table 1), four months of daily monitoring
(Section 2.1), and the change-interval / lifespan / survival analyses — is
declared as a single ``"monitor"`` :class:`~repro.api.specs.ExperimentSpec`
and executed by :func:`repro.api.run`. The structured result carries the
Figure 2/4/5 tables; the observation log rides along in the artifacts for
the Section 3.4 Poisson-fit check.

Run with:

    python examples/web_evolution_experiment.py
"""

from __future__ import annotations

from repro.analysis.report import format_bar_chart, format_table
from repro.api import ExperimentSpec, WebSpec, run
from repro.experiment.poisson_fit import fit_poisson_model


def main() -> None:
    # --- Section 2: experimental setup ---------------------------------- #
    result = run(ExperimentSpec(
        name="example/web-evolution",
        kind="monitor",
        web=WebSpec(site_scale=0.08, pages_per_site=35, horizon_days=127.0, seed=11),
        params={
            "end_day": 126,
            "consent_rate": 270 / 400,   # Table 1: 270 of 400 webmasters agreed
            "selection_seed": 1,
        },
    ))
    print(format_table(
        ["domain", "monitored sites"],
        sorted(result.tables["monitored_sites_per_domain"].items()),
        title="Table 1: monitored sites per domain (synthetic web)",
    ))
    print(f"\nmonitored {result.summary['n_pages']} distinct pages over "
          f"{result.summary['duration_days']} days")

    # --- Section 3.1: how often does a page change? ---------------------- #
    print()
    print(format_bar_chart(result.tables["change_interval_fractions"],
                           title="Figure 2(a): average change interval of pages"))
    print(f"crude overall mean change interval: "
          f"{result.summary['mean_change_interval_days']:.0f} days (paper: ~4 months)")

    # --- Section 3.2: lifespan of pages ---------------------------------- #
    print()
    print(format_bar_chart(result.tables["lifespan_fractions"],
                           title="Figure 4(a): visible lifespan (Method 1)"))

    # --- Section 3.3: how long until 50% of the web changes? ------------- #
    print()
    rows = []
    for domain, half_day in result.tables["half_change_days"].items():
        rows.append((domain, "not reached" if half_day is None else f"{half_day:.0f} days"))
    print(format_table(["domain", "days until 50% changed"], rows,
                       title="Figure 5: time for half of the pages to change"))

    # --- Section 3.4: Poisson model check -------------------------------- #
    log = result.artifacts["log"]
    print()
    for target in (10.0, 20.0):
        fit = fit_poisson_model(log, target_interval_days=target)
        if fit.fit is None:
            print(f"{target:.0f}-day pages: too few observations for a fit")
            continue
        print(f"{target:.0f}-day pages: {fit.n_pages} pages, "
              f"{fit.n_intervals} intervals, fitted mean interval "
              f"{fit.fit.mean_interval:.1f} days, log-survival R^2 "
              f"{fit.fit.log_r_squared:.3f} "
              f"({'consistent with Poisson' if fit.looks_exponential else 'not exponential'})")


if __name__ == "__main__":
    main()
