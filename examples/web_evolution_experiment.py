"""Reproduce the Sections 2-3 web-evolution experiment end to end.

The script mirrors the paper's pipeline:

1. generate a synthetic web and select "popular" sites by site-level
   PageRank with webmaster consent (Table 1);
2. monitor a window of pages from each selected site daily for four months
   (Section 2.1);
3. analyse how often pages change (Figure 2), how long they stay visible
   (Figure 4), how fast the web as a whole changes (Figure 5), and whether
   a Poisson model fits the observed change intervals (Figure 6).

Run with:

    python examples/web_evolution_experiment.py
"""

from __future__ import annotations

from repro.analysis.report import format_bar_chart, format_table
from repro.experiment.change_interval import analyze_change_intervals
from repro.experiment.lifespan_analysis import analyze_lifespans
from repro.experiment.monitor import ActiveMonitor
from repro.experiment.poisson_fit import fit_poisson_model
from repro.experiment.site_selection import select_sites
from repro.experiment.survival import analyze_survival
from repro.simweb.generator import WebGeneratorConfig, generate_web


def main() -> None:
    # --- Section 2: experimental setup ---------------------------------- #
    web = generate_web(
        WebGeneratorConfig(site_scale=0.08, pages_per_site=35, horizon_days=127.0, seed=11)
    )
    selection = select_sites(web, n_candidates=web.n_sites, consent_rate=270 / 400, seed=1)
    print(format_table(
        ["domain", "monitored sites"],
        sorted(selection.domain_counts.items()),
        title="Table 1: monitored sites per domain (synthetic web)",
    ))

    monitor = ActiveMonitor(web, site_ids=selection.selected_site_ids)
    log = monitor.run(start_day=0, end_day=126)
    print(f"\nmonitored {log.n_pages} distinct pages over {log.duration_days} days")

    # --- Section 3.1: how often does a page change? ---------------------- #
    change = analyze_change_intervals(log)
    print()
    print(format_bar_chart(change.overall_fractions(),
                           title="Figure 2(a): average change interval of pages"))
    print(f"crude overall mean change interval: "
          f"{change.mean_interval_estimate_days:.0f} days (paper: ~4 months)")

    # --- Section 3.2: lifespan of pages ---------------------------------- #
    lifespan = analyze_lifespans(log)
    print()
    print(format_bar_chart(lifespan.method1_overall.labelled_fractions(),
                           title="Figure 4(a): visible lifespan (Method 1)"))

    # --- Section 3.3: how long until 50% of the web changes? ------------- #
    survival = analyze_survival(log)
    print()
    rows = []
    for domain, half_day in survival.half_change_days().items():
        rows.append((domain, "not reached" if half_day is None else f"{half_day:.0f} days"))
    print(format_table(["domain", "days until 50% changed"], rows,
                       title="Figure 5: time for half of the pages to change"))

    # --- Section 3.4: Poisson model check -------------------------------- #
    print()
    for target in (10.0, 20.0):
        fit = fit_poisson_model(log, target_interval_days=target)
        if fit.fit is None:
            print(f"{target:.0f}-day pages: too few observations for a fit")
            continue
        print(f"{target:.0f}-day pages: {fit.n_pages} pages, "
              f"{fit.n_intervals} intervals, fitted mean interval "
              f"{fit.fit.mean_interval:.1f} days, log-survival R^2 "
              f"{fit.fit.log_r_squared:.3f} "
              f"({'consistent with Poisson' if fit.looks_exponential else 'not exponential'})")


if __name__ == "__main__":
    main()
