"""Bucketed histograms matching the paper's figure axes.

The paper buckets the average change interval of a page (Figure 2) into

    <= 1 day, <= 1 week, <= 1 month, <= 4 months, > 4 months

and the visible lifespan of a page (Figure 4) into

    <= 1 week, <= 1 month, <= 4 months, > 4 months.

This module provides those bucket definitions (in days) and a small
``BucketedHistogram`` helper that turns raw per-page values into the
fraction-per-bucket representation used throughout the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

#: Number of days the paper uses for one month (the monitoring experiment ran
#: from February 17th to June 24th 1999, roughly four 30-day months).
DAYS_PER_MONTH = 30.0

#: Number of days in the "4 months" horizon of the experiment.
DAYS_PER_4_MONTHS = 4 * DAYS_PER_MONTH


@dataclass(frozen=True)
class Bucket:
    """A half-open interval ``(lower, upper]`` measured in days.

    ``lower`` may be 0 and ``upper`` may be ``float('inf')`` for the
    open-ended buckets at either extreme of the histograms.
    """

    label: str
    lower: float
    upper: float

    def contains(self, value: float) -> bool:
        """Return True when ``value`` falls in this bucket."""
        return self.lower < value <= self.upper

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


#: Buckets of the average change interval used by Figure 2.
CHANGE_INTERVAL_BUCKETS: Sequence[Bucket] = (
    Bucket("<=1day", 0.0, 1.0),
    Bucket(">1day,<=1week", 1.0, 7.0),
    Bucket(">1week,<=1month", 7.0, DAYS_PER_MONTH),
    Bucket(">1month,<=4months", DAYS_PER_MONTH, DAYS_PER_4_MONTHS),
    Bucket(">4months", DAYS_PER_4_MONTHS, float("inf")),
)

#: Buckets of the visible lifespan used by Figure 4.
LIFESPAN_BUCKETS: Sequence[Bucket] = (
    Bucket("<=1week", 0.0, 7.0),
    Bucket(">1week,<=1month", 7.0, DAYS_PER_MONTH),
    Bucket(">1month,<=4months", DAYS_PER_MONTH, DAYS_PER_4_MONTHS),
    Bucket(">4months", DAYS_PER_4_MONTHS, float("inf")),
)


class BucketedHistogram:
    """Histogram over a fixed sequence of :class:`Bucket` intervals.

    The histogram counts observations per bucket and exposes the fractions
    that the paper's bar charts plot. Values that fall below the first
    bucket's lower bound are counted in the first bucket (the paper cannot
    observe intervals shorter than its one-day sampling granularity, so the
    first bucket is effectively "at most one day").
    """

    def __init__(self, buckets: Sequence[Bucket]) -> None:
        if not buckets:
            raise ValueError("a histogram needs at least one bucket")
        self._buckets: List[Bucket] = list(buckets)
        self._counts: List[int] = [0] * len(self._buckets)
        self._total = 0

    @property
    def buckets(self) -> Sequence[Bucket]:
        """The bucket definitions, in order."""
        return tuple(self._buckets)

    @property
    def total(self) -> int:
        """Total number of observations added."""
        return self._total

    def add(self, value: float) -> None:
        """Add a single observation (in days)."""
        self._counts[self._bucket_index(value)] += 1
        self._total += 1

    def add_many(self, values: Iterable[float]) -> None:
        """Add every observation from ``values``."""
        for value in values:
            self.add(value)

    def counts(self) -> List[int]:
        """Raw counts per bucket, in bucket order."""
        return list(self._counts)

    def fractions(self) -> List[float]:
        """Fraction of observations per bucket (all zeros when empty)."""
        if self._total == 0:
            return [0.0] * len(self._buckets)
        return [count / self._total for count in self._counts]

    def labelled_fractions(self) -> Dict[str, float]:
        """Mapping from bucket label to fraction of observations."""
        return dict(zip((b.label for b in self._buckets), self.fractions()))

    def fraction_for(self, label: str) -> float:
        """Fraction of observations in the bucket named ``label``."""
        for bucket, fraction in zip(self._buckets, self.fractions()):
            if bucket.label == label:
                return fraction
        raise KeyError(f"no bucket labelled {label!r}")

    def merge(self, other: "BucketedHistogram") -> "BucketedHistogram":
        """Return a new histogram containing the counts of both operands.

        Both histograms must use identical bucket definitions.
        """
        if self.buckets != other.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        merged = BucketedHistogram(self._buckets)
        merged._counts = [a + b for a, b in zip(self._counts, other._counts)]
        merged._total = self._total + other._total
        return merged

    def _bucket_index(self, value: float) -> int:
        if value <= self._buckets[0].upper:
            return 0
        for index, bucket in enumerate(self._buckets):
            if bucket.contains(value):
                return index
        return len(self._buckets) - 1


def change_interval_histogram(values: Optional[Iterable[float]] = None) -> BucketedHistogram:
    """Create a Figure 2 style histogram, optionally pre-filled with ``values``."""
    histogram = BucketedHistogram(CHANGE_INTERVAL_BUCKETS)
    if values is not None:
        histogram.add_many(values)
    return histogram


def lifespan_histogram(values: Optional[Iterable[float]] = None) -> BucketedHistogram:
    """Create a Figure 4 style histogram, optionally pre-filled with ``values``."""
    histogram = BucketedHistogram(LIFESPAN_BUCKETS)
    if values is not None:
        histogram.add_many(values)
    return histogram
