"""Statistical helpers used by the experiment analysis and the benchmarks.

The paper verifies that page change intervals follow an exponential
distribution (Figure 6). The helpers here fit an exponential distribution to
observed intervals, compute simple goodness-of-fit measures, and provide
normal-approximation confidence intervals for means and Poisson rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ExponentialFit:
    """Result of fitting an exponential distribution to interval data.

    Attributes:
        rate: The maximum-likelihood rate (1 / mean interval).
        mean_interval: The observed mean interval.
        n_samples: Number of intervals used in the fit.
        log_r_squared: Coefficient of determination of the straight-line fit
            of ``log(survival)`` against the interval, which the paper's
            Figure 6 inspects visually (a perfect exponential gives 1.0).
        ks_statistic: Kolmogorov-Smirnov distance between the empirical CDF
            and the fitted exponential CDF.
    """

    rate: float
    mean_interval: float
    n_samples: int
    log_r_squared: float
    ks_statistic: float

    @property
    def is_plausibly_exponential(self) -> bool:
        """Loose check used by tests: the log-survival fit is nearly linear."""
        return self.log_r_squared >= 0.9 and self.ks_statistic <= 0.15


def fit_exponential(intervals: Sequence[float]) -> ExponentialFit:
    """Fit an exponential distribution to ``intervals`` (maximum likelihood).

    Args:
        intervals: Observed inter-change intervals, in days. Must be
            non-empty and strictly positive.

    Returns:
        An :class:`ExponentialFit` with the MLE rate and goodness-of-fit
        diagnostics.
    """
    data = np.asarray(list(intervals), dtype=float)
    if data.size == 0:
        raise ValueError("cannot fit an exponential distribution to no data")
    if np.any(data <= 0):
        raise ValueError("intervals must be strictly positive")
    mean_interval = float(np.mean(data))
    rate = 1.0 / mean_interval
    r_squared = _log_survival_r_squared(data)
    ks = kolmogorov_smirnov_exponential(data, rate)
    return ExponentialFit(
        rate=rate,
        mean_interval=mean_interval,
        n_samples=int(data.size),
        log_r_squared=r_squared,
        ks_statistic=ks,
    )


def _log_survival_r_squared(data: np.ndarray) -> float:
    """R-squared of a straight-line fit to the empirical log-survival curve.

    For exponential data, ``log P(T > t)`` is linear in ``t`` with slope
    ``-rate``; Figure 6 plots exactly this relationship on a log scale.
    """
    sorted_data = np.sort(data)
    n = sorted_data.size
    if n < 3:
        return 1.0
    # Empirical survival at each sorted point, excluding the final point
    # whose survival estimate is zero (log undefined).
    survival = 1.0 - np.arange(1, n + 1) / n
    mask = survival > 0
    x = sorted_data[mask]
    y = np.log(survival[mask])
    if x.size < 2 or np.allclose(x, x[0]):
        return 1.0
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        return 1.0
    return max(0.0, 1.0 - ss_res / ss_tot)


def kolmogorov_smirnov_exponential(intervals: Sequence[float], rate: float) -> float:
    """Kolmogorov-Smirnov distance between data and an Exponential(rate) CDF.

    Args:
        intervals: Observed intervals.
        rate: Rate of the reference exponential distribution.

    Returns:
        The maximum absolute difference between the empirical CDF and the
        exponential CDF, a number in [0, 1].
    """
    data = np.sort(np.asarray(list(intervals), dtype=float))
    if data.size == 0:
        raise ValueError("cannot compute a KS statistic with no data")
    n = data.size
    cdf = 1.0 - np.exp(-rate * data)
    upper = np.arange(1, n + 1) / n
    lower = np.arange(0, n) / n
    return float(max(np.max(np.abs(upper - cdf)), np.max(np.abs(cdf - lower))))


def exponential_goodness_of_fit(
    intervals: Sequence[float], rate: float, n_bins: int = 10
) -> float:
    """Chi-square style goodness-of-fit statistic against Exponential(rate).

    Intervals are bucketed into ``n_bins`` equal-probability bins of the
    reference distribution; the statistic is the normalised sum of squared
    deviations of observed from expected counts. Smaller is better; zero
    means a perfect fit.

    Args:
        intervals: Observed intervals.
        rate: Rate of the reference exponential distribution.
        n_bins: Number of equal-probability bins.

    Returns:
        The chi-square statistic divided by the sample size (a scale-free
        measure of misfit).
    """
    data = np.asarray(list(intervals), dtype=float)
    if data.size == 0:
        raise ValueError("cannot compute goodness of fit with no data")
    if rate <= 0:
        raise ValueError("rate must be positive")
    # Equal-probability bin edges of the exponential distribution.
    probabilities = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    edges = -np.log(1.0 - probabilities) / rate
    observed, _ = np.histogram(data, bins=np.concatenate(([0.0], edges, [np.inf])))
    expected = data.size / n_bins
    chi_square = float(np.sum((observed - expected) ** 2 / expected))
    return chi_square / data.size


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Normal-approximation confidence interval for the mean of ``values``.

    Args:
        values: Sample values.
        confidence: Two-sided confidence level, e.g. 0.95.

    Returns:
        A tuple ``(mean, lower, upper)``.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot compute a confidence interval with no data")
    mean = float(np.mean(data))
    if data.size == 1:
        return mean, mean, mean
    std_error = float(np.std(data, ddof=1) / math.sqrt(data.size))
    z = normal_quantile(0.5 + confidence / 2.0)
    return mean, mean - z * std_error, mean + z * std_error


def normal_quantile(p: float) -> float:
    """Inverse CDF of the standard normal distribution (Acklam's method).

    Args:
        p: Probability in (0, 1).

    Returns:
        The value ``z`` such that ``Phi(z) = p``.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be strictly between 0 and 1")
    # Coefficients for the rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    p_high = 1.0 - p_low
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def poisson_rate_confidence_interval(
    n_events: int, exposure: float, confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Confidence interval for a Poisson rate from an event count.

    Uses the normal approximation on the square-root (variance-stabilising)
    scale, which behaves reasonably even for small counts.

    Args:
        n_events: Number of events observed.
        exposure: Total observation time (same unit as the rate's inverse).
        confidence: Two-sided confidence level.

    Returns:
        A tuple ``(rate, lower, upper)`` with ``lower >= 0``.
    """
    if exposure <= 0:
        raise ValueError("exposure must be positive")
    if n_events < 0:
        raise ValueError("event count cannot be negative")
    rate = n_events / exposure
    z = normal_quantile(0.5 + confidence / 2.0)
    half_width = z * math.sqrt(n_events + 0.25) / exposure
    centre = (n_events + 0.25) / exposure
    lower = max(0.0, centre - half_width)
    upper = centre + half_width
    return rate, lower, upper
