"""Plain-text rendering of tables, bar charts and series.

The benchmark harness reproduces the paper's tables and figures as text: a
table per ``Table N`` and an ASCII bar chart or numeric series per
``Figure N``. These helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Union

Number = Union[int, float]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple fixed-width table.

    Args:
        headers: Column headers.
        rows: Row values; each row must have the same length as ``headers``.
        title: Optional title printed above the table.

    Returns:
        The rendered table as a single string.
    """
    materialised = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialised:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, Number],
    title: str = "",
    width: int = 40,
    value_format: str = "{:.3f}",
) -> str:
    """Render a horizontal ASCII bar chart.

    Args:
        values: Mapping from bar label to value (values must be >= 0).
        title: Optional title printed above the chart.
        width: Width, in characters, of the longest bar.
        value_format: Format string applied to each value.

    Returns:
        The rendered chart as a single string.
    """
    if not values:
        return title
    max_value = max(values.values())
    label_width = max(len(label) for label in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        if value < 0:
            raise ValueError("bar chart values must be non-negative")
        bar_length = 0 if max_value == 0 else int(round(width * value / max_value))
        bar = "#" * bar_length
        lines.append(
            f"{label.ljust(label_width)} | {value_format.format(value)} {bar}"
        )
    return "\n".join(lines)


def format_series(
    xs: Sequence[Number],
    ys: Sequence[Number],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
    max_points: int = 25,
) -> str:
    """Render an (x, y) series as aligned columns, downsampling long series.

    Args:
        xs: X coordinates.
        ys: Y coordinates (same length as ``xs``).
        x_label: Header for the x column.
        y_label: Header for the y column.
        title: Optional title.
        max_points: Maximum number of rows to print; longer series are
            downsampled uniformly (always keeping the final point).

    Returns:
        The rendered series as a single string.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    n = len(xs)
    if n == 0:
        return title
    if n > max_points:
        step = max(1, n // max_points)
        indices = list(range(0, n, step))
        if indices[-1] != n - 1:
            indices.append(n - 1)
    else:
        indices = list(range(n))
    rows = [(xs[i], ys[i]) for i in indices]
    return format_table([x_label, y_label], rows, title=title)


def format_comparison(
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a paper-vs-measured comparison table.

    Each row is ``(quantity, paper_value, measured_value)``; the benchmark
    harness uses this to emit the EXPERIMENTS.md style comparison lines.
    """
    return format_table(["quantity", "paper", "measured"], rows, title=title)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
