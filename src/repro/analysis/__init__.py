"""Shared analysis utilities: histogram bucketing, statistics and reporting.

These helpers are used both by the experiment package (to reproduce the
paper's figures) and by the benchmark harness (to render paper-vs-measured
comparisons).
"""

from repro.analysis.histograms import (
    CHANGE_INTERVAL_BUCKETS,
    LIFESPAN_BUCKETS,
    Bucket,
    BucketedHistogram,
)
from repro.analysis.statistics import (
    ExponentialFit,
    exponential_goodness_of_fit,
    fit_exponential,
    kolmogorov_smirnov_exponential,
    mean_confidence_interval,
)
from repro.analysis.report import (
    format_bar_chart,
    format_series,
    format_table,
)

__all__ = [
    "Bucket",
    "BucketedHistogram",
    "CHANGE_INTERVAL_BUCKETS",
    "LIFESPAN_BUCKETS",
    "ExponentialFit",
    "exponential_goodness_of_fit",
    "fit_exponential",
    "kolmogorov_smirnov_exponential",
    "mean_confidence_interval",
    "format_bar_chart",
    "format_series",
    "format_table",
]
