"""The simulated web: the ground-truth oracle queried by the fetch substrate.

:class:`SimulatedWeb` aggregates all sites and pages, provides URL lookup,
and exposes the oracle queries the rest of the system needs:

* ``snapshot(url, t)`` — what a fetch of ``url`` at virtual time ``t``
  returns (used by the fetcher);
* ``exists(url, t)`` — whether the URL resolves at time ``t``;
* ``is_up_to_date(url, checksum_version, t)`` — whether a stored copy taken
  at some earlier version is still current (used by the freshness metric,
  which by definition compares the local collection against the live web);
* per-domain and per-site enumeration used by the experiment package.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.simweb.page import PageSnapshot, SimulatedPage
from repro.simweb.site import SimulatedSite


class SimulatedWeb:
    """Container for all sites and pages of the synthetic web.

    Args:
        horizon_days: The virtual-time horizon over which every page's change
            process has been materialised. Queries past the horizon are
            rejected to avoid silently reading unsampled behaviour.
    """

    def __init__(self, horizon_days: float) -> None:
        if horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        self.horizon_days = horizon_days
        self._sites: Dict[str, SimulatedSite] = {}
        self._pages: Dict[str, SimulatedPage] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_site(self, site: SimulatedSite) -> None:
        """Register a site and all of its pages."""
        if site.site_id in self._sites:
            raise ValueError(f"duplicate site id {site.site_id}")
        self._sites[site.site_id] = site
        for page in site.all_pages:
            self._register_page(page)

    def _register_page(self, page: SimulatedPage) -> None:
        if page.url in self._pages:
            raise ValueError(f"duplicate URL {page.url}")
        self._pages[page.url] = page

    def add_page(self, page: SimulatedPage) -> None:
        """Register a page created after its site was added."""
        site = self._sites.get(page.site_id)
        if site is None:
            raise KeyError(f"unknown site {page.site_id}")
        if page.url not in site:
            site.add_page(page)
        self._register_page(page)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def sites(self) -> Sequence[SimulatedSite]:
        """All registered sites."""
        return tuple(self._sites.values())

    @property
    def n_sites(self) -> int:
        """Number of registered sites."""
        return len(self._sites)

    @property
    def n_pages(self) -> int:
        """Number of registered pages (alive or not)."""
        return len(self._pages)

    def site(self, site_id: str) -> SimulatedSite:
        """Look up a site by id."""
        return self._sites[site_id]

    def page(self, url: str) -> SimulatedPage:
        """Look up a page by URL."""
        return self._pages[url]

    def __contains__(self, url: str) -> bool:
        return url in self._pages

    def pages(self) -> Iterator[SimulatedPage]:
        """Iterate over every page in the web."""
        return iter(self._pages.values())

    def urls(self) -> Iterable[str]:
        """All known URLs."""
        return self._pages.keys()

    def seed_urls(self) -> List[str]:
        """Root URLs of every site — the natural crawl seeds."""
        return [site.root_url for site in self._sites.values()]

    def sites_in_domain(self, domain: str) -> List[SimulatedSite]:
        """All sites belonging to the given top-level domain."""
        return [site for site in self._sites.values() if site.domain == domain]

    def domains(self) -> List[str]:
        """Sorted list of domains present in the web."""
        return sorted({site.domain for site in self._sites.values()})

    # ------------------------------------------------------------------ #
    # Oracle queries
    # ------------------------------------------------------------------ #
    def exists(self, url: str, t: float) -> bool:
        """True when ``url`` resolves at virtual time ``t``."""
        self._check_time(t)
        page = self._pages.get(url)
        return page is not None and page.exists_at(t)

    def snapshot(self, url: str, t: float) -> Optional[PageSnapshot]:
        """Snapshot of ``url`` at time ``t`` or ``None`` when it is missing."""
        self._check_time(t)
        page = self._pages.get(url)
        if page is None or not page.exists_at(t):
            return None
        return page.snapshot_at(t)

    def current_version(self, url: str, t: float) -> Optional[int]:
        """Live content version of ``url`` at time ``t`` (None when missing)."""
        self._check_time(t)
        page = self._pages.get(url)
        if page is None or not page.exists_at(t):
            return None
        return page.version_at(t)

    def is_up_to_date(self, url: str, stored_version: int, t: float) -> bool:
        """Whether a copy stored at ``stored_version`` is still current at ``t``.

        A copy of a page that no longer exists is, by definition, not
        up to date (the real-world counterpart of the local copy is gone).
        """
        live_version = self.current_version(url, t)
        return live_version is not None and live_version == stored_version

    def live_urls_at(self, t: float) -> List[str]:
        """URLs of all pages that exist at time ``t``."""
        self._check_time(t)
        return [url for url, page in self._pages.items() if page.exists_at(t)]

    def mean_change_rate(self) -> float:
        """Average page change rate over the whole web (changes/day)."""
        if not self._pages:
            return 0.0
        total = sum(page.change_process.mean_rate for page in self._pages.values())
        return total / len(self._pages)

    def _check_time(self, t: float) -> None:
        if t < 0:
            raise ValueError("virtual time cannot be negative")
        if t > self.horizon_days + 1e-9:
            raise ValueError(
                f"virtual time {t} is beyond the simulated horizon "
                f"({self.horizon_days} days)"
            )
