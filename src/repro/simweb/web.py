"""The simulated web: the ground-truth oracle queried by the fetch substrate.

:class:`SimulatedWeb` aggregates all sites and pages, provides URL lookup,
and exposes the oracle queries the rest of the system needs:

* ``snapshot(url, t)`` — what a fetch of ``url`` at virtual time ``t``
  returns (used by the fetcher);
* ``exists(url, t)`` — whether the URL resolves at time ``t``;
* ``is_up_to_date(url, checksum_version, t)`` — whether a stored copy taken
  at some earlier version is still current (used by the freshness metric,
  which by definition compares the local collection against the live web);
* per-domain and per-site enumeration used by the experiment package.

Besides the scalar queries there is a *batched* oracle API —
:meth:`SimulatedWeb.versions_at`, :meth:`SimulatedWeb.exists_mask` and
:meth:`SimulatedWeb.up_to_date_mask` — backed by :class:`OracleArrays`, a
lazily built flat array of every page's change times plus per-page offsets.
A freshness measurement over an N-page collection is then a few NumPy
passes (one vectorized binary search over the flat event array) instead of
N Python-level oracle calls, which is what makes frequent measurement
events affordable inside ``IncrementalCrawler.run()``.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.simweb.page import PageSnapshot, SimulatedPage
from repro.simweb.site import SimulatedSite

TimeLike = Union[float, np.ndarray, Sequence[float]]


def pack_arrays(
    arrays: Sequence[Tuple[str, np.ndarray]],
) -> Tuple[shared_memory.SharedMemory, dict]:
    """Copy named arrays into one shared-memory block, once.

    Returns the owning :class:`~multiprocessing.shared_memory.SharedMemory`
    (the caller keeps it alive and eventually unlinks it) and a picklable
    manifest describing each array's dtype, shape and byte offset so
    :func:`unpack_arrays` can rebuild zero-copy views in another process.
    Offsets are padded to 16 bytes so every view is aligned.
    """
    entries = []
    offset = 0
    for name, array in arrays:
        offset = (offset + 15) & ~15
        entries.append(
            {
                "name": name,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        offset += array.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    for (name, array), entry in zip(arrays, entries):
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf,
                          offset=entry["offset"])
        view[...] = array
    return shm, {"arrays": entries, "size": offset}


def unpack_arrays(
    shm: shared_memory.SharedMemory, manifest: dict
) -> Dict[str, np.ndarray]:
    """Rebuild the arrays of a :func:`pack_arrays` block as zero-copy views.

    The returned arrays alias the shared buffer (read-only); the caller must
    keep ``shm`` referenced for as long as the views live.
    """
    out: Dict[str, np.ndarray] = {}
    for entry in manifest["arrays"]:
        view = np.ndarray(
            tuple(entry["shape"]),
            dtype=np.dtype(entry["dtype"]),
            buffer=shm.buf,
            offset=entry["offset"],
        )
        view.setflags(write=False)
        out[entry["name"]] = view
    return out


def _segment_searchsorted_right(
    flat: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    queries: np.ndarray,
) -> np.ndarray:
    """``np.searchsorted(segment, query, side="right")`` for many segments.

    ``flat`` concatenates independently sorted segments; segment ``k`` of
    a query occupies ``flat[starts[k] : starts[k] + lengths[k]]``. The
    search runs as one vectorized binary search across all queries, so the
    cost is ``O(n_queries * log(max_segment))`` NumPy element operations
    with no Python-level per-segment loop — and, unlike composite-key
    tricks, it is exact for any float inputs.
    """
    n = queries.size
    lo = np.zeros(n, dtype=np.int64)
    hi = lengths.astype(np.int64, copy=True)
    if flat.size == 0 or n == 0:
        return lo
    active = np.nonzero(lo < hi)[0]
    while active.size:
        mid = (lo[active] + hi[active]) >> 1
        below = flat[starts[active] + mid] <= queries[active]
        lo[active] = np.where(below, mid + 1, lo[active])
        hi[active] = np.where(below, hi[active], mid)
        active = active[lo[active] < hi[active]]
    return lo


class OracleArrays:
    """Array-of-structs view of every page, for batched oracle queries.

    Built lazily by :meth:`SimulatedWeb.oracle_arrays` and cached until the
    web is mutated. All change times are stored relative to each page's
    creation day (the same convention as :meth:`SimulatedPage.version_at`),
    concatenated into one flat array with per-page offsets.
    """

    def __init__(self, pages: Sequence[SimulatedPage]) -> None:
        n = len(pages)
        self.index: Dict[str, int] = {page.url: i for i, page in enumerate(pages)}
        # Owning site per page id, as a plain list: the batched politeness
        # path maps url -> page id -> site id on every candidate run, and
        # list indexing avoids boxing a NumPy scalar per read.
        self.site_ids: List[str] = [page.site_id for page in pages]
        # Dense integer encoding of the same column: site_index[page_id]
        # indexes site_names. The batched politeness peek gathers per-site
        # state through these instead of hashing site-name strings.
        name_to_index: Dict[str, int] = {}
        site_index = np.empty(n, dtype=np.int64)
        for i, site_id in enumerate(self.site_ids):
            site_index[i] = name_to_index.setdefault(site_id, len(name_to_index))
        self.site_index: np.ndarray = site_index
        self.site_names: List[str] = list(name_to_index)
        self.created = np.array([page.created_at for page in pages], dtype=float)
        self.deleted = np.array(
            [np.inf if page.deleted_at is None else page.deleted_at for page in pages],
            dtype=float,
        )
        self.materialised = np.array(
            [page.change_process.is_materialised for page in pages], dtype=bool
        )
        per_page: List[np.ndarray] = []
        empty = np.empty(0)
        for page in pages:
            if page.change_process.is_materialised:
                per_page.append(page.change_times_array())
            else:
                per_page.append(empty)
        self.lengths = np.array([len(a) for a in per_page], dtype=np.int64)
        self.offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self.lengths, out=self.offsets[1:])
        self.flat = np.concatenate(per_page) if n else np.empty(0)

    #: Shared-memory column order; ``offsets`` is shipped too (tiny) so the
    #: attached side does no arithmetic at all.
    _SHARED_COLUMNS = (
        "site_index", "created", "deleted", "materialised",
        "lengths", "offsets", "flat",
    )

    def to_shared(self) -> Tuple[shared_memory.SharedMemory, dict]:
        """Copy the numeric oracle columns into one shared-memory block.

        Workers attach with :meth:`from_shared` and get zero-copy views, so
        N crawl shards resolve fetches against one materialized web instead
        of N pickled copies. The string-keyed columns (URL index, site
        names) are not in the block — the caller ships them once in its
        (small) payload pickle and passes them to :meth:`from_shared`.

        Returns:
            ``(shm, manifest)`` — the owning shared-memory handle (caller
            unlinks it when every worker is done) and the picklable layout
            manifest.
        """
        return pack_arrays([(name, getattr(self, name)) for name in self._SHARED_COLUMNS])

    @classmethod
    def from_shared(
        cls,
        shm: shared_memory.SharedMemory,
        manifest: dict,
        urls: Sequence[str],
        site_names: Sequence[str],
    ) -> "OracleArrays":
        """Rebuild an oracle over a :meth:`to_shared` block, zero-copy.

        Args:
            shm: The attached shared-memory block.
            manifest: The layout manifest returned by :meth:`to_shared`.
            urls: Page URLs in oracle order (rebuilds ``index``).
            site_names: The stable site-name table (rebuilds ``site_ids``).

        Returns:
            An oracle whose array columns are read-only views into ``shm``.
            The oracle keeps a reference to ``shm`` so the buffer outlives
            the views.
        """
        self = cls.__new__(cls)
        for name, array in unpack_arrays(shm, manifest).items():
            setattr(self, name, array)
        self.index = {url: i for i, url in enumerate(urls)}
        self.site_names = list(site_names)
        self.site_ids = [self.site_names[i] for i in self.site_index.tolist()]
        self._shm = shm
        return self

    def lookup(self, urls: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        """Map URLs to page ids; unknown URLs get id ``-1``.

        Returns ``(ids, known)`` where ``known`` flags the resolvable URLs.
        """
        ids = np.array([self.index.get(url, -1) for url in urls], dtype=np.int64)
        return ids, ids >= 0

    def exists(self, ids: np.ndarray, t: TimeLike) -> np.ndarray:
        """Whether each page exists (is inside its window) at time ``t``."""
        t = np.asarray(t, dtype=float)
        return (t >= self.created[ids]) & (t < self.deleted[ids])

    def versions(self, ids: np.ndarray, t: TimeLike) -> np.ndarray:
        """Content version of each page at time ``t`` (scalar or per-page).

        Matches :meth:`SimulatedPage.version_at`, including its clamp of
        pre-creation queries to relative time zero.

        Raises:
            RuntimeError: If any queried page's change process has not been
                materialised (mirroring the scalar oracle).
        """
        if not self.materialised[ids].all():
            raise RuntimeError(
                "change process has not been materialised; call materialise() first"
            )
        relative = np.maximum(0.0, np.asarray(t, dtype=float) - self.created[ids])
        relative = np.broadcast_to(relative, ids.shape)
        return _segment_searchsorted_right(
            self.flat, self.offsets[ids], self.lengths[ids], relative
        )

    def next_change_relative(self, ids: np.ndarray, versions: np.ndarray) -> np.ndarray:
        """First change time strictly after version ``versions`` was current.

        Given the version counts at some instant (i.e. the number of changes
        at or before it), the next change is simply the event at that index
        in each page's segment — ``inf`` when the page never changes again.
        Times are relative to each page's creation, like
        :meth:`ChangeProcess.next_change_after`.
        """
        next_times = np.full(ids.shape, np.inf)
        selected = np.nonzero(versions < self.lengths[ids])[0]
        if selected.size:
            next_times[selected] = self.flat[
                self.offsets[ids[selected]] + versions[selected]
            ]
        return next_times


class SimulatedWeb:
    """Container for all sites and pages of the synthetic web.

    Args:
        horizon_days: The virtual-time horizon over which every page's change
            process has been materialised. Queries past the horizon are
            rejected to avoid silently reading unsampled behaviour.
    """

    def __init__(self, horizon_days: float) -> None:
        if horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        self.horizon_days = horizon_days
        self._sites: Dict[str, SimulatedSite] = {}
        self._pages: Dict[str, SimulatedPage] = {}
        self._oracle_arrays: Optional[OracleArrays] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_site(self, site: SimulatedSite) -> None:
        """Register a site and all of its pages."""
        if site.site_id in self._sites:
            raise ValueError(f"duplicate site id {site.site_id}")
        self._sites[site.site_id] = site
        for page in site.all_pages:
            self._register_page(page)

    def _register_page(self, page: SimulatedPage) -> None:
        if page.url in self._pages:
            raise ValueError(f"duplicate URL {page.url}")
        self._pages[page.url] = page
        self._oracle_arrays = None

    def add_page(self, page: SimulatedPage) -> None:
        """Register a page created after its site was added."""
        site = self._sites.get(page.site_id)
        if site is None:
            raise KeyError(f"unknown site {page.site_id}")
        if page.url not in site:
            site.add_page(page)
        self._register_page(page)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def sites(self) -> Sequence[SimulatedSite]:
        """All registered sites."""
        return tuple(self._sites.values())

    @property
    def n_sites(self) -> int:
        """Number of registered sites."""
        return len(self._sites)

    @property
    def n_pages(self) -> int:
        """Number of registered pages (alive or not)."""
        return len(self._pages)

    def site(self, site_id: str) -> SimulatedSite:
        """Look up a site by id."""
        return self._sites[site_id]

    def page(self, url: str) -> SimulatedPage:
        """Look up a page by URL."""
        return self._pages[url]

    def __contains__(self, url: str) -> bool:
        return url in self._pages

    def pages(self) -> Iterator[SimulatedPage]:
        """Iterate over every page in the web."""
        return iter(self._pages.values())

    def urls(self) -> Iterable[str]:
        """All known URLs."""
        return self._pages.keys()

    def seed_urls(self) -> List[str]:
        """Root URLs of every site — the natural crawl seeds."""
        return [site.root_url for site in self._sites.values()]

    def sites_in_domain(self, domain: str) -> List[SimulatedSite]:
        """All sites belonging to the given top-level domain."""
        return [site for site in self._sites.values() if site.domain == domain]

    def domains(self) -> List[str]:
        """Sorted list of domains present in the web."""
        return sorted({site.domain for site in self._sites.values()})

    # ------------------------------------------------------------------ #
    # Oracle queries
    # ------------------------------------------------------------------ #
    def exists(self, url: str, t: float) -> bool:
        """True when ``url`` resolves at virtual time ``t``."""
        self._check_time(t)
        page = self._pages.get(url)
        return page is not None and page.exists_at(t)

    def snapshot(self, url: str, t: float) -> Optional[PageSnapshot]:
        """Snapshot of ``url`` at time ``t`` or ``None`` when it is missing."""
        self._check_time(t)
        page = self._pages.get(url)
        if page is None or not page.exists_at(t):
            return None
        return page.snapshot_at(t)

    def current_version(self, url: str, t: float) -> Optional[int]:
        """Live content version of ``url`` at time ``t`` (None when missing)."""
        self._check_time(t)
        page = self._pages.get(url)
        if page is None or not page.exists_at(t):
            return None
        return page.version_at(t)

    def is_up_to_date(self, url: str, stored_version: int, t: float) -> bool:
        """Whether a copy stored at ``stored_version`` is still current at ``t``.

        A copy of a page that no longer exists is, by definition, not
        up to date (the real-world counterpart of the local copy is gone).
        """
        live_version = self.current_version(url, t)
        return live_version is not None and live_version == stored_version

    # ------------------------------------------------------------------ #
    # Batched oracle queries
    # ------------------------------------------------------------------ #
    def oracle_arrays(self) -> OracleArrays:
        """The cached array view of all pages for batched queries.

        Rebuilt lazily after any mutation of the page set. If a page's
        change process is re-materialised after the cache was built, call
        :meth:`invalidate_oracle_cache` manually (the generator materialises
        every process before the web is queried, so this only matters for
        hand-built webs in tests).
        """
        if self._oracle_arrays is None:
            self._oracle_arrays = OracleArrays(list(self._pages.values()))
        return self._oracle_arrays

    def invalidate_oracle_cache(self) -> None:
        """Drop the cached :class:`OracleArrays` (rebuilt on next use)."""
        self._oracle_arrays = None

    def versions_at(self, urls: Sequence[str], t: TimeLike) -> np.ndarray:
        """Content versions of many pages at once.

        Args:
            urls: Page URLs; every URL must be known to the web.
            t: Evaluation instant — a scalar applied to all pages, or one
                instant per URL.

        Returns:
            ``int64`` array of content versions, one per URL, matching
            :meth:`SimulatedPage.version_at` exactly. Existence is *not*
            consulted (a deleted page still has a last version); combine
            with :meth:`exists_mask` for ``current_version`` semantics.

        Raises:
            KeyError: If any URL is unknown.
        """
        self._check_time_array(t)
        arrays = self.oracle_arrays()
        ids, known = arrays.lookup(urls)
        if not known.all():
            missing = [url for url, ok in zip(urls, known) if not ok]
            raise KeyError(f"unknown URL(s): {missing[:3]}")
        return arrays.versions(ids, t)

    def exists_mask(self, urls: Sequence[str], t: TimeLike) -> np.ndarray:
        """Batched :meth:`exists`: one boolean per URL (False when unknown)."""
        self._check_time_array(t)
        arrays = self.oracle_arrays()
        ids, known = arrays.lookup(urls)
        result = np.zeros(len(ids), dtype=bool)
        if known.any():
            t_known = t if np.ndim(t) == 0 else np.asarray(t, dtype=float)[known]
            result[known] = arrays.exists(ids[known], t_known)
        return result

    def up_to_date_mask(
        self, url_version_pairs: Sequence[Tuple[str, int]], t: TimeLike
    ) -> np.ndarray:
        """Batched :meth:`is_up_to_date` over ``(url, stored_version)`` pairs.

        Args:
            url_version_pairs: Stored copies to check, as
                ``(url, version-at-fetch-time)`` pairs.
            t: Evaluation instant — scalar or one instant per pair.

        Returns:
            Boolean array: True where the stored copy still matches the live
            page. Unknown URLs and pages that no longer exist are False,
            exactly like the scalar query.
        """
        self._check_time_array(t)
        arrays = self.oracle_arrays()
        urls = [pair[0] for pair in url_version_pairs]
        stored = np.array([pair[1] for pair in url_version_pairs], dtype=np.int64)
        ids, known = arrays.lookup(urls)
        result = np.zeros(len(ids), dtype=bool)
        if known.any():
            t_known = t if np.ndim(t) == 0 else np.asarray(t, dtype=float)[known]
            sub_ids = ids[known]
            alive = arrays.exists(sub_ids, t_known)
            live_versions = arrays.versions(sub_ids, t_known)
            result[known] = alive & (live_versions == stored[known])
        return result

    def _check_time_array(self, t: TimeLike) -> None:
        t = np.asarray(t, dtype=float)
        if t.size == 0:
            return
        self._check_time(float(t.min()))
        self._check_time(float(t.max()))

    def live_urls_at(self, t: float) -> List[str]:
        """URLs of all pages that exist at time ``t``."""
        self._check_time(t)
        return [url for url, page in self._pages.items() if page.exists_at(t)]

    def mean_change_rate(self) -> float:
        """Average page change rate over the whole web (changes/day)."""
        if not self._pages:
            return 0.0
        total = sum(page.change_process.mean_rate for page in self._pages.values())
        return total / len(self._pages)

    def _check_time(self, t: float) -> None:
        if t < 0:
            raise ValueError("virtual time cannot be negative")
        if t > self.horizon_days + 1e-9:
            raise ValueError(
                f"virtual time {t} is beyond the simulated horizon "
                f"({self.horizon_days} days)"
            )
