"""Page lifespan (birth and death) modelling.

Section 3.2 of the paper measures the *visible lifespan* of pages: how long
a page stays inside a site's monitoring window. Pages leave the window when
they are deleted or moved deeper into the site, and new pages enter as they
are created or moved closer to the root.

We model this with a simple birth/death process per site:

* a fraction of pages (``permanent_fraction`` of the domain profile) never
  leave the window within the simulation horizon;
* the rest have an exponentially distributed visible lifespan with the
  domain's mean;
* whenever a page dies, a replacement page is born after an exponential
  "vacancy" delay, which keeps the window population roughly stationary, as
  in the real experiment where the window was topped up to 3,000 pages by
  the breadth-first crawl.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class LifespanModel:
    """Parameters of the per-page lifespan distribution.

    Attributes:
        permanent_fraction: Probability that a page never dies within the
            simulation horizon.
        mean_lifespan_days: Mean of the exponential lifespan of
            non-permanent pages.
        minimum_lifespan_days: Lower bound applied to sampled lifespans so
            that pages are observable at least once by a daily monitor.
    """

    permanent_fraction: float
    mean_lifespan_days: float
    minimum_lifespan_days: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.permanent_fraction <= 1.0:
            raise ValueError("permanent_fraction must be within [0, 1]")
        if self.mean_lifespan_days <= 0:
            raise ValueError("mean_lifespan_days must be positive")
        if self.minimum_lifespan_days < 0:
            raise ValueError("minimum_lifespan_days must be non-negative")

    def sample(self, rng: np.random.Generator) -> Optional[float]:
        """Sample a visible lifespan in days.

        Returns:
            ``None`` for a permanent page, otherwise a lifespan in days of at
            least ``minimum_lifespan_days``.
        """
        if rng.random() < self.permanent_fraction:
            return None
        lifespan = rng.exponential(self.mean_lifespan_days)
        return max(self.minimum_lifespan_days, float(lifespan))


def sample_lifespan(
    permanent_fraction: float,
    mean_lifespan_days: float,
    rng: np.random.Generator,
    minimum_lifespan_days: float = 1.0,
) -> Optional[float]:
    """Convenience wrapper around :class:`LifespanModel`.

    Args:
        permanent_fraction: Probability of an (effectively) immortal page.
        mean_lifespan_days: Mean lifespan of mortal pages.
        rng: Random generator.
        minimum_lifespan_days: Lower bound on sampled lifespans.

    Returns:
        ``None`` for permanent pages, otherwise the sampled lifespan.
    """
    model = LifespanModel(
        permanent_fraction=permanent_fraction,
        mean_lifespan_days=mean_lifespan_days,
        minimum_lifespan_days=minimum_lifespan_days,
    )
    return model.sample(rng)
