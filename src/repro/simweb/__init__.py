"""Synthetic evolving web substrate.

The paper's measurements were taken against the live 1999 web. We cannot
re-run that experiment, so this package provides a *simulated* web whose
statistical behaviour is calibrated to the paper's reported measurements:

* each page changes according to a Poisson process, as the paper itself
  verifies in Section 3.4 (Figure 6);
* per-domain distributions of change rates are calibrated to Figure 2(b);
* page lifespans (creation and deletion) are calibrated to Figure 4(b);
* pages are organised into sites with a root page and a breadth-first
  "page window", mirroring the monitoring technique of Section 2.1;
* sites link to each other through a preferential-attachment link graph so
  that PageRank-based "popularity" is meaningful (Section 2.2).

The simulated web exposes an oracle interface (`SimulatedWeb`) that the
fetch substrate queries: what does this URL's content look like at virtual
time ``t``, which pages exist, what are the out-links. The crawlers under
test never see the oracle directly; they only observe fetched snapshots.
"""

from repro.simweb.change_models import (
    ChangeProcess,
    NeverChanges,
    PeriodicChangeProcess,
    PoissonChangeProcess,
    BurstyChangeProcess,
)
from repro.simweb.domains import (
    DOMAIN_PROFILES,
    DomainProfile,
    profile_for,
)
from repro.simweb.lifespan import LifespanModel, sample_lifespan
from repro.simweb.page import PageSnapshot, SimulatedPage
from repro.simweb.site import SimulatedSite
from repro.simweb.web import OracleArrays, SimulatedWeb
from repro.simweb.generator import WebGeneratorConfig, generate_web
from repro.simweb.linkgraph import LinkGraphConfig, generate_site_links, generate_cross_links

__all__ = [
    "ChangeProcess",
    "PoissonChangeProcess",
    "PeriodicChangeProcess",
    "BurstyChangeProcess",
    "NeverChanges",
    "DomainProfile",
    "DOMAIN_PROFILES",
    "profile_for",
    "LifespanModel",
    "sample_lifespan",
    "SimulatedPage",
    "PageSnapshot",
    "SimulatedSite",
    "SimulatedWeb",
    "OracleArrays",
    "WebGeneratorConfig",
    "generate_web",
    "LinkGraphConfig",
    "generate_site_links",
    "generate_cross_links",
]
