"""Shipping a materialized synthetic web across process boundaries, once.

A sharded crawl runs N worker processes against the *same* ground-truth
web. Pickling the web per worker would copy the dominant payload — every
page's materialised change times — N times; for a 10k-page web with
hundreds of events per page that is the bulk of worker start-up cost and
memory. Instead the parent packs the numeric ground truth into two
``multiprocessing.shared_memory`` blocks:

* the :class:`~repro.simweb.web.OracleArrays` columns (creation/deletion
  days, flat change-time events with per-page offsets, site indexing), via
  :meth:`OracleArrays.to_shared`;
* the page-construction extras (depths, lifespans, change rates, keyword
  codes, the out-link graph in CSR form).

What remains in the picklable :class:`SharedWebPayload` is small and
string-shaped: the URL table, the site table and the site-name table.
:meth:`SharedWebPayload.materialise` rebuilds a fully functional
:class:`~repro.simweb.web.SimulatedWeb` in the worker whose array state is
**zero-copy views** into the shared blocks — every page's change times are
slices of the one flat event array all workers share.

The rebuilt web is bit-identical to the original as far as any crawler can
observe: same page order, same oracle results, same content bytes (the
keyword vocabulary is code-addressed), same out-links in the same order.
"""

from __future__ import annotations

import ctypes
import signal
import sys
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simweb.change_models import ChangeProcess
from repro.simweb.page import _VOCABULARY, SimulatedPage
from repro.simweb.site import SimulatedSite
from repro.simweb.web import OracleArrays, SimulatedWeb, pack_arrays, unpack_arrays


class _SharedChangeProcess(ChangeProcess):
    """A change process attached to pre-materialised shared event times.

    Workers never sample: the parent already materialised every page, and
    the worker installs each page's slice of the shared flat event array
    via ``_set_materialised``. Only the mean rate (used by estimators'
    ground-truth comparisons and site statistics) travels as a scalar.
    """

    def __init__(self, mean_rate: float) -> None:
        super().__init__()
        self._mean_rate = float(mean_rate)

    def _sample_change_times(self, horizon, rng):  # pragma: no cover - guard
        raise RuntimeError(
            "shared-web change processes are pre-materialised; re-sampling "
            "inside a worker would diverge from the parent's ground truth"
        )

    @property
    def mean_rate(self) -> float:
        return self._mean_rate


def install_parent_death_signal() -> None:
    """Ask the kernel to SIGKILL this process when its parent dies.

    Worker processes of a sharded crawl call this first. Without it, a
    SIGKILLed coordinator (the crash-resume smoke test does exactly that)
    leaves orphan workers running, and a resumed run would race them for
    the per-shard stores. Linux-only; a silent no-op elsewhere.
    """
    if not sys.platform.startswith("linux"):
        return
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        PR_SET_PDEATHSIG = 1
        libc.prctl(PR_SET_PDEATHSIG, int(signal.SIGKILL))
    except Exception:  # pragma: no cover - best-effort hardening
        pass


def attach_shared_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared-memory block by name, as a non-owner.

    Python 3.x registers every attach with the resource tracker, so a
    worker exiting would unlink a block the parent still owns (bpo-39959).
    Deregistering right after the attach restores the intended ownership:
    the creating process is the only one that unlinks.
    """
    shm = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    return shm


@dataclass
class SharedWebPayload:
    """The picklable description of a web whose bulk lives in shared memory.

    Everything numeric sits in the two named blocks; the payload itself
    carries only layout manifests and the string tables, so pickling it per
    worker is cheap regardless of web size.
    """

    oracle_block: str
    oracle_manifest: dict
    extras_block: str
    extras_manifest: dict
    horizon_days: float
    urls: Tuple[str, ...]
    #: Per site: (site_id, domain, window_size, root_url or None),
    #: in the original site insertion order.
    sites: Tuple[Tuple[str, str, int, Optional[str]], ...]
    site_names: Tuple[str, ...]

    def materialise(self) -> SimulatedWeb:
        """Rebuild the web in this process, zero-copy over the blocks.

        The returned web keeps references to the attached blocks (as
        ``_shared_handles``) so the buffers outlive every array view.
        """
        oracle_shm = attach_shared_block(self.oracle_block)
        extras_shm = attach_shared_block(self.extras_block)
        oracle = OracleArrays.from_shared(
            oracle_shm, self.oracle_manifest, self.urls, self.site_names
        )
        extras = unpack_arrays(extras_shm, self.extras_manifest)
        urls = self.urls
        depths = extras["depths"].tolist()
        lifespans = extras["lifespans"]
        mean_rates = extras["mean_rates"].tolist()
        horizons = extras["horizons"].tolist()
        keyword_codes = extras["keyword_codes"]
        out_flat = extras["out_flat"]
        out_offsets = extras["out_offsets"].tolist()
        created = oracle.created.tolist()
        flat = oracle.flat
        offsets = oracle.offsets.tolist()
        site_ids = oracle.site_ids
        domain_of = {site_id: domain for site_id, domain, _, _ in self.sites}

        pages_by_site: Dict[str, List[SimulatedPage]] = {
            site_id: [] for site_id, _, _, _ in self.sites
        }
        for i, url in enumerate(urls):
            site_id = site_ids[i]
            lifespan = float(lifespans[i])
            page = SimulatedPage.__new__(SimulatedPage)
            page.url = url
            page.site_id = site_id
            page.domain = domain_of[site_id]
            page.depth = depths[i]
            page.created_at = created[i]
            page.lifespan = None if np.isnan(lifespan) else lifespan
            process = _SharedChangeProcess(mean_rates[i])
            process._set_materialised(
                horizons[i], flat[offsets[i] : offsets[i + 1]]
            )
            page.change_process = process
            page._outlinks = [urls[j] for j in out_flat[out_offsets[i] : out_offsets[i + 1]].tolist()]
            page._outlinks_tuple = None
            page._content_parts = None
            page._keywords = tuple(
                _VOCABULARY[code] for code in keyword_codes[i].tolist()
            )
            pages_by_site[site_id].append(page)

        web = SimulatedWeb(horizon_days=self.horizon_days)
        for site_id, domain, window_size, root_url in self.sites:
            site = SimulatedSite(site_id, domain, window_size)
            for page in pages_by_site[site_id]:
                site.add_page(page, is_root=(page.url == root_url))
            web.add_site(site)
        # add_site registers pages site by site; restore the exact global
        # page order (it is semantic: oracle ids, seed order, iteration).
        web._pages = {url: web._pages[url] for url in urls}
        web._oracle_arrays = oracle
        web._shared_handles = (oracle_shm, extras_shm)
        return web


class SharedWeb:
    """Parent-side owner of the shared blocks backing a web.

    Create once, hand :attr:`payload` to every worker, and :meth:`close`
    (or use as a context manager) after the last worker has exited — the
    owner is the only process that unlinks the blocks.
    """

    def __init__(self, web: SimulatedWeb) -> None:
        oracle = web.oracle_arrays()
        self._oracle_shm, oracle_manifest = oracle.to_shared()
        extras_shm, extras_manifest = pack_arrays(_extras_columns(web, oracle))
        self._extras_shm = extras_shm
        sites = tuple(
            (site.site_id, site.domain, site.window_size, site._root_url)
            for site in web.sites
        )
        self.payload = SharedWebPayload(
            oracle_block=self._oracle_shm.name,
            oracle_manifest=oracle_manifest,
            extras_block=extras_shm.name,
            extras_manifest=extras_manifest,
            horizon_days=web.horizon_days,
            urls=tuple(web.urls()),
            sites=sites,
            site_names=tuple(oracle.site_names),
        )
        self._closed = False

    def close(self) -> None:
        """Release and unlink both blocks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shm in (self._oracle_shm, self._extras_shm):
            try:
                shm.close()
                # A same-process materialise() (serial fallbacks, tests)
                # deregisters the block on attach; rebalance the tracker's
                # books before unlink sends its own deregistration.
                resource_tracker.register(shm._name, "shared_memory")
                shm.unlink()
            except Exception:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedWeb":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _extras_columns(
    web: SimulatedWeb, oracle: OracleArrays
) -> List[Tuple[str, np.ndarray]]:
    """The page-construction columns that are not already oracle columns."""
    pages = list(web.pages())
    n = len(pages)
    url_index = oracle.index
    depths = np.array([page.depth for page in pages], dtype=np.int64)
    lifespans = np.array(
        [np.nan if page.lifespan is None else page.lifespan for page in pages],
        dtype=float,
    )
    mean_rates = np.array(
        [page.change_process.mean_rate for page in pages], dtype=float
    )
    horizons = np.array(
        [page.change_process.horizon for page in pages], dtype=float
    )
    vocab_code = {word: i for i, word in enumerate(_VOCABULARY)}
    if n:
        keyword_codes = np.array(
            [[vocab_code[word] for word in page._keywords] for page in pages],
            dtype=np.int16,
        )
    else:
        keyword_codes = np.zeros((0, 0), dtype=np.int16)
    out_counts = np.empty(n, dtype=np.int64)
    flat_links: List[int] = []
    for i, page in enumerate(pages):
        links = page.outlinks
        out_counts[i] = len(links)
        for link in links:
            j = url_index.get(link)
            if j is None:
                raise ValueError(
                    f"page {page.url} links to {link!r}, which is not in the "
                    "web; a shared web must be self-contained"
                )
            flat_links.append(j)
    out_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_counts, out=out_offsets[1:])
    out_flat = np.array(flat_links, dtype=np.int64)
    return [
        ("depths", depths),
        ("lifespans", lifespans),
        ("mean_rates", mean_rates),
        ("horizons", horizons),
        ("keyword_codes", keyword_codes),
        ("out_flat", out_flat),
        ("out_offsets", out_offsets),
    ]
