"""Synthetic web generation calibrated to the paper's measurements.

:func:`generate_web` builds a :class:`~repro.simweb.web.SimulatedWeb` with:

* a configurable number of sites per domain (defaulting to the Table 1 mix,
  scaled down by ``site_scale``);
* a per-site page window whose size defaults to a scaled-down version of the
  paper's 3,000-page window;
* per-page Poisson change processes drawn from the domain profiles
  (Figure 2(b) calibration);
* per-page lifespans drawn from the domain lifespan models (Figure 4(b)
  calibration), including pages that are created *during* the simulated
  experiment, which is what produces the censoring cases of Figure 3;
* an intra-site tree plus preferential-attachment cross-site links, so the
  popularity metrics of Section 2.2 are meaningful.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api.registry import CHANGE_MODELS
from repro.simweb.change_models import ChangeProcess
from repro.simweb.domains import DOMAIN_ORDER, DOMAIN_PROFILES, DomainProfile
from repro.simweb.lifespan import LifespanModel
from repro.simweb.linkgraph import LinkGraphConfig, generate_cross_links, generate_site_links
from repro.simweb.page import SimulatedPage
from repro.simweb.site import SimulatedSite
from repro.simweb.web import SimulatedWeb


@dataclass(frozen=True)
class WebGeneratorConfig:
    """Parameters of the synthetic-web generator.

    The defaults give a laptop-scale web (tens of sites, a few thousand
    pages) whose *statistics* match the paper; the full-scale experiment
    (270 sites x 3,000 pages) can be requested by setting ``site_scale=1.0``
    and ``pages_per_site=3000``, at a proportional cost in memory and time.

    Attributes:
        site_scale: Multiplier applied to the Table 1 per-domain site counts
            (132 com / 78 edu / 30 netorg / 30 gov). A scale of 0.1 gives
            roughly 27 sites.
        pages_per_site: Number of pages initially present at each site.
        window_size: Monitoring-window size per site; defaults to
            ``pages_per_site`` (every initial page is inside the window).
        horizon_days: Virtual-time horizon; the paper's experiment spanned
            roughly 127 days (February 17 to June 24, 1999).
        new_page_fraction: Number of pages created during the horizon, as a
            fraction of ``pages_per_site``.
        site_counts: Optional explicit per-domain site counts, overriding
            ``site_scale``.
        link_config: Link-graph generation parameters.
        change_model: Optional name of a registered change model (see
            :data:`repro.api.registry.CHANGE_MODELS`); when set, every page
            draws its change process from this model (with
            ``change_model_params``) instead of the calibrated per-domain
            mixtures. Useful for clockwork/bursty ablation webs.
        change_model_params: Keyword arguments for the change-model factory
            (e.g. ``{"rate": 0.2}`` for ``"poisson"``).
        seed: Seed of the top-level random generator; the same seed always
            produces the same web.
    """

    site_scale: float = 0.1
    pages_per_site: int = 60
    window_size: Optional[int] = None
    horizon_days: float = 127.0
    new_page_fraction: float = 0.25
    site_counts: Optional[Dict[str, int]] = None
    link_config: LinkGraphConfig = field(default_factory=LinkGraphConfig)
    change_model: Optional[str] = None
    change_model_params: Optional[Dict[str, float]] = None
    seed: int = 17

    def __post_init__(self) -> None:
        if self.site_scale <= 0:
            raise ValueError("site_scale must be positive")
        if self.pages_per_site < 1:
            raise ValueError("pages_per_site must be at least 1")
        if self.window_size is not None and self.window_size < 1:
            raise ValueError("window_size must be at least 1 when given")
        if self.horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        if self.new_page_fraction < 0:
            raise ValueError("new_page_fraction must be non-negative")
        if self.change_model is not None:
            factory = CHANGE_MODELS.get(self.change_model)
            self._validate_change_model_params(factory)

    def _validate_change_model_params(self, factory: type) -> None:
        """Reject unknown factory parameters instead of silently dropping them."""
        params = self.change_model_params or {}
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            return
        if any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in signature.parameters.values()):
            return
        unknown = sorted(set(params) - set(signature.parameters))
        if unknown:
            accepted = ", ".join(
                name for name in signature.parameters if name != "self"
            ) or "(none)"
            raise ValueError(
                f"unknown change_model_params {unknown} for change model "
                f"{self.change_model!r}; accepted parameters: {accepted}"
            )

    def sample_change_process(
        self, profile: DomainProfile, rng: np.random.Generator
    ) -> ChangeProcess:
        """Draw a page's change process: override model or domain mixture."""
        if self.change_model is None:
            return profile.sample_change_process(rng)
        # Params were validated against the factory signature up front, so
        # the per-page call is a plain constructor invocation.
        return CHANGE_MODELS.get(self.change_model)(
            **(self.change_model_params or {})
        )

    def effective_window_size(self) -> int:
        """The window size actually used (defaults to ``pages_per_site``)."""
        return self.window_size if self.window_size is not None else self.pages_per_site

    def sites_for_domain(self, domain: str) -> int:
        """Number of sites to generate for ``domain``."""
        if self.site_counts is not None:
            return self.site_counts.get(domain, 0)
        profile = DOMAIN_PROFILES[domain]
        return max(1, int(round(profile.site_count * self.site_scale)))


def generate_web(config: WebGeneratorConfig) -> SimulatedWeb:
    """Generate a synthetic web according to ``config``.

    Change-event sampling is *bulk*: pages are created with unmaterialised
    change processes, then every process is materialised per model class
    through :meth:`ChangeProcess.materialise_many` — a handful of array
    draws per web instead of a Python-level sampling loop per page.

    Returns:
        A fully wired :class:`SimulatedWeb`: pages have materialised change
        processes, lifespans, intra-site and cross-site links.
    """
    rng = np.random.default_rng(config.seed)
    web = SimulatedWeb(horizon_days=config.horizon_days)
    sites: List[SimulatedSite] = []
    pending: List[Tuple[ChangeProcess, float]] = []
    for domain in DOMAIN_ORDER:
        profile = DOMAIN_PROFILES[domain]
        n_sites = config.sites_for_domain(domain)
        for site_index in range(n_sites):
            site = _generate_site(domain, site_index, profile, config, rng, pending)
            sites.append(site)
    _materialise_pending(pending, rng)
    generate_cross_links(sites, config.link_config, rng)
    for site in sites:
        web.add_site(site)
    return web


def _materialise_pending(
    pending: List[Tuple[ChangeProcess, float]], rng: np.random.Generator
) -> None:
    """Materialise all change processes, grouped by concrete model class.

    Grouping preserves the deterministic page order within each class, so
    the same seed always produces the same web (though a different one
    than the retired per-page sampling loop produced, since bulk draws
    consume the random stream in a different order).
    """
    groups: Dict[type, List[Tuple[ChangeProcess, float]]] = {}
    for process, horizon in pending:
        groups.setdefault(type(process), []).append((process, horizon))
    for process_class, items in groups.items():
        process_class.materialise_many(
            [process for process, _ in items],
            [horizon for _, horizon in items],
            rng,
        )


def _generate_site(
    domain: str,
    site_index: int,
    profile: DomainProfile,
    config: WebGeneratorConfig,
    rng: np.random.Generator,
    pending: List[Tuple[ChangeProcess, float]],
) -> SimulatedSite:
    """Generate one site: root, initial pages, late-created pages, links."""
    site_id = f"site{site_index:03d}.{domain}"
    site = SimulatedSite(
        site_id=site_id,
        domain=domain,
        window_size=config.effective_window_size(),
    )
    lifespan_model = LifespanModel(
        permanent_fraction=profile.permanent_fraction,
        mean_lifespan_days=profile.mean_lifespan_days,
    )
    pages: List[SimulatedPage] = []

    root = _make_page(
        url=f"http://{site_id}/",
        site_id=site_id,
        domain=domain,
        depth=0,
        created_at=0.0,
        lifespan=None,
        change_process=config.sample_change_process(profile, rng),
        config=config,
        rng=rng,
        pending=pending,
    )
    site.add_page(root, is_root=True)
    pages.append(root)

    n_initial = config.pages_per_site - 1
    n_late = int(round(config.new_page_fraction * config.pages_per_site))
    for page_index in range(n_initial + n_late):
        created_at = 0.0
        if page_index >= n_initial:
            created_at = float(rng.uniform(1.0, config.horizon_days))
        lifespan = lifespan_model.sample(rng)
        page = _make_page(
            url=f"http://{site_id}/page{page_index:04d}.html",
            site_id=site_id,
            domain=domain,
            depth=1,
            created_at=created_at,
            lifespan=lifespan,
            change_process=config.sample_change_process(profile, rng),
            config=config,
            rng=rng,
            pending=pending,
        )
        site.add_page(page)
        pages.append(page)

    generate_site_links(pages, config.link_config, rng)
    return site


def _make_page(
    url: str,
    site_id: str,
    domain: str,
    depth: int,
    created_at: float,
    lifespan: Optional[float],
    change_process: ChangeProcess,
    config: WebGeneratorConfig,
    rng: np.random.Generator,
    pending: List[Tuple[ChangeProcess, float]],
) -> SimulatedPage:
    """Create a page; its change process is queued for bulk materialisation."""
    remaining_horizon = max(0.0, config.horizon_days - created_at)
    pending.append((change_process, remaining_horizon))
    return SimulatedPage(
        url=url,
        site_id=site_id,
        domain=domain,
        depth=depth,
        created_at=created_at,
        lifespan=lifespan,
        change_process=change_process,
        rng_seed=int(rng.integers(0, 2**31 - 1)),
    )
