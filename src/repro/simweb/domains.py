"""Per-domain calibration profiles.

The paper's key empirical finding (Section 3) is that change behaviour is
heavily skewed by domain:

* more than 40% of ``com`` pages changed every day, while fewer than 10% of
  pages in other domains did (Figure 2(b));
* more than 50% of ``edu`` and ``gov`` pages did not change at all during
  the four-month experiment (Figure 2(b));
* it took about 11 days for half of the ``com`` domain to change, versus
  almost four months for ``gov`` (Figure 5(b));
* ``com`` pages were the shortest lived, ``edu``/``gov`` pages the longest
  (Figure 4(b)), with more than 70% of all pages visible for over a month.

Each :class:`DomainProfile` encodes a mixture over change-rate classes and a
lifespan model so that a synthetic web generated from the profiles
reproduces those distributions. Table 1's site mix (132 com, 78 edu,
30 netorg, 30 gov) is also recorded here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.simweb.change_models import ChangeProcess, NeverChanges, PoissonChangeProcess

#: Days per month used throughout the reproduction.
DAYS_PER_MONTH = 30.0


@dataclass(frozen=True)
class RateClass:
    """A change-frequency class: a representative mean change interval (days).

    ``interval_days`` of ``float('inf')`` denotes a page that never changes.
    """

    name: str
    interval_days: float

    @property
    def rate_per_day(self) -> float:
        """Poisson rate corresponding to the representative interval."""
        if self.interval_days == float("inf"):
            return 0.0
        return 1.0 / self.interval_days


#: Representative rate classes matching the Figure 2 buckets. The
#: representative interval of each class sits comfortably inside its bucket
#: so that re-measuring the histogram recovers the intended bucket.
RATE_CLASSES: Tuple[RateClass, ...] = (
    # The "daily" class represents pages the paper found to have "changed
    # whenever we visited them": their true change rate is several times a
    # day, so a daily monitor detects a change at essentially every visit
    # and assigns them to the <= 1 day bucket.
    RateClass("daily", 0.1),          # <= 1 day bucket
    RateClass("weekly", 3.5),         # 1 day .. 1 week bucket
    RateClass("monthly", 15.0),       # 1 week .. 1 month bucket
    RateClass("quarterly", 70.0),     # 1 month .. 4 months bucket
    RateClass("static", float("inf")),  # > 4 months bucket (never changes)
)


@dataclass(frozen=True)
class DomainProfile:
    """Calibrated behaviour of a top-level domain.

    Attributes:
        name: Domain name (``com``, ``edu``, ``netorg``, ``gov``).
        site_count: Number of monitored sites in this domain (Table 1).
        rate_mixture: Probability of each :data:`RATE_CLASSES` entry; sums
            to 1. Calibrated to Figure 2(b).
        permanent_fraction: Fraction of pages that never leave the window
            during the experiment horizon. Calibrated to Figure 4(b).
        mean_lifespan_days: Mean of the exponential lifespan of
            non-permanent pages.
        pages_per_site: Typical number of pages inside the monitoring
            window for sites of this domain (the paper's window was 3,000).
    """

    name: str
    site_count: int
    rate_mixture: Tuple[float, ...]
    permanent_fraction: float
    mean_lifespan_days: float
    pages_per_site: int = 3000

    def __post_init__(self) -> None:
        if len(self.rate_mixture) != len(RATE_CLASSES):
            raise ValueError(
                "rate_mixture must have one weight per rate class "
                f"({len(RATE_CLASSES)} expected, {len(self.rate_mixture)} given)"
            )
        total = sum(self.rate_mixture)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"rate_mixture must sum to 1 (got {total})")
        if not 0.0 <= self.permanent_fraction <= 1.0:
            raise ValueError("permanent_fraction must be within [0, 1]")
        if self.mean_lifespan_days <= 0:
            raise ValueError("mean_lifespan_days must be positive")

    def sample_rate_class(self, rng: np.random.Generator) -> RateClass:
        """Draw a change-rate class according to the calibrated mixture."""
        index = rng.choice(len(RATE_CLASSES), p=np.asarray(self.rate_mixture))
        return RATE_CLASSES[index]

    def sample_change_process(self, rng: np.random.Generator) -> ChangeProcess:
        """Draw a change process for a new page of this domain.

        The representative interval of the sampled class is jittered by a
        small multiplicative factor so that pages are not all identical,
        while staying inside the intended Figure 2 bucket.
        """
        rate_class = self.sample_rate_class(rng)
        if rate_class.interval_days == float("inf"):
            return NeverChanges()
        jitter = rng.uniform(0.85, 1.15)
        return PoissonChangeProcess(1.0 / (rate_class.interval_days * jitter))

    def expected_daily_fraction(self) -> float:
        """Fraction of pages expected to land in the '<= 1 day' bucket."""
        return self.rate_mixture[0]

    def expected_static_fraction(self) -> float:
        """Fraction of pages expected to land in the '> 4 months' bucket."""
        return self.rate_mixture[-1]


#: Calibrated profiles. The rate mixtures reproduce Figure 2(b): the bars
#: are, in order, (<=1day, <=1week, <=1month, <=4months, >4months).
DOMAIN_PROFILES: Dict[str, DomainProfile] = {
    "com": DomainProfile(
        name="com",
        site_count=132,
        rate_mixture=(0.42, 0.17, 0.15, 0.11, 0.15),
        permanent_fraction=0.30,
        mean_lifespan_days=45.0,
    ),
    "netorg": DomainProfile(
        name="netorg",
        site_count=30,
        rate_mixture=(0.09, 0.14, 0.20, 0.22, 0.35),
        permanent_fraction=0.40,
        mean_lifespan_days=70.0,
    ),
    "edu": DomainProfile(
        name="edu",
        site_count=78,
        rate_mixture=(0.03, 0.06, 0.12, 0.24, 0.55),
        permanent_fraction=0.55,
        mean_lifespan_days=100.0,
    ),
    "gov": DomainProfile(
        name="gov",
        site_count=30,
        rate_mixture=(0.02, 0.05, 0.10, 0.27, 0.56),
        permanent_fraction=0.58,
        mean_lifespan_days=110.0,
    ),
}

#: Order in which the paper lists the domains in Table 1.
DOMAIN_ORDER: Sequence[str] = ("com", "edu", "netorg", "gov")


def profile_for(domain: str) -> DomainProfile:
    """Return the calibrated profile for ``domain``.

    Raises:
        KeyError: If the domain is not one of com/edu/netorg/gov.
    """
    try:
        return DOMAIN_PROFILES[domain]
    except KeyError as error:
        known = ", ".join(sorted(DOMAIN_PROFILES))
        raise KeyError(f"unknown domain {domain!r}; known domains: {known}") from error


def sample_calibrated_rates(
    n_pages: int, seed: Union[int, np.random.Generator] = 5
) -> List[float]:
    """Draw page change rates from the calibrated per-domain mixtures.

    Each domain contributes pages in proportion to its Table 1 site share,
    and each page draws a representative rate-class rate from the domain's
    Figure 2(b) mixture. This is the shared population sampler behind the
    Figure 9/10 policy-comparison benchmarks and the ``revisit-policies``
    scenario.

    Args:
        n_pages: Approximate population size (per-domain rounding can move
            the total by a page or two).
        seed: Seed, or an existing generator to draw from.

    Returns:
        Change rates in changes per day (0.0 for the static class).
    """
    if n_pages < 1:
        raise ValueError("n_pages must be at least 1")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    total_sites = sum(p.site_count for p in DOMAIN_PROFILES.values())
    rates: List[float] = []
    for profile in DOMAIN_PROFILES.values():
        share = profile.site_count / total_sites
        for _ in range(int(round(n_pages * share))):
            rate_class = RATE_CLASSES[
                rng.choice(len(RATE_CLASSES), p=np.asarray(profile.rate_mixture))
            ]
            rates.append(rate_class.rate_per_day)
    return rates


def overall_rate_mixture() -> Tuple[float, ...]:
    """Site-count-weighted mixture over rate classes across all domains.

    This corresponds to Figure 2(a): the aggregate histogram is dominated by
    ``com`` because roughly half of the monitored sites are commercial.
    """
    total_sites = sum(profile.site_count for profile in DOMAIN_PROFILES.values())
    weights = [0.0] * len(RATE_CLASSES)
    for profile in DOMAIN_PROFILES.values():
        for index, share in enumerate(profile.rate_mixture):
            weights[index] += share * profile.site_count / total_sites
    return tuple(weights)
