"""Simulated web pages.

A :class:`SimulatedPage` is the ground-truth ("real world") object: it knows
when it was created, when (if ever) it disappears from its site's window,
how its content evolves over virtual time, and which pages it links to.

Crawlers never read a page object directly; they receive a
:class:`PageSnapshot` from the fetch substrate, which is what an HTTP fetch
would have returned at that virtual instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.simweb.change_models import ChangeProcess

#: A small vocabulary used to give page content some searchable text, so the
#: inverted-index substrate has realistic tokens to work with.
_VOCABULARY = (
    "news", "research", "catalog", "press", "release", "course", "faculty",
    "product", "report", "policy", "archive", "update", "service", "event",
    "project", "paper", "index", "directory", "market", "review",
)


@dataclass(frozen=True)
class PageSnapshot:
    """What a fetch of a page returns at a particular virtual time.

    Attributes:
        url: The page URL.
        fetched_at: Virtual time (days) of the fetch.
        version: Content version at fetch time (0 for the original content).
        content: The page body.
        outlinks: URLs the page links to at fetch time.
    """

    url: str
    fetched_at: float
    version: int
    content: str
    outlinks: Sequence[str]


class SimulatedPage:
    """Ground truth for a single page in the synthetic web.

    Args:
        url: Unique URL of the page.
        site_id: Identifier of the owning site.
        domain: Top-level domain of the owning site (com/edu/netorg/gov).
        depth: Breadth-first depth of the page below the site root (the root
            itself has depth 0). The monitoring window keeps the shallowest
            pages, mirroring the paper's "3,000 page window".
        created_at: Virtual day the page entered the window.
        lifespan: Visible lifespan in days, or ``None`` for a page that stays
            in the window for the whole simulation.
        change_process: The page's content change process. It must already be
            materialised (the generator materialises it over the horizon).
        rng_seed: Seed used to pick the page's static vocabulary, so content
            is deterministic given the page identity.
    """

    def __init__(
        self,
        url: str,
        site_id: str,
        domain: str,
        depth: int,
        created_at: float,
        lifespan: Optional[float],
        change_process: ChangeProcess,
        rng_seed: int = 0,
    ) -> None:
        if depth < 0:
            raise ValueError("depth must be non-negative")
        if created_at < 0:
            raise ValueError("created_at must be non-negative")
        if lifespan is not None and lifespan <= 0:
            raise ValueError("lifespan must be positive when given")
        self.url = url
        self.site_id = site_id
        self.domain = domain
        self.depth = depth
        self.created_at = created_at
        self.lifespan = lifespan
        self.change_process = change_process
        self._outlinks: List[str] = []
        self._outlinks_tuple: Optional[Sequence[str]] = None
        self._content_parts: Optional[Sequence[str]] = None
        local_rng = np.random.default_rng(rng_seed)
        self._keywords = tuple(
            _VOCABULARY[i] for i in local_rng.integers(0, len(_VOCABULARY), size=6)
        )

    # ------------------------------------------------------------------ #
    # Existence
    # ------------------------------------------------------------------ #
    @property
    def deleted_at(self) -> Optional[float]:
        """Virtual day the page leaves the window, or None if it never does."""
        if self.lifespan is None:
            return None
        return self.created_at + self.lifespan

    def exists_at(self, t: float) -> bool:
        """True when the page is inside its site's window at time ``t``."""
        if t < self.created_at:
            return False
        deleted_at = self.deleted_at
        return deleted_at is None or t < deleted_at

    def visible_lifespan(self, horizon: float) -> float:
        """Number of days the page is visible within ``[0, horizon]``.

        This is the quantity the Section 3.2 lifespan analysis estimates; the
        ground-truth value is exposed for calibration tests.
        """
        start = min(self.created_at, horizon)
        end = horizon if self.deleted_at is None else min(self.deleted_at, horizon)
        return max(0.0, end - start)

    # ------------------------------------------------------------------ #
    # Content
    # ------------------------------------------------------------------ #
    @property
    def outlinks(self) -> Sequence[str]:
        """URLs this page links to (constant over the simulation).

        The tuple is cached: links are frozen once generation finishes, and
        the batched fetch path reads this per fetch.
        """
        if self._outlinks_tuple is None:
            self._outlinks_tuple = tuple(self._outlinks)
        return self._outlinks_tuple

    def set_outlinks(self, urls: Sequence[str]) -> None:
        """Set the page's out-links (called once by the web generator)."""
        self._outlinks = list(dict.fromkeys(urls))
        self._outlinks_tuple = None
        self._content_parts = None

    def add_outlink(self, url: str) -> None:
        """Append a single out-link if not already present."""
        if url not in self._outlinks:
            self._outlinks.append(url)
            self._outlinks_tuple = None
            self._content_parts = None

    def version_at(self, t: float) -> int:
        """Content version at time ``t`` (number of changes so far)."""
        return self.change_process.version_at(max(0.0, t - self.created_at))

    def change_times_array(self) -> np.ndarray:
        """The page's change times (relative to creation) as a cached array.

        Used by the batched :class:`~repro.simweb.web.SimulatedWeb` oracle to
        build its flat event arrays without touching per-call Python lists.
        """
        return self.change_process.change_times_array()

    def changed_between(self, t0: float, t1: float) -> bool:
        """True when the content changed in the interval ``(t0, t1]``."""
        return self.version_at(t1) != self.version_at(t0)

    def content_at(self, t: float) -> str:
        """The page body at time ``t``.

        The body embeds the URL, the version counter and the page's keyword
        set, so that (a) any change to the version changes the checksum and
        (b) the inverted index has tokens to index.
        """
        return self.content_for_version(self.version_at(t))

    def content_for_version(self, version: int) -> str:
        """The page body at a known content version.

        Everything but the version counter is static, so the surrounding
        text is assembled once and cached; the batched fetch path resolves
        versions through the array oracle and formats bodies through this
        method without re-deriving the static parts per fetch.
        """
        if self._content_parts is None:
            keywords = " ".join(self._keywords)
            links = " ".join(self._outlinks)
            self._content_parts = (
                f"url:{self.url}\nversion:",
                f"\nkeywords:{keywords}\nlinks:{links}\n",
            )
        prefix, suffix = self._content_parts
        return f"{prefix}{version}{suffix}"

    def snapshot_at(self, t: float) -> PageSnapshot:
        """Build the :class:`PageSnapshot` a fetch at time ``t`` would return.

        Raises:
            LookupError: If the page does not exist at ``t``.
        """
        if not self.exists_at(t):
            raise LookupError(f"page {self.url} does not exist at t={t}")
        return PageSnapshot(
            url=self.url,
            fetched_at=t,
            version=self.version_at(t),
            content=self.content_at(t),
            outlinks=self.outlinks,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedPage(url={self.url!r}, domain={self.domain!r}, "
            f"depth={self.depth}, created_at={self.created_at}, "
            f"lifespan={self.lifespan})"
        )
