"""Page change processes.

Section 3.4 of the paper verifies that page changes are well described by a
Poisson process: the interval between successive changes of a page with rate
``lambda`` is exponentially distributed with density ``lambda * exp(-lambda*t)``
(Theorem 1). :class:`PoissonChangeProcess` is therefore the default model.

Two additional processes are provided for ablations and tests:

* :class:`PeriodicChangeProcess` changes at exactly fixed intervals, which is
  the "clockwork" counter-example against which the Poisson assumption can be
  compared (Figure 6 would show a spike instead of an exponential).
* :class:`BurstyChangeProcess` emits batches of changes followed by silent
  periods, modelling the Figure 1(b) caveat: a page that changes several
  times in one day and then rests, for which a once-a-day observer measures
  the interval between *batches* of changes.

All processes expose the same interface: a sorted array of change times over
a horizon, and helpers to count changes and look up the version of the page
at a given virtual time. Virtual time is measured in days.

The concrete processes register themselves in
:data:`repro.api.registry.CHANGE_MODELS` (``"poisson"``, ``"periodic"``,
``"bursty"``, ``"never"``), so web specs and the generator can select a
model by name.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from repro.api.registry import register_change_model


class ChangeProcess(ABC):
    """Abstract model of when a page's content changes.

    A change process is materialised over a finite horizon ``[0, horizon]``
    of virtual days. Implementations pre-sample the change times once, so
    that repeated queries (from crawlers, monitors and metrics) are
    consistent and cheap.
    """

    def __init__(self) -> None:
        self._change_times: Optional[List[float]] = None
        self._change_times_array: Optional[np.ndarray] = None
        self._horizon: float = 0.0

    @abstractmethod
    def _sample_change_times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        """Sample the (sorted) change times over ``[0, horizon]``."""

    @property
    @abstractmethod
    def mean_rate(self) -> float:
        """Expected number of changes per day."""

    def materialise(self, horizon: float, rng: np.random.Generator) -> None:
        """Sample and store change times over ``[0, horizon]``.

        Calling this twice replaces the previous sample; the web generator
        materialises every page exactly once (in bulk, through
        :meth:`materialise_many`).
        """
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        self._horizon = horizon
        self._change_times = sorted(self._sample_change_times(horizon, rng))
        self._change_times_array = None

    def _set_materialised(self, horizon: float, times: np.ndarray) -> None:
        """Install pre-sampled (sorted ascending) change times directly.

        Bulk samplers hand each process its slice of a web-wide draw; the
        array doubles as the cached representation the batched oracle
        consumes.
        """
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        array = np.ascontiguousarray(times, dtype=float)
        array.setflags(write=False)
        self._horizon = float(horizon)
        # A sorted ndarray satisfies every sequence use the scalar paths
        # make of the change-time list (bisect, len, iteration, indexing).
        self._change_times = array
        self._change_times_array = array

    @classmethod
    def materialise_many(
        cls,
        processes: Sequence["ChangeProcess"],
        horizons: Sequence[float],
        rng: np.random.Generator,
    ) -> None:
        """Materialise many processes of this class in bulk.

        The base implementation simply loops :meth:`materialise`.
        Subclasses whose sampling vectorises (Poisson counts + uniform
        placement, periodic grids) override it to draw once per *web*
        instead of once per page — the generator groups pages by model
        class and calls this per group. Bulk sampling draws from ``rng``
        in a different order than the per-page loop, so webs generated
        before and after this change differ for the same seed (each is a
        valid sample of the same distribution).
        """
        for process, horizon in zip(processes, horizons):
            process.materialise(float(horizon), rng)

    @property
    def is_materialised(self) -> bool:
        """True once :meth:`materialise` has been called."""
        return self._change_times is not None

    @property
    def horizon(self) -> float:
        """The horizon over which change times were sampled."""
        return self._horizon

    def change_times(self) -> Sequence[float]:
        """All sampled change times, sorted ascending."""
        self._require_materialised()
        return tuple(self._change_times)  # type: ignore[arg-type]

    def change_times_array(self) -> np.ndarray:
        """Sampled change times as a cached, read-only NumPy array.

        This is the representation the batched oracle consumes; the array is
        built once per materialisation, so repeated batched queries pay no
        conversion cost.
        """
        self._require_materialised()
        if self._change_times_array is None:
            array = np.asarray(self._change_times, dtype=float)
            array.setflags(write=False)
            self._change_times_array = array
        return self._change_times_array

    def version_at(self, t: float) -> int:
        """Number of changes that occurred at or before time ``t``.

        Version 0 is the content the page was created with; each change
        increments the version.
        """
        self._require_materialised()
        if t < 0:
            return 0
        return bisect.bisect_right(self._change_times, t)  # type: ignore[arg-type]

    def changes_between(self, t0: float, t1: float) -> int:
        """Number of changes in the half-open interval ``(t0, t1]``."""
        if t1 < t0:
            raise ValueError("t1 must not precede t0")
        return self.version_at(t1) - self.version_at(t0)

    def changed_between(self, t0: float, t1: float) -> bool:
        """True when at least one change occurred in ``(t0, t1]``."""
        return self.changes_between(t0, t1) > 0

    def next_change_after(self, t: float) -> Optional[float]:
        """Time of the first change strictly after ``t``, or None if none."""
        self._require_materialised()
        index = bisect.bisect_right(self._change_times, t)  # type: ignore[arg-type]
        if index >= len(self._change_times):  # type: ignore[arg-type]
            return None
        return self._change_times[index]  # type: ignore[index]

    def last_change_at_or_before(self, t: float) -> Optional[float]:
        """Time of the most recent change at or before ``t``, or None."""
        self._require_materialised()
        index = bisect.bisect_right(self._change_times, t)  # type: ignore[arg-type]
        if index == 0:
            return None
        return self._change_times[index - 1]  # type: ignore[index]

    def observed_intervals(self) -> List[float]:
        """Intervals between successive changes (used by the Figure 6 fit)."""
        times = self.change_times()
        return [b - a for a, b in zip(times, times[1:])]

    def _require_materialised(self) -> None:
        if self._change_times is None:
            raise RuntimeError(
                "change process has not been materialised; call materialise() first"
            )


@register_change_model("poisson")
class PoissonChangeProcess(ChangeProcess):
    """Poisson change process with a fixed rate (changes per day).

    This is the model the paper validates in Section 3.4 and uses for all of
    the Section 4 analysis.
    """

    def __init__(self, rate: float) -> None:
        super().__init__()
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self._rate = rate

    @property
    def mean_rate(self) -> float:
        return self._rate

    @property
    def mean_interval(self) -> float:
        """Expected number of days between changes (infinite for rate 0)."""
        if self._rate == 0:
            return float("inf")
        return 1.0 / self._rate

    def _sample_change_times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        if self._rate == 0 or horizon == 0:
            return []
        # Sample the number of events, then place them uniformly: conditional
        # on the count, Poisson event times are i.i.d. uniform on the horizon.
        count = rng.poisson(self._rate * horizon)
        return list(np.sort(rng.uniform(0.0, horizon, size=count)))

    @classmethod
    def materialise_many(
        cls,
        processes: Sequence["ChangeProcess"],
        horizons: Sequence[float],
        rng: np.random.Generator,
    ) -> None:
        """All Poisson pages of a web in two draws, with no sorting.

        One vectorized Poisson draw fixes every page's event count;
        conditional on the count, the sorted event times of page ``i`` are
        distributed as order statistics of ``c_i`` uniforms on its horizon,
        which are constructed directly from exponential spacings:
        ``U_(k) = (E_1 + ... + E_k) / (E_1 + ... + E_{c+1})``. One
        exponential draw covers every spacing of every page, and segment
        prefix sums replace the per-page sampling loop *and* the sort.
        """
        n = len(processes)
        horizon_array = np.asarray(horizons, dtype=float)
        rates = np.array([process._rate for process in processes], dtype=float)
        counts = rng.poisson(rates * horizon_array)
        total_events = int(counts.sum())
        # One spacing per event plus the closing spacing of each page.
        spacings = rng.standard_exponential(total_events + n)
        segment_lengths = counts + 1
        ends = np.cumsum(segment_lengths)
        starts = ends - segment_lengths
        running = np.cumsum(spacings)
        bases = np.where(starts > 0, running[starts - 1], 0.0)
        totals = running[ends - 1] - bases
        event_mask = np.ones(total_events + n, dtype=bool)
        event_mask[ends - 1] = False
        partial = running[event_mask] - np.repeat(bases, counts)
        times = partial * np.repeat(horizon_array / totals, counts)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        for i, process in enumerate(processes):
            process._set_materialised(
                horizon_array[i], times[offsets[i] : offsets[i + 1]]
            )


@register_change_model("periodic")
class PeriodicChangeProcess(ChangeProcess):
    """Deterministic change process: one change every ``interval`` days."""

    def __init__(self, interval: float, phase: float = 0.0) -> None:
        super().__init__()
        if interval <= 0:
            raise ValueError("interval must be positive")
        if phase < 0:
            raise ValueError("phase must be non-negative")
        self._interval = interval
        self._phase = phase % interval

    @property
    def mean_rate(self) -> float:
        return 1.0 / self._interval

    def _sample_change_times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        times = []
        t = self._phase if self._phase > 0 else self._interval
        while t <= horizon:
            times.append(t)
            t += self._interval
        return times

    @classmethod
    def materialise_many(
        cls,
        processes: Sequence["ChangeProcess"],
        horizons: Sequence[float],
        rng: np.random.Generator,
    ) -> None:
        """Periodic grids as one ``arange`` per page — no randomness at all.

        The grid is built as ``start + k * interval`` rather than by
        repeated addition, which avoids the scalar loop's accumulated
        rounding drift on long horizons.
        """
        for process, horizon in zip(processes, horizons):
            horizon = float(horizon)
            start = process._phase if process._phase > 0 else process._interval
            if horizon <= 0 or start > horizon:
                process._set_materialised(horizon, np.empty(0))
                continue
            count = int(np.floor((horizon - start) / process._interval)) + 1
            times = start + process._interval * np.arange(count)
            # Guard the float edge: the formula may land one step past the
            # horizon where the scalar loop would have stopped.
            while count > 0 and times[count - 1] > horizon:
                count -= 1
            process._set_materialised(horizon, times[:count])


@register_change_model("bursty")
class BurstyChangeProcess(ChangeProcess):
    """Bursts of changes separated by exponential quiet periods.

    Burst arrival follows a Poisson process with rate ``burst_rate``; each
    burst contains ``burst_size`` changes spread over ``burst_duration`` days.
    A daily observer sees at most one change per day, so what it estimates is
    the interval between bursts — the situation of Figure 1(b).
    """

    def __init__(self, burst_rate: float, burst_size: int = 5, burst_duration: float = 0.5) -> None:
        super().__init__()
        if burst_rate < 0:
            raise ValueError("burst_rate must be non-negative")
        if burst_size < 1:
            raise ValueError("burst_size must be at least 1")
        if burst_duration < 0:
            raise ValueError("burst_duration must be non-negative")
        self._burst_rate = burst_rate
        self._burst_size = burst_size
        self._burst_duration = burst_duration

    @property
    def mean_rate(self) -> float:
        return self._burst_rate * self._burst_size

    @property
    def burst_rate(self) -> float:
        """Expected number of bursts per day."""
        return self._burst_rate

    def _sample_change_times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        if self._burst_rate == 0 or horizon == 0:
            return []
        n_bursts = rng.poisson(self._burst_rate * horizon)
        burst_starts = np.sort(rng.uniform(0.0, horizon, size=n_bursts))
        times: List[float] = []
        for start in burst_starts:
            offsets = rng.uniform(0.0, self._burst_duration, size=self._burst_size)
            for offset in offsets:
                t = start + offset
                if t <= horizon:
                    times.append(float(t))
        return times


@register_change_model("never")
class NeverChanges(ChangeProcess):
    """A page whose content never changes (the static edu/gov tail)."""

    @property
    def mean_rate(self) -> float:
        return 0.0

    def _sample_change_times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        return []
