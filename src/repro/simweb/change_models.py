"""Page change processes.

Section 3.4 of the paper verifies that page changes are well described by a
Poisson process: the interval between successive changes of a page with rate
``lambda`` is exponentially distributed with density ``lambda * exp(-lambda*t)``
(Theorem 1). :class:`PoissonChangeProcess` is therefore the default model.

Two additional processes are provided for ablations and tests:

* :class:`PeriodicChangeProcess` changes at exactly fixed intervals, which is
  the "clockwork" counter-example against which the Poisson assumption can be
  compared (Figure 6 would show a spike instead of an exponential).
* :class:`BurstyChangeProcess` emits batches of changes followed by silent
  periods, modelling the Figure 1(b) caveat: a page that changes several
  times in one day and then rests, for which a once-a-day observer measures
  the interval between *batches* of changes.

All processes expose the same interface: a sorted array of change times over
a horizon, and helpers to count changes and look up the version of the page
at a given virtual time. Virtual time is measured in days.

The concrete processes register themselves in
:data:`repro.api.registry.CHANGE_MODELS` (``"poisson"``, ``"periodic"``,
``"bursty"``, ``"never"``), so web specs and the generator can select a
model by name.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from repro.api.registry import register_change_model


class ChangeProcess(ABC):
    """Abstract model of when a page's content changes.

    A change process is materialised over a finite horizon ``[0, horizon]``
    of virtual days. Implementations pre-sample the change times once, so
    that repeated queries (from crawlers, monitors and metrics) are
    consistent and cheap.
    """

    def __init__(self) -> None:
        self._change_times: Optional[List[float]] = None
        self._change_times_array: Optional[np.ndarray] = None
        self._horizon: float = 0.0

    @abstractmethod
    def _sample_change_times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        """Sample the (sorted) change times over ``[0, horizon]``."""

    @property
    @abstractmethod
    def mean_rate(self) -> float:
        """Expected number of changes per day."""

    def materialise(self, horizon: float, rng: np.random.Generator) -> None:
        """Sample and store change times over ``[0, horizon]``.

        Calling this twice replaces the previous sample; the web generator
        calls it exactly once per page.
        """
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        self._horizon = horizon
        self._change_times = sorted(self._sample_change_times(horizon, rng))
        self._change_times_array = None

    @property
    def is_materialised(self) -> bool:
        """True once :meth:`materialise` has been called."""
        return self._change_times is not None

    @property
    def horizon(self) -> float:
        """The horizon over which change times were sampled."""
        return self._horizon

    def change_times(self) -> Sequence[float]:
        """All sampled change times, sorted ascending."""
        self._require_materialised()
        return tuple(self._change_times)  # type: ignore[arg-type]

    def change_times_array(self) -> np.ndarray:
        """Sampled change times as a cached, read-only NumPy array.

        This is the representation the batched oracle consumes; the array is
        built once per materialisation, so repeated batched queries pay no
        conversion cost.
        """
        self._require_materialised()
        if self._change_times_array is None:
            array = np.asarray(self._change_times, dtype=float)
            array.setflags(write=False)
            self._change_times_array = array
        return self._change_times_array

    def version_at(self, t: float) -> int:
        """Number of changes that occurred at or before time ``t``.

        Version 0 is the content the page was created with; each change
        increments the version.
        """
        self._require_materialised()
        if t < 0:
            return 0
        return bisect.bisect_right(self._change_times, t)  # type: ignore[arg-type]

    def changes_between(self, t0: float, t1: float) -> int:
        """Number of changes in the half-open interval ``(t0, t1]``."""
        if t1 < t0:
            raise ValueError("t1 must not precede t0")
        return self.version_at(t1) - self.version_at(t0)

    def changed_between(self, t0: float, t1: float) -> bool:
        """True when at least one change occurred in ``(t0, t1]``."""
        return self.changes_between(t0, t1) > 0

    def next_change_after(self, t: float) -> Optional[float]:
        """Time of the first change strictly after ``t``, or None if none."""
        self._require_materialised()
        index = bisect.bisect_right(self._change_times, t)  # type: ignore[arg-type]
        if index >= len(self._change_times):  # type: ignore[arg-type]
            return None
        return self._change_times[index]  # type: ignore[index]

    def last_change_at_or_before(self, t: float) -> Optional[float]:
        """Time of the most recent change at or before ``t``, or None."""
        self._require_materialised()
        index = bisect.bisect_right(self._change_times, t)  # type: ignore[arg-type]
        if index == 0:
            return None
        return self._change_times[index - 1]  # type: ignore[index]

    def observed_intervals(self) -> List[float]:
        """Intervals between successive changes (used by the Figure 6 fit)."""
        times = self.change_times()
        return [b - a for a, b in zip(times, times[1:])]

    def _require_materialised(self) -> None:
        if self._change_times is None:
            raise RuntimeError(
                "change process has not been materialised; call materialise() first"
            )


@register_change_model("poisson")
class PoissonChangeProcess(ChangeProcess):
    """Poisson change process with a fixed rate (changes per day).

    This is the model the paper validates in Section 3.4 and uses for all of
    the Section 4 analysis.
    """

    def __init__(self, rate: float) -> None:
        super().__init__()
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self._rate = rate

    @property
    def mean_rate(self) -> float:
        return self._rate

    @property
    def mean_interval(self) -> float:
        """Expected number of days between changes (infinite for rate 0)."""
        if self._rate == 0:
            return float("inf")
        return 1.0 / self._rate

    def _sample_change_times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        if self._rate == 0 or horizon == 0:
            return []
        # Sample the number of events, then place them uniformly: conditional
        # on the count, Poisson event times are i.i.d. uniform on the horizon.
        count = rng.poisson(self._rate * horizon)
        return list(np.sort(rng.uniform(0.0, horizon, size=count)))


@register_change_model("periodic")
class PeriodicChangeProcess(ChangeProcess):
    """Deterministic change process: one change every ``interval`` days."""

    def __init__(self, interval: float, phase: float = 0.0) -> None:
        super().__init__()
        if interval <= 0:
            raise ValueError("interval must be positive")
        if phase < 0:
            raise ValueError("phase must be non-negative")
        self._interval = interval
        self._phase = phase % interval

    @property
    def mean_rate(self) -> float:
        return 1.0 / self._interval

    def _sample_change_times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        times = []
        t = self._phase if self._phase > 0 else self._interval
        while t <= horizon:
            times.append(t)
            t += self._interval
        return times


@register_change_model("bursty")
class BurstyChangeProcess(ChangeProcess):
    """Bursts of changes separated by exponential quiet periods.

    Burst arrival follows a Poisson process with rate ``burst_rate``; each
    burst contains ``burst_size`` changes spread over ``burst_duration`` days.
    A daily observer sees at most one change per day, so what it estimates is
    the interval between bursts — the situation of Figure 1(b).
    """

    def __init__(self, burst_rate: float, burst_size: int = 5, burst_duration: float = 0.5) -> None:
        super().__init__()
        if burst_rate < 0:
            raise ValueError("burst_rate must be non-negative")
        if burst_size < 1:
            raise ValueError("burst_size must be at least 1")
        if burst_duration < 0:
            raise ValueError("burst_duration must be non-negative")
        self._burst_rate = burst_rate
        self._burst_size = burst_size
        self._burst_duration = burst_duration

    @property
    def mean_rate(self) -> float:
        return self._burst_rate * self._burst_size

    @property
    def burst_rate(self) -> float:
        """Expected number of bursts per day."""
        return self._burst_rate

    def _sample_change_times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        if self._burst_rate == 0 or horizon == 0:
            return []
        n_bursts = rng.poisson(self._burst_rate * horizon)
        burst_starts = np.sort(rng.uniform(0.0, horizon, size=n_bursts))
        times: List[float] = []
        for start in burst_starts:
            offsets = rng.uniform(0.0, self._burst_duration, size=self._burst_size)
            for offset in offsets:
                t = start + offset
                if t <= horizon:
                    times.append(float(t))
        return times


@register_change_model("never")
class NeverChanges(ChangeProcess):
    """A page whose content never changes (the static edu/gov tail)."""

    @property
    def mean_rate(self) -> float:
        return 0.0

    def _sample_change_times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        return []
