"""Simulated web sites and their monitoring windows.

The paper's experiment monitors a *window* of pages per site: starting from
the site's root page, a breadth-first crawl of up to 3,000 pages
(Section 2.3). Pages enter and leave the window over time as they are
created and deleted.

A :class:`SimulatedSite` owns its pages, knows its root, and can answer
"which pages are inside the window at virtual time t" by walking the live
link structure breadth-first, exactly as the monitoring crawler would.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

from repro.simweb.page import SimulatedPage


class SimulatedSite:
    """A site: a root page plus the pages reachable below it.

    Args:
        site_id: Unique identifier, e.g. ``"site007.com"``.
        domain: Top-level domain (com/edu/netorg/gov).
        window_size: Maximum number of pages the monitoring window holds
            (the paper used 3,000; scaled-down simulations use less).
    """

    def __init__(self, site_id: str, domain: str, window_size: int) -> None:
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        self.site_id = site_id
        self.domain = domain
        self.window_size = window_size
        self._pages: Dict[str, SimulatedPage] = {}
        self._root_url: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @property
    def root_url(self) -> str:
        """URL of the site's root page."""
        if self._root_url is None:
            raise RuntimeError(f"site {self.site_id} has no root page yet")
        return self._root_url

    def add_page(self, page: SimulatedPage, is_root: bool = False) -> None:
        """Register a page with the site.

        Args:
            page: The page to add; its ``site_id`` must match this site.
            is_root: Mark this page as the site root. The root is expected to
                be permanent (the monitoring experiment always starts from
                the root page).
        """
        if page.site_id != self.site_id:
            raise ValueError(
                f"page {page.url} belongs to site {page.site_id}, not {self.site_id}"
            )
        if page.url in self._pages:
            raise ValueError(f"duplicate page URL {page.url}")
        self._pages[page.url] = page
        if is_root:
            if page.lifespan is not None:
                raise ValueError("the root page must be permanent")
            self._root_url = page.url

    def page(self, url: str) -> SimulatedPage:
        """Look up a page of this site by URL."""
        return self._pages[url]

    def __contains__(self, url: str) -> bool:
        return url in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def all_pages(self) -> Sequence[SimulatedPage]:
        """Every page ever attached to the site, regardless of liveness."""
        return tuple(self._pages.values())

    # ------------------------------------------------------------------ #
    # Window semantics
    # ------------------------------------------------------------------ #
    def live_pages_at(self, t: float) -> List[SimulatedPage]:
        """All pages of the site that exist at time ``t`` (window ignored)."""
        return [page for page in self._pages.values() if page.exists_at(t)]

    def window_at(self, t: float) -> List[SimulatedPage]:
        """Pages inside the monitoring window at time ``t``.

        The window is computed the way the paper's monitor works: a
        breadth-first traversal from the root over pages that exist at ``t``,
        truncated at ``window_size`` pages. Pages that exist but are not
        reachable from the root (e.g. their parent was deleted) are appended
        in increasing depth order if space remains, mirroring the fact that
        real sites expose orphan pages through navigation aids.
        """
        if self._root_url is None:
            return []
        live = {page.url: page for page in self.live_pages_at(t)}
        if self._root_url not in live:
            return []
        ordered: List[SimulatedPage] = []
        seen = set()
        queue = deque([self._root_url])
        while queue and len(ordered) < self.window_size:
            url = queue.popleft()
            if url in seen or url not in live:
                continue
            seen.add(url)
            page = live[url]
            ordered.append(page)
            for link in page.outlinks:
                if link in live and link not in seen:
                    queue.append(link)
        if len(ordered) < self.window_size:
            remaining = sorted(
                (page for url, page in live.items() if url not in seen),
                key=lambda page: (page.depth, page.url),
            )
            for page in remaining:
                if len(ordered) >= self.window_size:
                    break
                ordered.append(page)
        return ordered

    def window_urls_at(self, t: float) -> List[str]:
        """URLs inside the monitoring window at time ``t``."""
        return [page.url for page in self.window_at(t)]

    # ------------------------------------------------------------------ #
    # Convenience statistics
    # ------------------------------------------------------------------ #
    def mean_change_rate(self) -> float:
        """Average change rate (changes/day) over all pages of the site."""
        if not self._pages:
            return 0.0
        total = sum(page.change_process.mean_rate for page in self._pages.values())
        return total / len(self._pages)

    def urls(self) -> Iterable[str]:
        """All page URLs attached to the site."""
        return self._pages.keys()
