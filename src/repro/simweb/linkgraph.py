"""Link-graph generation for the synthetic web.

Two levels of structure are generated:

* **Intra-site links** — each site is a shallow tree rooted at the site's
  root page (this is what makes the breadth-first "page window" of
  Section 2.1 meaningful), plus a few random shortcut links.
* **Cross-site links** — sites link to each other with preferential
  attachment, so that a small number of sites accumulate most of the
  in-links. This skew is what makes the site-level PageRank used for site
  selection (Section 2.2) produce a meaningful "popular sites" ranking, and
  what gives the page-level PageRank of the RankingModule a realistic,
  heavy-tailed importance distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.simweb.page import SimulatedPage
from repro.simweb.site import SimulatedSite


@dataclass(frozen=True)
class LinkGraphConfig:
    """Parameters controlling link-graph generation.

    Attributes:
        branching_factor: Average number of children per page in the
            intra-site tree.
        shortcut_links_per_page: Average number of extra random intra-site
            links per page (beyond the tree edges).
        cross_links_per_site: Average number of links from a site to root
            pages of other sites.
        preferential_attachment_bias: Strength of the rich-get-richer effect
            when choosing cross-link targets; 0 gives uniform targets, larger
            values concentrate links on already-popular sites.
    """

    branching_factor: int = 5
    shortcut_links_per_page: float = 1.0
    cross_links_per_site: int = 10
    preferential_attachment_bias: float = 1.0

    def __post_init__(self) -> None:
        if self.branching_factor < 1:
            raise ValueError("branching_factor must be at least 1")
        if self.shortcut_links_per_page < 0:
            raise ValueError("shortcut_links_per_page must be non-negative")
        if self.cross_links_per_site < 0:
            raise ValueError("cross_links_per_site must be non-negative")
        if self.preferential_attachment_bias < 0:
            raise ValueError("preferential_attachment_bias must be non-negative")


def generate_site_links(
    pages: Sequence[SimulatedPage],
    config: LinkGraphConfig,
    rng: np.random.Generator,
) -> None:
    """Wire the pages of one site into a tree plus random shortcuts.

    ``pages`` must be ordered by creation: the first page is treated as the
    root (depth 0) and every later page is attached under an earlier page,
    which guarantees that every page is reachable from the root when all
    pages are alive.

    Args:
        pages: Pages of a single site, root first.
        config: Link-graph parameters.
        rng: Random generator.
    """
    if not pages:
        return
    for index, page in enumerate(pages):
        if index == 0:
            continue
        # Attach under a page with a smaller index, preferring shallow pages
        # so the tree stays wide (large breadth-first window).
        max_parent = index
        parent_index = int(rng.integers(0, max_parent))
        # Bias toward earlier (shallower) pages.
        parent_index = min(parent_index, int(rng.integers(0, max_parent)))
        parent = pages[parent_index]
        parent.add_outlink(page.url)
        page.depth = parent.depth + 1
    # Random shortcuts within the site.
    n_pages = len(pages)
    if n_pages > 2 and config.shortcut_links_per_page > 0:
        n_shortcuts = rng.poisson(config.shortcut_links_per_page * n_pages)
        for _ in range(int(n_shortcuts)):
            source = pages[int(rng.integers(0, n_pages))]
            target = pages[int(rng.integers(0, n_pages))]
            if source.url != target.url:
                source.add_outlink(target.url)


def generate_cross_links(
    sites: Sequence[SimulatedSite],
    config: LinkGraphConfig,
    rng: np.random.Generator,
) -> Dict[str, int]:
    """Add links between sites with preferential attachment.

    Each site emits ``cross_links_per_site`` links (on average) from randomly
    chosen pages of the site to the *root pages* of other sites. Targets are
    chosen proportionally to ``1 + bias * in_degree``, which concentrates
    links on a few "popular" sites.

    Args:
        sites: All sites of the synthetic web.
        config: Link-graph parameters.
        rng: Random generator.

    Returns:
        Mapping from site id to the number of cross-site in-links it
        received (useful for tests and for sanity-checking popularity skew).
    """
    if len(sites) < 2 or config.cross_links_per_site == 0:
        return {site.site_id: 0 for site in sites}
    in_degree = {site.site_id: 0 for site in sites}
    site_list = list(sites)
    for site in site_list:
        source_pages = [page for page in site.all_pages]
        if not source_pages:
            continue
        n_links = rng.poisson(config.cross_links_per_site)
        for _ in range(int(n_links)):
            target = _choose_target(site, site_list, in_degree, config, rng)
            if target is None:
                continue
            source = source_pages[int(rng.integers(0, len(source_pages)))]
            source.add_outlink(target.root_url)
            in_degree[target.site_id] += 1
    return in_degree


def _choose_target(
    source: SimulatedSite,
    sites: List[SimulatedSite],
    in_degree: Dict[str, int],
    config: LinkGraphConfig,
    rng: np.random.Generator,
) -> SimulatedSite:
    """Pick a cross-link target site (never the source) by popularity."""
    candidates = [site for site in sites if site.site_id != source.site_id]
    if not candidates:
        return None
    weights = np.array(
        [1.0 + config.preferential_attachment_bias * in_degree[site.site_id]
         for site in candidates],
        dtype=float,
    )
    weights /= weights.sum()
    index = int(rng.choice(len(candidates), p=weights))
    return candidates[index]


def page_link_graph(
    pages: Sequence[SimulatedPage],
) -> Dict[str, Tuple[str, ...]]:
    """Adjacency mapping ``url -> outlinks`` restricted to the given pages.

    Links pointing outside the given page set are dropped; this is the graph
    the RankingModule sees when it ranks only collected pages.
    """
    urls = {page.url for page in pages}
    return {
        page.url: tuple(link for link in page.outlinks if link in urls)
        for page in pages
    }


def page_link_graph_sparse(pages: Sequence[SimulatedPage]) -> "LinkGraph":
    """:func:`page_link_graph` interned straight into a sparse LinkGraph.

    Skips the intermediate dict-of-tuples, which matters when the page set
    is large (ground-truth ranking over the full synthetic web, the ranking
    benchmark kernels).
    """
    from repro.ranking.sparse import LinkGraph

    urls = {page.url for page in pages}
    graph = LinkGraph()
    for page in pages:
        graph.set_outlinks(
            page.url, (link for link in page.outlinks if link in urls)
        )
    return graph
