"""Site selection for the monitoring experiment (Section 2.2, Table 1).

The paper identified the 400 most "popular" sites in the WebBase snapshot
using a site-level PageRank over the hypergraph of sites, asked the
webmasters for permission, and ended up with 270 consenting sites: 132 com,
78 edu, 30 netorg and 30 gov (Table 1).

:func:`select_sites` reproduces that pipeline against a synthetic web:
compute site-level PageRank, take the top ``n_candidates`` sites, and apply
a per-site consent draw so that roughly ``consent_rate`` of them remain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.ranking.site_rank import site_pagerank, top_sites
from repro.simweb.linkgraph import page_link_graph
from repro.simweb.web import SimulatedWeb

#: The paper's Table 1, for paper-vs-measured comparisons.
PAPER_TABLE1_SITE_COUNTS: Dict[str, int] = {
    "com": 132,
    "edu": 78,
    "netorg": 30,
    "gov": 30,
}


@dataclass(frozen=True)
class SiteSelection:
    """Outcome of the site-selection step.

    Attributes:
        candidate_site_ids: The popular candidate sites, most popular first.
        selected_site_ids: Candidates whose webmasters consented.
        domain_counts: Number of selected sites per domain (the Table 1
            quantity).
        popularity: Site-level PageRank score of every site in the web.
    """

    candidate_site_ids: Sequence[str]
    selected_site_ids: Sequence[str]
    domain_counts: Dict[str, int]
    popularity: Dict[str, float]

    @property
    def n_selected(self) -> int:
        """Number of sites that will be monitored."""
        return len(self.selected_site_ids)


def select_sites(
    web: SimulatedWeb,
    n_candidates: int = 400,
    consent_rate: float = 270.0 / 400.0,
    seed: int = 0,
) -> SiteSelection:
    """Select the sites to monitor, following the paper's procedure.

    Args:
        web: The synthetic web (its full link graph stands in for the
            25-million-page WebBase snapshot the paper used).
        n_candidates: Number of most-popular candidate sites to contact
            (400 in the paper). Capped at the number of sites in the web.
        consent_rate: Probability that a candidate site's webmaster grants
            permission (270/400 in the paper).
        seed: Seed of the consent draw.

    Returns:
        A :class:`SiteSelection` with the candidates, the consenting sites
        and the per-domain counts.
    """
    if n_candidates < 1:
        raise ValueError("n_candidates must be at least 1")
    if not 0.0 < consent_rate <= 1.0:
        raise ValueError("consent_rate must be within (0, 1]")
    graph = page_link_graph(list(web.pages()))
    popularity = site_pagerank(graph, site_of=lambda url: web.page(url).site_id)
    n_candidates = min(n_candidates, web.n_sites)
    candidates = top_sites(popularity, n_candidates)

    rng = np.random.default_rng(seed)
    selected: List[str] = [
        site_id for site_id in candidates if rng.random() < consent_rate
    ]
    if not selected:
        # Degenerate tiny webs with an unlucky draw: keep the most popular
        # candidate so downstream analyses always have something to monitor.
        selected = [candidates[0]]

    domain_counts: Dict[str, int] = {}
    for site_id in selected:
        domain = web.site(site_id).domain
        domain_counts[domain] = domain_counts.get(domain, 0) + 1

    return SiteSelection(
        candidate_site_ids=tuple(candidates),
        selected_site_ids=tuple(selected),
        domain_counts=domain_counts,
        popularity=popularity,
    )


def domain_share(domain_counts: Dict[str, int]) -> Dict[str, float]:
    """Fraction of selected sites per domain (for shape comparisons)."""
    total = sum(domain_counts.values())
    if total == 0:
        return {domain: 0.0 for domain in domain_counts}
    return {domain: count / total for domain, count in domain_counts.items()}
