"""How long does it take for 50% of the web to change? (Section 3.3, Figure 5)

Starting from the pages present on the first day of the experiment, the
analysis tracks, for each subsequent day, the fraction of those pages that
have neither changed nor disappeared from the window. The day at which this
curve crosses 0.5 is the paper's "time for 50% of the web to change": about
50 days overall, only 11 days for the com domain and almost four months for
gov.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiment.monitor import ObservationLog, PageObservationHistory

#: The paper's headline numbers for paper-vs-measured comparisons (days for
#: 50% of the pages of a domain to change or be replaced).
PAPER_FIGURE5_HALF_CHANGE_DAYS: Dict[str, float] = {
    "overall": 50.0,
    "com": 11.0,
    "gov": 120.0,
}


@dataclass(frozen=True)
class SurvivalCurve:
    """Fraction of initially present pages still unchanged, per day."""

    days: Sequence[int]
    unchanged_fraction: Sequence[float]

    def half_change_day(self) -> Optional[float]:
        """First day at which at most half of the pages remain unchanged.

        Returns ``None`` when the curve never reaches 0.5 within the
        experiment (as the paper observed for the gov domain, where 50%
        change takes almost the full four months).
        """
        for day, fraction in zip(self.days, self.unchanged_fraction):
            if fraction <= 0.5:
                return float(day)
        return None

    def fraction_at(self, day: int) -> float:
        """Unchanged fraction at ``day`` (clamped to the curve's range)."""
        if not self.days:
            return 0.0
        if day <= self.days[0]:
            return self.unchanged_fraction[0]
        for d, fraction in zip(self.days, self.unchanged_fraction):
            if d >= day:
                return fraction
        return self.unchanged_fraction[-1]


@dataclass(frozen=True)
class SurvivalAnalysis:
    """Result of the Figure 5 analysis.

    Attributes:
        overall: Survival curve over all domains (Figure 5(a)).
        by_domain: Survival curve per domain (Figure 5(b)).
    """

    overall: SurvivalCurve
    by_domain: Dict[str, SurvivalCurve]

    def half_change_days(self) -> Dict[str, Optional[float]]:
        """Days to 50% change, overall and per domain."""
        result: Dict[str, Optional[float]] = {"overall": self.overall.half_change_day()}
        for domain, curve in self.by_domain.items():
            result[domain] = curve.half_change_day()
        return result


def analyze_survival(log: ObservationLog) -> SurvivalAnalysis:
    """Build the Figure 5 survival curves from an observation log."""
    initial_pages = log.pages_present_at_start()
    days = list(range(log.start_day, log.end_day + 1))
    overall = _survival_curve(initial_pages, days, log.start_day)
    by_domain: Dict[str, SurvivalCurve] = {}
    for domain in sorted({history.domain for history in initial_pages}):
        domain_pages = [
            history for history in initial_pages if history.domain == domain
        ]
        by_domain[domain] = _survival_curve(domain_pages, days, log.start_day)
    return SurvivalAnalysis(overall=overall, by_domain=by_domain)


def _survival_curve(
    pages: List[PageObservationHistory], days: Sequence[int], start_day: int
) -> SurvivalCurve:
    """Fraction of ``pages`` unchanged and still present on each day."""
    if not pages:
        return SurvivalCurve(days=tuple(days), unchanged_fraction=tuple(0.0 for _ in days))
    # A page "survives" until its first detected change or its disappearance
    # from the window, whichever comes first.
    survival_end: List[float] = []
    for history in pages:
        first_change = history.change_days[0] if history.change_days else None
        disappearance = (
            history.last_seen_day + 1
            if history.last_seen_day is not None
            else None
        )
        candidates = [c for c in (first_change, disappearance) if c is not None]
        survival_end.append(min(candidates) if candidates else float("inf"))
    fractions = []
    n = len(pages)
    for day in days:
        surviving = sum(1 for end in survival_end if end > day)
        fractions.append(surviving / n)
    return SurvivalCurve(days=tuple(days), unchanged_fraction=tuple(fractions))
