"""Average change-interval analysis (Section 3.1, Figure 2).

For every observed page, the average change interval is estimated as the
observed span divided by the number of detected changes; pages with no
detected change fall into the ``> 4 months`` bucket (the paper cannot tell
how often such pages change either — it only knows the interval exceeds the
experiment length). The per-page estimates are then bucketed into the
Figure 2 histogram, overall and per domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.histograms import (
    CHANGE_INTERVAL_BUCKETS,
    BucketedHistogram,
)
from repro.experiment.monitor import ObservationLog, PageObservationHistory

#: Approximate Figure 2 values used for paper-vs-measured comparisons. The
#: per-domain entries quote the claims made in the text: more than 40% of
#: com pages changed every day; more than half of edu and gov pages did not
#: change during the whole experiment.
PAPER_FIGURE2_OVERALL: Dict[str, float] = {
    "<=1day": 0.23,
    ">1day,<=1week": 0.15,
    ">1week,<=1month": 0.16,
    ">1month,<=4months": 0.16,
    ">4months": 0.30,
}


@dataclass(frozen=True)
class ChangeIntervalAnalysis:
    """Result of the Figure 2 analysis.

    Attributes:
        overall: Histogram over all observed pages (Figure 2(a)).
        by_domain: Histogram per domain (Figure 2(b)).
        mean_interval_estimate_days: Crude estimate of the overall average
            change interval obtained the way the paper does it: assume the
            always-changing pages change every day and the never-changing
            pages change once a year.
    """

    overall: BucketedHistogram
    by_domain: Dict[str, BucketedHistogram]
    mean_interval_estimate_days: float

    def overall_fractions(self) -> Dict[str, float]:
        """Bucket label to fraction, over all domains."""
        return self.overall.labelled_fractions()

    def domain_fractions(self, domain: str) -> Dict[str, float]:
        """Bucket label to fraction for one domain."""
        return self.by_domain[domain].labelled_fractions()


def analyze_change_intervals(
    log: ObservationLog,
    assumed_fast_interval_days: float = 1.0,
    assumed_slow_interval_days: float = 365.0,
    min_days_observed: int = 2,
) -> ChangeIntervalAnalysis:
    """Build the Figure 2 histograms from an observation log.

    Args:
        log: The monitoring output.
        assumed_fast_interval_days: Interval assumed for pages that changed
            at every visit (the paper's "pages in the first bar change every
            day" approximation).
        assumed_slow_interval_days: Interval assumed for pages that never
            changed (the paper's "pages in the fifth bar change every year"
            approximation).
        min_days_observed: Pages observed fewer days than this are skipped —
            a single observation says nothing about change behaviour.

    Returns:
        The :class:`ChangeIntervalAnalysis`.
    """
    overall = BucketedHistogram(CHANGE_INTERVAL_BUCKETS)
    by_domain: Dict[str, BucketedHistogram] = {}
    crude_intervals: List[float] = []

    for history in log.pages.values():
        if history.days_observed < min_days_observed:
            continue
        interval = _estimated_interval(history)
        bucket_value = interval if interval is not None else float("inf")
        overall.add(bucket_value)
        domain_histogram = by_domain.setdefault(
            history.domain, BucketedHistogram(CHANGE_INTERVAL_BUCKETS)
        )
        domain_histogram.add(bucket_value)
        crude_intervals.append(
            _crude_interval(
                interval, assumed_fast_interval_days, assumed_slow_interval_days
            )
        )

    mean_estimate = (
        sum(crude_intervals) / len(crude_intervals) if crude_intervals else 0.0
    )
    return ChangeIntervalAnalysis(
        overall=overall,
        by_domain=by_domain,
        mean_interval_estimate_days=mean_estimate,
    )


def _estimated_interval(history: PageObservationHistory) -> Optional[float]:
    """Per-page average change interval, or None when no change was seen."""
    return history.average_change_interval()


def _crude_interval(
    interval: Optional[float],
    assumed_fast_interval_days: float,
    assumed_slow_interval_days: float,
) -> float:
    """The paper's crude overall-average approximation for one page."""
    if interval is None:
        return assumed_slow_interval_days
    if interval <= 1.0:
        return assumed_fast_interval_days
    return interval
