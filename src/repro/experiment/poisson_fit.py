"""Does a Poisson model describe page changes? (Section 3.4, Figure 6)

The paper selects pages with a given average change interval (e.g. 10 or 20
days), plots the distribution of the intervals between their successive
detected changes on a log scale, and observes that the distribution is
exponential — the signature of a Poisson process.

:func:`fit_poisson_model` reproduces that analysis from an observation log:
select pages whose estimated average change interval falls within a
tolerance of the target, pool their observed inter-change intervals, fit an
exponential distribution and report goodness-of-fit diagnostics, together
with the binned empirical distribution that Figure 6 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.statistics import ExponentialFit, fit_exponential
from repro.experiment.monitor import ObservationLog


@dataclass(frozen=True)
class PoissonFitResult:
    """Result of the Figure 6 analysis for one target change interval.

    Attributes:
        target_interval_days: The average change interval of the selected
            pages (10 or 20 days in the paper).
        n_pages: Number of pages selected.
        n_intervals: Number of pooled inter-change intervals.
        fit: Exponential fit diagnostics (None when too little data).
        histogram_bins: Left edges of the interval histogram bins (days).
        histogram_fractions: Fraction of observed intervals per bin — the
            empirical points of Figure 6.
        predicted_fractions: Fractions predicted by the fitted exponential
            distribution for the same bins — the solid line of Figure 6.
    """

    target_interval_days: float
    n_pages: int
    n_intervals: int
    fit: Optional[ExponentialFit]
    histogram_bins: Sequence[float]
    histogram_fractions: Sequence[float]
    predicted_fractions: Sequence[float]

    @property
    def looks_exponential(self) -> bool:
        """Whether the data are consistent with a Poisson change process."""
        return self.fit is not None and self.fit.is_plausibly_exponential


def fit_poisson_model(
    log: ObservationLog,
    target_interval_days: float,
    tolerance: float = 0.35,
    bin_width_days: float = 5.0,
    max_interval_days: Optional[float] = None,
    min_intervals: int = 20,
) -> PoissonFitResult:
    """Run the Figure 6 analysis for one target change interval.

    Args:
        log: The monitoring output.
        target_interval_days: Average change interval of the pages to select.
        tolerance: Relative tolerance of the selection (0.35 selects pages
            whose estimate is within 35% of the target).
        bin_width_days: Width of the histogram bins.
        max_interval_days: Largest interval included in the histogram;
            defaults to four times the target.
        min_intervals: Minimum number of pooled intervals required to
            attempt the exponential fit.

    Returns:
        A :class:`PoissonFitResult`.
    """
    if target_interval_days <= 0:
        raise ValueError("target_interval_days must be positive")
    if not 0 < tolerance < 1:
        raise ValueError("tolerance must be within (0, 1)")
    if max_interval_days is None:
        max_interval_days = 4.0 * target_interval_days

    selected_pages = 0
    intervals: List[float] = []
    for history in log.pages.values():
        estimate = history.average_change_interval()
        if estimate is None:
            continue
        if abs(estimate - target_interval_days) > tolerance * target_interval_days:
            continue
        selected_pages += 1
        intervals.extend(
            interval for interval in history.change_intervals() if interval > 0
        )

    fit = fit_exponential(intervals) if len(intervals) >= min_intervals else None
    bins, observed, predicted = _binned_distribution(
        intervals, bin_width_days, max_interval_days, fit
    )
    return PoissonFitResult(
        target_interval_days=target_interval_days,
        n_pages=selected_pages,
        n_intervals=len(intervals),
        fit=fit,
        histogram_bins=bins,
        histogram_fractions=observed,
        predicted_fractions=predicted,
    )


def _binned_distribution(
    intervals: Sequence[float],
    bin_width_days: float,
    max_interval_days: float,
    fit: Optional[ExponentialFit],
) -> Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]]:
    """Empirical and predicted interval fractions per bin."""
    if bin_width_days <= 0 or max_interval_days <= 0:
        raise ValueError("bin widths and maxima must be positive")
    edges = np.arange(0.0, max_interval_days + bin_width_days, bin_width_days)
    if len(edges) < 2:
        return (), (), ()
    data = np.asarray([i for i in intervals if i <= max_interval_days], dtype=float)
    counts, _ = np.histogram(data, bins=edges)
    total = counts.sum()
    observed = counts / total if total > 0 else np.zeros_like(counts, dtype=float)
    if fit is None:
        predicted = np.zeros_like(observed)
    else:
        rate = fit.rate
        cdf = 1.0 - np.exp(-rate * edges)
        predicted = np.diff(cdf)
    return (
        tuple(float(edge) for edge in edges[:-1]),
        tuple(float(value) for value in observed),
        tuple(float(value) for value in predicted),
    )
