"""Daily active monitoring with a page window (Section 2.1).

The paper's monitor revisits each selected site once a day: starting from
the site's root page, it follows links breadth-first until it has seen the
site's page window (up to 3,000 pages), and records, for every page in the
window, whether the page is present and whether its content changed since
the previous observation (detected by comparing checksums).

:class:`ActiveMonitor` reproduces that loop against the synthetic web,
producing an :class:`ObservationLog` that the Figure 2/4/5/6 analyses
consume. Note the same measurement limitations the paper discusses apply
here by construction: at most one change per day can be detected per page
(Figure 1), and lifespans are censored by the experiment window (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.fetch.checksum import page_checksum
from repro.fetch.fetcher import SimulatedFetcher
from repro.simweb.web import SimulatedWeb


@dataclass
class PageObservationHistory:
    """Everything the monitor learned about one page.

    Attributes:
        url: The page URL.
        site_id: Owning site.
        domain: Owning site's top-level domain.
        first_seen_day: First day (inclusive) the page was inside the window.
        last_seen_day: Last day (inclusive) the page was inside the window.
        days_observed: Number of days the page was observed in the window.
        change_days: Days on which the observed checksum differed from the
            previous observation of the page.
    """

    url: str
    site_id: str
    domain: str
    first_seen_day: int
    last_seen_day: int
    days_observed: int = 0
    change_days: List[int] = field(default_factory=list)

    @property
    def n_changes(self) -> int:
        """Number of detected changes."""
        return len(self.change_days)

    @property
    def observed_span_days(self) -> int:
        """Days between the first and last observation, inclusive."""
        return self.last_seen_day - self.first_seen_day + 1

    @property
    def change_observation_days(self) -> int:
        """Days over which changes could be detected.

        The first observation only establishes the baseline checksum, so a
        page observed on ``n`` consecutive days has ``n - 1`` opportunities
        to show a change. Using this as the denominator gives the estimator
        its natural one-day granularity: a page that changed at every visit
        gets an estimated interval of exactly one day (the paper's first
        histogram bar).
        """
        return max(1, self.last_seen_day - self.first_seen_day)

    def average_change_interval(self) -> Optional[float]:
        """Observation days divided by detected changes (None when no change).

        This is the Section 3.1 estimator: "if a page existed within our
        window for 50 days, and if the page changed 5 times in that period,
        we can estimate the average change interval of the page to be
        50 days / 5 = 10 days."
        """
        if self.n_changes == 0:
            return None
        return self.change_observation_days / self.n_changes

    def change_intervals(self) -> List[float]:
        """Intervals (days) between successive detected changes."""
        return [
            float(b - a) for a, b in zip(self.change_days, self.change_days[1:])
        ]


@dataclass
class ObservationLog:
    """The full output of a monitoring run.

    Attributes:
        start_day: First day of the experiment (inclusive).
        end_day: Last day of the experiment (inclusive).
        pages: Mapping from URL to its observation history.
        monitored_site_ids: The sites that were monitored.
    """

    start_day: int
    end_day: int
    pages: Dict[str, PageObservationHistory] = field(default_factory=dict)
    monitored_site_ids: Sequence[str] = ()

    @property
    def duration_days(self) -> int:
        """Number of days the experiment ran, inclusive of both endpoints."""
        return self.end_day - self.start_day + 1

    @property
    def n_pages(self) -> int:
        """Number of distinct pages ever observed."""
        return len(self.pages)

    def pages_in_domain(self, domain: str) -> List[PageObservationHistory]:
        """Histories of all observed pages belonging to ``domain``."""
        return [history for history in self.pages.values() if history.domain == domain]

    def domains(self) -> List[str]:
        """Sorted list of domains present in the log."""
        return sorted({history.domain for history in self.pages.values()})

    def pages_present_at_start(self) -> List[PageObservationHistory]:
        """Pages already inside the window on the first day."""
        return [
            history
            for history in self.pages.values()
            if history.first_seen_day == self.start_day
        ]


class ActiveMonitor:
    """Runs the daily monitoring loop over a set of sites.

    Args:
        web: The synthetic web.
        site_ids: Sites to monitor; defaults to every site in the web.
        fetcher: Optional fetcher to route observations through. When
            omitted a plain fetcher without politeness delays is used — the
            experiment's correctness does not depend on politeness, only its
            feasibility did (Section 2.3).
        visit_hour_fraction: Time of day at which the daily visit happens
            (0.9 ~ "at night", matching the paper's nightly crawl).
    """

    def __init__(
        self,
        web: SimulatedWeb,
        site_ids: Optional[Sequence[str]] = None,
        fetcher: Optional[SimulatedFetcher] = None,
        visit_hour_fraction: float = 0.9,
    ) -> None:
        if not 0.0 <= visit_hour_fraction < 1.0:
            raise ValueError("visit_hour_fraction must be within [0, 1)")
        self._web = web
        self._site_ids = list(site_ids) if site_ids is not None else [
            site.site_id for site in web.sites
        ]
        self._fetcher = fetcher if fetcher is not None else SimulatedFetcher(web)
        self._visit_hour_fraction = visit_hour_fraction

    def run(self, start_day: int = 0, end_day: Optional[int] = None) -> ObservationLog:
        """Monitor every selected site daily from ``start_day`` to ``end_day``.

        Args:
            start_day: First day of the experiment.
            end_day: Last day (inclusive); defaults to the web's horizon.

        Returns:
            The populated :class:`ObservationLog`.
        """
        if end_day is None:
            end_day = int(self._web.horizon_days) - 1
        if end_day < start_day:
            raise ValueError("end_day must not precede start_day")
        log = ObservationLog(
            start_day=start_day,
            end_day=end_day,
            monitored_site_ids=tuple(self._site_ids),
        )
        last_checksums: Dict[str, str] = {}
        for day in range(start_day, end_day + 1):
            visit_time = min(
                day + self._visit_hour_fraction, self._web.horizon_days
            )
            for site_id in self._site_ids:
                self._observe_site(site_id, day, visit_time, log, last_checksums)
        return log

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _observe_site(
        self,
        site_id: str,
        day: int,
        visit_time: float,
        log: ObservationLog,
        last_checksums: Dict[str, str],
    ) -> None:
        site = self._web.site(site_id)
        for page in site.window_at(visit_time):
            result = self._fetcher.fetch(page.url, at=visit_time)
            if not result.ok:
                continue
            self._record_observation(
                log, last_checksums, page.url, site_id, site.domain, day, result.checksum
            )

    @staticmethod
    def _record_observation(
        log: ObservationLog,
        last_checksums: Dict[str, str],
        url: str,
        site_id: str,
        domain: str,
        day: int,
        checksum: str,
    ) -> None:
        history = log.pages.get(url)
        if history is None:
            history = PageObservationHistory(
                url=url,
                site_id=site_id,
                domain=domain,
                first_seen_day=day,
                last_seen_day=day,
                days_observed=1,
            )
            log.pages[url] = history
            last_checksums[url] = checksum
            return
        previous_checksum = last_checksums.get(url)
        if previous_checksum is not None and previous_checksum != checksum:
            history.change_days.append(day)
        last_checksums[url] = checksum
        history.last_seen_day = day
        history.days_observed += 1
