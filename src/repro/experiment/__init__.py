"""The web-evolution experiment of Sections 2 and 3.

The paper crawled a window of pages from 270 "popular" sites daily for about
four months and analysed how pages change and how long they live. This
package reproduces the full pipeline against the synthetic web:

* :mod:`repro.experiment.site_selection` — pick candidate sites by
  site-level PageRank and apply webmaster consent, reproducing the Table 1
  domain mix;
* :mod:`repro.experiment.monitor` — daily active crawling of each site's
  page window (Section 2.1), producing an observation log;
* :mod:`repro.experiment.change_interval` — average change-interval
  histograms (Figure 2);
* :mod:`repro.experiment.lifespan_analysis` — visible-lifespan histograms
  with the two censoring corrections (Figure 4);
* :mod:`repro.experiment.survival` — the fraction of pages unchanged by a
  given day and the time for 50% of the web to change (Figure 5);
* :mod:`repro.experiment.poisson_fit` — the exponential-interval check of
  the Poisson change model (Figure 6).
"""

from repro.experiment.monitor import ActiveMonitor, ObservationLog, PageObservationHistory
from repro.experiment.site_selection import SiteSelection, select_sites
from repro.experiment.change_interval import (
    ChangeIntervalAnalysis,
    analyze_change_intervals,
)
from repro.experiment.lifespan_analysis import LifespanAnalysis, analyze_lifespans
from repro.experiment.survival import SurvivalAnalysis, analyze_survival
from repro.experiment.poisson_fit import PoissonFitResult, fit_poisson_model

__all__ = [
    "ActiveMonitor",
    "ObservationLog",
    "PageObservationHistory",
    "SiteSelection",
    "select_sites",
    "ChangeIntervalAnalysis",
    "analyze_change_intervals",
    "LifespanAnalysis",
    "analyze_lifespans",
    "SurvivalAnalysis",
    "analyze_survival",
    "PoissonFitResult",
    "fit_poisson_model",
]
