"""Visible-lifespan analysis (Section 3.2, Figure 4).

The visible lifespan of a page is how long it stays inside its site's
monitoring window. Because the experiment ran for a finite period, lifespans
are censored (Figure 3): pages present on the first day may have existed
long before, and pages present on the last day may persist long after. The
paper handles this with two estimates:

* **Method 1** uses the observed span ``s`` as the lifespan;
* **Method 2** uses ``2s`` for pages whose span touches either end of the
  experiment (cases (a), (c) and (d) of Figure 3) and ``s`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.histograms import LIFESPAN_BUCKETS, BucketedHistogram
from repro.experiment.monitor import ObservationLog, PageObservationHistory

#: Approximate Figure 4(a) (Method 1) values for paper-vs-measured
#: comparisons; the paper states that more than 70% of pages remained in the
#: window for more than one month.
PAPER_FIGURE4_METHOD1: Dict[str, float] = {
    "<=1week": 0.13,
    ">1week,<=1month": 0.19,
    ">1month,<=4months": 0.35,
    ">4months": 0.33,
}


@dataclass(frozen=True)
class LifespanAnalysis:
    """Result of the Figure 4 analysis.

    Attributes:
        method1_overall: Lifespan histogram using Method 1 (span as is).
        method2_overall: Lifespan histogram using Method 2 (censored spans
            doubled).
        method1_by_domain: Method 1 histogram per domain (Figure 4(b)).
        censored_fraction: Fraction of observed pages whose span touches an
            end of the experiment (the pages the two methods disagree on).
    """

    method1_overall: BucketedHistogram
    method2_overall: BucketedHistogram
    method1_by_domain: Dict[str, BucketedHistogram]
    censored_fraction: float

    def fraction_longer_than_a_month_method1(self) -> float:
        """Fraction of pages visible for more than one month (Method 1)."""
        fractions = self.method1_overall.labelled_fractions()
        return fractions[">1month,<=4months"] + fractions[">4months"]


def analyze_lifespans(log: ObservationLog) -> LifespanAnalysis:
    """Build the Figure 4 histograms from an observation log."""
    method1 = BucketedHistogram(LIFESPAN_BUCKETS)
    method2 = BucketedHistogram(LIFESPAN_BUCKETS)
    by_domain: Dict[str, BucketedHistogram] = {}
    censored_count = 0
    total = 0

    for history in log.pages.values():
        span = float(history.observed_span_days)
        censored = _is_censored(history, log)
        method1.add(span)
        method2.add(2.0 * span if censored else span)
        domain_histogram = by_domain.setdefault(
            history.domain, BucketedHistogram(LIFESPAN_BUCKETS)
        )
        domain_histogram.add(span)
        censored_count += 1 if censored else 0
        total += 1

    censored_fraction = censored_count / total if total else 0.0
    return LifespanAnalysis(
        method1_overall=method1,
        method2_overall=method2,
        method1_by_domain=by_domain,
        censored_fraction=censored_fraction,
    )


def _is_censored(history: PageObservationHistory, log: ObservationLog) -> bool:
    """True when the page's span touches either end of the experiment.

    These are the Figure 3 cases (a), (c) and (d): the page already existed
    when monitoring started and/or still existed when monitoring ended, so
    its true lifespan is only known to be at least the observed span.
    """
    starts_at_beginning = history.first_seen_day <= log.start_day
    ends_at_end = history.last_seen_day >= log.end_day
    return starts_at_beginning or ends_at_end
