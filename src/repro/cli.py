"""Command-line interface.

The CLI is a thin shim over the declarative experiment API
(:mod:`repro.api`): every subcommand builds an
:class:`~repro.api.specs.ExperimentSpec` (or resolves registry entries) and
routes it through :func:`repro.api.runner.run`.

``python -m repro web-stats``
    Generate a synthetic web and print its calibration statistics.
``python -m repro run-experiment``
    Run the Sections 2-3 monitoring experiment and print the Figure 2/4/5
    style analyses.
``python -m repro run-crawler``
    Run the incremental crawler (or the periodic baseline) against a
    synthetic web and print freshness/quality.
``python -m repro compare-policies``
    Print the Table 2 design-choice comparison and the revisit-policy gains.
``python -m repro run-spec FILE.json``
    Run a JSON-defined experiment end to end and emit the JSON result
    (with seed and spec-hash provenance).
``python -m repro run-matrix FILE.json``
    Run a JSON scenario matrix (a base spec crossed with axes of values),
    optionally across worker processes, and emit every cell's JSON result.
``python -m repro list-scenarios``
    List the registered scenarios, revisit policies, estimators and change
    models available to specs.
``python -m repro list-backends``
    List the registered storage backends a crawl spec can persist into.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.report import format_bar_chart, format_table
from repro.api.registry import (
    CHANGE_MODELS,
    ESTIMATORS,
    REVISIT_POLICIES,
    SCENARIOS,
    STORAGE_BACKENDS,
)
from repro.api.runner import ScenarioMatrix, build_web, run, run_matrix
from repro.api.specs import CrawlerSpec, ExperimentSpec, PolicySpec, WebSpec


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Cho & Garcia-Molina, VLDB 2000 "
                    "(incremental crawler and web-evolution study).",
    )
    parser.add_argument("--seed", type=int, default=17, help="random seed")
    parser.add_argument(
        "--site-scale", type=float, default=0.05,
        help="multiplier on the paper's per-domain site counts (1.0 = 270 sites)",
    )
    parser.add_argument(
        "--pages-per-site", type=int, default=30,
        help="pages initially present at each site",
    )
    parser.add_argument(
        "--horizon-days", type=float, default=127.0,
        help="virtual-time horizon of the synthetic web",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("web-stats", help="generate a synthetic web and describe it")

    experiment = subparsers.add_parser(
        "run-experiment", help="run the Sections 2-3 monitoring experiment"
    )
    experiment.add_argument(
        "--days", type=int, default=None,
        help="number of days to monitor (default: the full horizon)",
    )

    crawler = subparsers.add_parser(
        "run-crawler", help="run a crawler against a synthetic web"
    )
    crawler.add_argument(
        "--mode", choices=("incremental", "periodic"), default="incremental"
    )
    crawler.add_argument("--capacity", type=int, default=200)
    crawler.add_argument("--budget", type=float, default=500.0,
                         help="page fetches per virtual day")
    crawler.add_argument("--duration", type=float, default=45.0,
                         help="virtual days to run")
    crawler.add_argument(
        "--revisit-policy", choices=tuple(REVISIT_POLICIES.names()),
        default="optimal",
    )
    crawler.add_argument("--estimator", choices=tuple(ESTIMATORS.names()), default="ep")
    crawler.add_argument("--cycle-days", type=float, default=10.0,
                         help="cycle length of the periodic crawler")

    subparsers.add_parser(
        "compare-policies", help="print the Table 2 design-choice comparison"
    )

    run_spec = subparsers.add_parser(
        "run-spec", help="run a JSON experiment spec and print the JSON result"
    )
    run_spec.add_argument("spec", help="path to an ExperimentSpec JSON file ('-' = stdin)")
    run_spec.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the JSON result to FILE",
    )
    run_spec.add_argument(
        "--compact", action="store_true",
        help="emit compact JSON instead of indented",
    )
    run_spec.add_argument(
        "--store", default=None, metavar="PATH",
        help="path for the spec's storage backend (e.g. a SQLite file); "
             "requires crawler.storage in the spec",
    )
    run_spec.add_argument(
        "--resume", action="store_true",
        help="continue a killed run from its last checkpoint in the store "
             "(requires crawler.checkpoint_every in the spec)",
    )

    run_matrix = subparsers.add_parser(
        "run-matrix",
        help="run a JSON scenario matrix (base spec x axes) and print the "
             "JSON results",
    )
    run_matrix.add_argument(
        "matrix",
        help="path to a matrix JSON file ('-' = stdin) with a 'base' "
             "ExperimentSpec and an 'axes' mapping of field paths to value "
             "lists",
    )
    run_matrix.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes to spread the cells over (1 = in-process); "
             "results are identical to a serial sweep",
    )
    run_matrix.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the JSON matrix result to FILE",
    )
    run_matrix.add_argument(
        "--compact", action="store_true",
        help="emit compact JSON instead of indented",
    )

    subparsers.add_parser(
        "list-scenarios",
        help="list registered scenarios, policies, estimators and change models",
    )

    subparsers.add_parser(
        "list-backends",
        help="list registered storage backends for persistent crawls",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands: Dict[str, Callable[[argparse.Namespace], int]] = {
        "web-stats": _cmd_web_stats,
        "run-experiment": _cmd_run_experiment,
        "run-crawler": _cmd_run_crawler,
        "compare-policies": _cmd_compare_policies,
        "run-spec": _cmd_run_spec,
        "run-matrix": _cmd_run_matrix,
        "list-scenarios": _cmd_list_scenarios,
        "list-backends": _cmd_list_backends,
    }
    return commands[args.command](args)


def _web_spec(args: argparse.Namespace) -> WebSpec:
    """The web spec shared by the web-touching subcommands."""
    return WebSpec(
        site_scale=args.site_scale,
        pages_per_site=args.pages_per_site,
        horizon_days=args.horizon_days,
        seed=args.seed,
    )


# --------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------- #
def _cmd_web_stats(args: argparse.Namespace) -> int:
    web = build_web(_web_spec(args))
    rows = [
        ("sites", web.n_sites),
        ("pages", web.n_pages),
        ("mean change rate (changes/day)", f"{web.mean_change_rate():.2f}"),
    ]
    for domain in web.domains():
        sites = web.sites_in_domain(domain)
        rows.append((f"sites in .{domain}", len(sites)))
    print(format_table(["property", "value"], rows, title="synthetic web"))
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    web_spec = _web_spec(args)
    params = {}
    if args.days:
        params["end_day"] = args.days - 1
    result = run(ExperimentSpec(
        name="cli/run-experiment", kind="monitor", web=web_spec, params=params,
    ))
    print(f"monitored {result.summary['n_pages']} pages "
          f"for {result.summary['duration_days']} days\n")
    print(format_bar_chart(result.tables["change_interval_fractions"],
                           title="Figure 2(a): average change interval"))
    print()
    print(format_bar_chart(result.tables["lifespan_fractions"],
                           title="Figure 4(a): visible lifespan (Method 1)"))
    print()
    rows = [
        (domain, "not reached" if day is None else f"{day:.0f}")
        for domain, day in result.tables["half_change_days"].items()
    ]
    print(format_table(["domain", "days to 50% change"], rows, title="Figure 5"))
    return 0


def _cmd_run_crawler(args: argparse.Namespace) -> int:
    result = run(ExperimentSpec(
        name=f"cli/run-crawler/{args.mode}",
        kind="crawl",
        web=_web_spec(args),
        crawler=CrawlerSpec(
            kind=args.mode,
            collection_capacity=args.capacity,
            crawl_budget_per_day=args.budget,
            duration_days=args.duration,
            cycle_days=args.cycle_days,
            measurement_interval_days=1.0,
        ),
        policy=PolicySpec(
            revisit_policy=args.revisit_policy,
            estimator=args.estimator,
        ),
    ))
    rows = [
        ("mode", args.mode),
        ("pages fetched", result.summary["pages_crawled"]),
        ("collection size", result.summary["collection_size"]),
        ("mean freshness", f"{result.summary['mean_freshness']:.3f}"),
        ("final quality", f"{result.summary['final_quality']:.3f}"),
    ]
    print(format_table(["metric", "value"], rows, title="crawl summary"))
    return 0


def _cmd_compare_policies(args: argparse.Namespace) -> int:
    result = run(ExperimentSpec(
        name="cli/compare-policies", kind="scenario", scenario="table2",
        params={"simulate": False},
    ))
    paper = result.tables["paper"]
    analytic = result.tables["analytic"]
    rows = [
        (name, f"{paper[name]:.2f}", f"{analytic[name]:.3f}")
        for name in paper
    ]
    print(format_table(["policy", "paper (Table 2)", "this reproduction"], rows,
                       title="Table 2: freshness of the current collection"))
    return 0


def _cmd_run_spec(args: argparse.Namespace) -> int:
    if args.spec == "-":
        text = sys.stdin.read()
    else:
        with open(args.spec, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        spec = ExperimentSpec.from_json(text)
    except (TypeError, ValueError, json.JSONDecodeError) as error:
        # TypeError covers wrongly-typed field values (e.g. a quoted number)
        # surfacing from the spec/config validators.
        print(f"invalid experiment spec: {error}", file=sys.stderr)
        return 2
    try:
        result = run(spec, store=args.store, resume=args.resume)
    except (TypeError, ValueError) as error:
        # e.g. scenario/monitor parameters rejected at call time.
        print(f"experiment failed: {error}", file=sys.stderr)
        return 2
    payload = result.to_json(indent=None if args.compact else 2)
    print(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return 0


def _cmd_run_matrix(args: argparse.Namespace) -> int:
    if args.matrix == "-":
        text = sys.stdin.read()
    else:
        with open(args.matrix, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        document = json.loads(text)
        if not isinstance(document, dict) or "base" not in document:
            raise ValueError("a matrix file needs a 'base' experiment spec")
        axes = document.get("axes")
        if not isinstance(axes, dict):
            raise ValueError("a matrix file needs an 'axes' mapping of "
                             "field paths to value lists")
        base = ExperimentSpec.from_dict(document["base"])
        if "name" in document:
            base = base.replace(name=str(document["name"]))
        matrix = ScenarioMatrix(base=base, axes=axes)
    except (TypeError, ValueError, json.JSONDecodeError) as error:
        print(f"invalid scenario matrix: {error}", file=sys.stderr)
        return 2
    try:
        result = run_matrix(matrix, workers=args.workers)
    except (TypeError, ValueError) as error:
        print(f"matrix sweep failed: {error}", file=sys.stderr)
        return 2
    payload = result.to_json(indent=None if args.compact else 2)
    print(payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return 0


def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    import repro.api.scenarios  # noqa: F401  (registration side effect)

    registries = (
        ("scenario", SCENARIOS),
        ("revisit policy", REVISIT_POLICIES),
        ("estimator", ESTIMATORS),
        ("change model", CHANGE_MODELS),
    )
    rows = []
    for kind, registry in registries:
        for name in registry.names():
            factory = registry.get(name)
            doc = (factory.__doc__ or "").strip().splitlines()
            rows.append((kind, name, doc[0] if doc else ""))
    print(format_table(["kind", "name", "description"], rows,
                       title="registered experiment building blocks"))
    return 0


def _cmd_list_backends(args: argparse.Namespace) -> int:
    import repro.storage.backends  # noqa: F401  (registration side effect)

    rows = []
    for name in STORAGE_BACKENDS.names():
        factory = STORAGE_BACKENDS.get(name)
        doc = (factory.__doc__ or "").strip().splitlines()
        durable = "yes" if getattr(factory, "can_persist", False) else "no"
        rows.append((name, durable, doc[0] if doc else ""))
    print(format_table(["name", "durable", "description"], rows,
                       title="registered storage backends"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
