"""Command-line interface.

The CLI exposes the main workflows of the reproduction so that they can be
run without writing Python:

``python -m repro web-stats``
    Generate a synthetic web and print its calibration statistics.
``python -m repro run-experiment``
    Run the Sections 2-3 monitoring experiment and print the Figure 2/4/5
    style analyses.
``python -m repro run-crawler``
    Run the incremental crawler (or the periodic baseline) against a
    synthetic web and print freshness/quality.
``python -m repro compare-policies``
    Print the Table 2 design-choice comparison and the revisit-policy gains.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.analysis.report import format_bar_chart, format_table
from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.core.periodic_crawler import PeriodicCrawler, PeriodicCrawlerConfig
from repro.experiment.change_interval import analyze_change_intervals
from repro.experiment.lifespan_analysis import analyze_lifespans
from repro.experiment.monitor import ActiveMonitor
from repro.experiment.survival import analyze_survival
from repro.freshness.analytic import time_averaged_freshness
from repro.simulation.scenarios import (
    PAPER_TABLE2_FRESHNESS,
    paper_table2_policies,
    table2_scenario_rate,
)
from repro.simweb.generator import WebGeneratorConfig, generate_web


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Cho & Garcia-Molina, VLDB 2000 "
                    "(incremental crawler and web-evolution study).",
    )
    parser.add_argument("--seed", type=int, default=17, help="random seed")
    parser.add_argument(
        "--site-scale", type=float, default=0.05,
        help="multiplier on the paper's per-domain site counts (1.0 = 270 sites)",
    )
    parser.add_argument(
        "--pages-per-site", type=int, default=30,
        help="pages initially present at each site",
    )
    parser.add_argument(
        "--horizon-days", type=float, default=127.0,
        help="virtual-time horizon of the synthetic web",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("web-stats", help="generate a synthetic web and describe it")

    experiment = subparsers.add_parser(
        "run-experiment", help="run the Sections 2-3 monitoring experiment"
    )
    experiment.add_argument(
        "--days", type=int, default=None,
        help="number of days to monitor (default: the full horizon)",
    )

    crawler = subparsers.add_parser(
        "run-crawler", help="run a crawler against a synthetic web"
    )
    crawler.add_argument(
        "--mode", choices=("incremental", "periodic"), default="incremental"
    )
    crawler.add_argument("--capacity", type=int, default=200)
    crawler.add_argument("--budget", type=float, default=500.0,
                         help="page fetches per virtual day")
    crawler.add_argument("--duration", type=float, default=45.0,
                         help="virtual days to run")
    crawler.add_argument(
        "--revisit-policy", choices=("uniform", "proportional", "optimal"),
        default="optimal",
    )
    crawler.add_argument("--estimator", choices=("ep", "eb"), default="ep")
    crawler.add_argument("--cycle-days", type=float, default=10.0,
                         help="cycle length of the periodic crawler")

    subparsers.add_parser(
        "compare-policies", help="print the Table 2 design-choice comparison"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    web_config = WebGeneratorConfig(
        site_scale=args.site_scale,
        pages_per_site=args.pages_per_site,
        horizon_days=args.horizon_days,
        seed=args.seed,
    )
    if args.command == "web-stats":
        return _cmd_web_stats(web_config)
    if args.command == "run-experiment":
        return _cmd_run_experiment(web_config, args)
    if args.command == "run-crawler":
        return _cmd_run_crawler(web_config, args)
    if args.command == "compare-policies":
        return _cmd_compare_policies()
    parser.error(f"unknown command {args.command!r}")
    return 2


# --------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------- #
def _cmd_web_stats(web_config: WebGeneratorConfig) -> int:
    web = generate_web(web_config)
    rows = [
        ("sites", web.n_sites),
        ("pages", web.n_pages),
        ("mean change rate (changes/day)", f"{web.mean_change_rate():.2f}"),
    ]
    for domain in web.domains():
        sites = web.sites_in_domain(domain)
        rows.append((f"sites in .{domain}", len(sites)))
    print(format_table(["property", "value"], rows, title="synthetic web"))
    return 0


def _cmd_run_experiment(web_config: WebGeneratorConfig, args: argparse.Namespace) -> int:
    web = generate_web(web_config)
    end_day = (args.days - 1) if args.days else int(web.horizon_days) - 1
    log = ActiveMonitor(web).run(start_day=0, end_day=end_day)
    print(f"monitored {log.n_pages} pages for {log.duration_days} days\n")

    change = analyze_change_intervals(log)
    print(format_bar_chart(change.overall_fractions(),
                           title="Figure 2(a): average change interval"))
    lifespan = analyze_lifespans(log)
    print()
    print(format_bar_chart(lifespan.method1_overall.labelled_fractions(),
                           title="Figure 4(a): visible lifespan (Method 1)"))
    survival = analyze_survival(log)
    print()
    rows = [
        (domain, "not reached" if day is None else f"{day:.0f}")
        for domain, day in survival.half_change_days().items()
    ]
    print(format_table(["domain", "days to 50% change"], rows, title="Figure 5"))
    return 0


def _cmd_run_crawler(web_config: WebGeneratorConfig, args: argparse.Namespace) -> int:
    web = generate_web(web_config)
    if args.mode == "incremental":
        crawler = IncrementalCrawler(
            web,
            IncrementalCrawlerConfig(
                collection_capacity=args.capacity,
                crawl_budget_per_day=args.budget,
                revisit_policy=args.revisit_policy,
                estimator=args.estimator,
                measurement_interval_days=1.0,
            ),
        )
        result = crawler.run(args.duration)
        collection_size = len(crawler.collection.current_records())
    else:
        crawler = PeriodicCrawler(
            web,
            PeriodicCrawlerConfig(
                collection_capacity=args.capacity,
                crawl_budget_per_day=args.budget,
                cycle_days=args.cycle_days,
                measurement_interval_days=1.0,
            ),
        )
        result = crawler.run(args.duration)
        collection_size = len(crawler.collection.current_records())
    rows = [
        ("mode", args.mode),
        ("pages fetched", result.pages_crawled),
        ("collection size", collection_size),
        ("mean freshness", f"{result.mean_freshness():.3f}"),
        ("final quality", f"{result.final_quality():.3f}"),
    ]
    print(format_table(["metric", "value"], rows, title="crawl summary"))
    return 0


def _cmd_compare_policies() -> int:
    rate = table2_scenario_rate()
    rows = []
    for name, policy in paper_table2_policies().items():
        rows.append(
            (name, f"{PAPER_TABLE2_FRESHNESS[name]:.2f}",
             f"{time_averaged_freshness(policy, rate):.3f}")
        )
    print(format_table(["policy", "paper (Table 2)", "this reproduction"], rows,
                       title="Table 2: freshness of the current collection"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
