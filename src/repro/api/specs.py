"""Frozen, JSON-round-trippable experiment specifications.

A spec describes *what* to run — the synthetic web, the crawler and its
policy choices, or a canned scenario — as plain data. Specs validate their
registry-resolved names on construction (unknown names raise an error that
lists the registered choices), serialize losslessly through
``to_dict``/``from_dict`` (and JSON), and carry a stable content hash so a
result can always be traced back to the exact experiment definition that
produced it.

Three experiment kinds are supported by :func:`repro.api.runner.run`:

``"crawl"``
    The full Section 5 architecture: generate the web described by
    :class:`WebSpec`, run the crawler described by :class:`CrawlerSpec`
    (incremental or periodic) with the choices in :class:`PolicySpec`.
``"scenario"``
    A named entry of :data:`repro.api.registry.SCENARIOS` — the paper's
    canned Section 4 / Figure 7/8/10 experiments, routed through the
    vectorized simulation kernels.
``"monitor"``
    The Sections 2-3 web-evolution experiment: daily monitoring of a
    synthetic web plus the Figure 2/4/5 analyses.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Type, TypeVar

from repro.api.registry import ESTIMATORS, REVISIT_POLICIES
from repro.core.incremental_crawler import CRAWL_ENGINES
from repro.faults import RetryPolicy
from repro.simweb.generator import WebGeneratorConfig

SpecT = TypeVar("SpecT", bound="_SpecBase")

#: Experiment kinds understood by :func:`repro.api.runner.run`.
EXPERIMENT_KINDS: Tuple[str, ...] = ("crawl", "scenario", "monitor")
#: Crawler architectures a :class:`CrawlerSpec` can name.
CRAWLER_KINDS: Tuple[str, ...] = ("incremental", "periodic")
#: Importance metrics the RankingModule supports.
IMPORTANCE_METRICS: Tuple[str, ...] = ("pagerank", "hits")


def _unknown_choice(kind: str, name: object, choices: Tuple[str, ...]) -> ValueError:
    listed = ", ".join(repr(choice) for choice in choices)
    return ValueError(f"unknown {kind} {name!r}; valid choices: {listed}")


@dataclass(frozen=True)
class _SpecBase:
    """Shared to_dict/from_dict/hash machinery for the spec dataclasses."""

    def to_dict(self) -> Dict[str, Any]:
        """A plain, JSON-serializable dict with every field included.

        Fields named by :meth:`_omit_when_none` are left out while ``None``:
        this keeps :meth:`spec_hash` stable when new optional fields are
        added — a spec that never sets them hashes exactly as it did before
        the fields existed.
        """
        omittable = self._omit_when_none()
        out: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if value is None and spec_field.name in omittable:
                continue
            if isinstance(value, _SpecBase):
                value = value.to_dict()
            elif isinstance(value, Mapping):
                value = dict(value)
            out[spec_field.name] = value
        return out

    @classmethod
    def from_dict(cls: Type[SpecT], data: Mapping[str, Any]) -> SpecT:
        """Rebuild a spec from :meth:`to_dict` output.

        Missing fields take their defaults; unknown keys raise a
        ``ValueError`` listing the valid field names.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"{cls.__name__} must be built from a mapping, "
                             f"got {type(data).__name__}")
        valid = {spec_field.name: spec_field for spec_field in fields(cls)}
        unknown = sorted(set(data) - set(valid))
        if unknown:
            raise ValueError(
                f"unknown {cls.__name__} field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(sorted(valid))}"
            )
        kwargs = dict(data)
        for name, nested_cls in cls._nested_spec_fields().items():
            if kwargs.get(name) is not None:
                kwargs[name] = nested_cls.from_dict(kwargs[name])
        return cls(**kwargs)

    @classmethod
    def _nested_spec_fields(cls) -> Dict[str, Type["_SpecBase"]]:
        """Field name -> spec class for fields holding nested specs."""
        return {}

    @classmethod
    def _omit_when_none(cls) -> Tuple[str, ...]:
        """Field names dropped from :meth:`to_dict` while they are ``None``.

        Reserved for fields added after specs shipped, so pre-existing spec
        hashes stay stable.
        """
        return ()

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON (sorted keys) for files and hashing."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls: Type[SpecT], text: str) -> SpecT:
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def spec_hash(self) -> str:
        """Stable content hash of the spec (sha256 of canonical JSON).

        Two specs hash identically iff every field (including defaults)
        matches, so the hash is a provenance key for results.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def replace(self: SpecT, **changes: Any) -> SpecT:
        """A copy of the spec with ``changes`` applied (dataclass replace)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class WebSpec(_SpecBase):
    """Declarative description of a synthetic web.

    Mirrors :class:`repro.simweb.generator.WebGeneratorConfig` (minus the
    link-graph knobs, which keep their defaults) so a spec can be turned
    into a generator config with :meth:`to_generator_config`.

    Attributes:
        site_scale: Multiplier on the paper's Table 1 per-domain site counts.
        pages_per_site: Pages initially present at each site.
        window_size: Monitoring-window size per site (defaults to
            ``pages_per_site``).
        horizon_days: Virtual-time horizon of the web.
        new_page_fraction: Pages created during the horizon, as a fraction
            of ``pages_per_site``.
        site_counts: Optional explicit per-domain site counts.
        change_model: Optional registered change-model name overriding the
            calibrated per-domain mixtures for every page.
        change_model_params: Keyword arguments for the change-model factory.
        seed: Seed of the web's random generator.
    """

    site_scale: float = 0.05
    pages_per_site: int = 30
    window_size: Optional[int] = None
    horizon_days: float = 127.0
    new_page_fraction: float = 0.25
    site_counts: Optional[Dict[str, int]] = None
    change_model: Optional[str] = None
    change_model_params: Optional[Dict[str, float]] = None
    seed: int = 17

    def __post_init__(self) -> None:
        # Delegate numeric validation (and the change-model registry check)
        # to the generator config so the two can never drift apart.
        self.to_generator_config()

    def to_generator_config(self, seed: Optional[int] = None) -> WebGeneratorConfig:
        """The equivalent :class:`WebGeneratorConfig`.

        Args:
            seed: Optional override of the spec's seed (used when an
                :class:`ExperimentSpec` pins a run-level seed).
        """
        return WebGeneratorConfig(
            site_scale=self.site_scale,
            pages_per_site=self.pages_per_site,
            window_size=self.window_size,
            horizon_days=self.horizon_days,
            new_page_fraction=self.new_page_fraction,
            site_counts=dict(self.site_counts) if self.site_counts else None,
            change_model=self.change_model,
            change_model_params=(
                dict(self.change_model_params) if self.change_model_params else None
            ),
            seed=self.seed if seed is None else seed,
        )


@dataclass(frozen=True)
class PolicySpec(_SpecBase):
    """The crawler's pluggable policy choices, all registry-resolved names.

    Attributes:
        revisit_policy: Registered revisit-policy name
            (:data:`repro.api.registry.REVISIT_POLICIES`).
        estimator: Registered change-rate estimator name
            (:data:`repro.api.registry.ESTIMATORS`).
        importance_metric: ``"pagerank"`` or ``"hits"``.
        use_importance: Let the revisit policy weight pages by importance.
    """

    revisit_policy: str = "optimal"
    estimator: str = "ep"
    importance_metric: str = "pagerank"
    use_importance: bool = False

    def __post_init__(self) -> None:
        REVISIT_POLICIES.validate(self.revisit_policy)
        ESTIMATORS.validate(self.estimator)
        if self.importance_metric not in IMPORTANCE_METRICS:
            raise _unknown_choice(
                "importance metric", self.importance_metric, IMPORTANCE_METRICS
            )


@dataclass(frozen=True)
class FaultModelSpec(_SpecBase):
    """One registered fault model plus its parameters.

    Attributes:
        kind: Registered fault-model name
            (:data:`repro.api.registry.FAULT_MODELS` — ``"transient"``,
            ``"site_outage"``, ``"rate_limit"``, ``"soft_404"`` or
            ``"latency"`` out of the box).
        params: Keyword arguments for the model factory. Unknown parameter
            names and invalid values are rejected on construction.
    """

    kind: str = "transient"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Fault models register on import of repro.faults; import lazily to
        # keep specs importable from domain modules.
        import inspect

        from repro.api.registry import FAULT_MODELS
        import repro.faults  # noqa: F401  (registration side effect)

        FAULT_MODELS.validate(self.kind)
        factory = FAULT_MODELS.get(self.kind)
        accepted = set(inspect.signature(factory).parameters)
        unknown = sorted(set(self.params) - accepted)
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {', '.join(map(repr, unknown))} for "
                f"fault model {self.kind!r}; accepted: "
                f"{', '.join(sorted(accepted))}"
            )
        # Instantiate once so parameter *values* are validated here, not
        # deep inside a run.
        factory(**dict(self.params))

    def to_model_tuple(self) -> Tuple[str, Dict[str, Any]]:
        """The ``(kind, params)`` pair consumed by ``build_fault_layer``."""
        return (self.kind, dict(self.params))


@dataclass(frozen=True)
class FaultsSpec(_SpecBase):
    """A seeded stack of fault models applied to every fetch.

    Models apply in order; for status faults the first non-OK verdict wins,
    latency models compose multiplicatively. Every model is a pure function
    of ``(url, site, virtual_time, seed)``, so a fixed ``(spec, seed)``
    yields bit-identical faults across engines, shard counts and resumes.

    Attributes:
        models: The fault models, in application order (at least one).
        seed: Seed of the fault layer (also seeds retry jitter).
    """

    models: Tuple[FaultModelSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "models", tuple(self.models))
        if not self.models:
            raise ValueError("a faults spec needs at least one fault model")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "models": [model.to_dict() for model in self.models],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultsSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"{cls.__name__} must be built from a mapping, "
                             f"got {type(data).__name__}")
        unknown = sorted(set(data) - {"models", "seed"})
        if unknown:
            raise ValueError(
                f"unknown {cls.__name__} field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: models, seed"
            )
        models = data.get("models", ())
        if isinstance(models, Mapping) or isinstance(models, str):
            raise ValueError("FaultsSpec models must be a list of fault models")
        return cls(
            models=tuple(FaultModelSpec.from_dict(model) for model in models),
            seed=data.get("seed", 0),
        )

    def to_model_tuples(self) -> Tuple[Tuple[str, Dict[str, Any]], ...]:
        """The ``(kind, params)`` pairs consumed by ``build_fault_layer``."""
        return tuple(model.to_model_tuple() for model in self.models)


@dataclass(frozen=True)
class RetrySpec(_SpecBase):
    """Retry, backoff and circuit-breaker knobs for the failure-aware engine.

    Mirrors :class:`repro.faults.RetryPolicy` field for field; validation is
    delegated to the policy so the two can never drift apart.

    Attributes:
        max_attempts: Attempts per URL before the failure is terminal.
        base_delay_days: First retry delay in virtual days.
        multiplier: Exponential backoff factor per extra attempt.
        jitter: Seeded jitter half-width as a fraction of the delay.
        site_budget: Optional cap on total retries charged per site.
        breaker_threshold: Consecutive per-site failures that trip the
            circuit breaker.
        breaker_probe_days: Probe spacing while a site is quarantined.
        breaker_backoff: Probe-spacing growth per repeated trip.
    """

    max_attempts: int = 3
    base_delay_days: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.25
    site_budget: Optional[int] = None
    breaker_threshold: int = 5
    breaker_probe_days: float = 1.0
    breaker_backoff: float = 2.0

    def __post_init__(self) -> None:
        self.to_retry_policy()

    def to_retry_policy(self) -> RetryPolicy:
        """The equivalent :class:`repro.faults.RetryPolicy`."""
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay_days=self.base_delay_days,
            multiplier=self.multiplier,
            jitter=self.jitter,
            site_budget=self.site_budget,
            breaker_threshold=self.breaker_threshold,
            breaker_probe_days=self.breaker_probe_days,
            breaker_backoff=self.breaker_backoff,
        )


@dataclass(frozen=True)
class CrawlerSpec(_SpecBase):
    """Declarative description of a crawler run.

    Attributes:
        kind: ``"incremental"`` (steady, in-place, variable frequency) or
            ``"periodic"`` (batch, shadowing, fixed frequency).
        collection_capacity: Target collection size.
        crawl_budget_per_day: Pages fetched per virtual day.
        duration_days: Virtual days to run.
        start_time: Virtual time at which the run starts.
        cycle_days: Cycle length (periodic crawler only).
        ranking_interval_days: RankingModule scan cadence (incremental only).
        reallocation_interval_days: Revisit-interval recomputation cadence
            (incremental only).
        measurement_interval_days: Freshness sampling cadence.
        default_revisit_interval_days: Interval assumed before a page has a
            change history (incremental only).
        track_quality: Also sample collection quality.
        use_politeness: Apply per-site politeness constraints
            (incremental only). Both engines honour them; the batched
            engine resolves them in site-grouped bulk passes.
        politeness_min_delay_seconds: Minimum (virtual) seconds between two
            requests to one site when politeness is on; the paper used 10.
        politeness_night_window: Also restrict fetching to the recurring
            nightly crawl window.
        politeness_night_start: Start of the nightly window as a fraction
            of a day (0.875 = 9 pm).
        politeness_night_duration: Length of the nightly window as a
            fraction of a day (0.375 = nine hours).
        engine: Crawl-loop engine — ``"batched"`` (tick-window batching,
            the default), ``"reference"`` (the pinned per-URL path) or
            ``"sharded"`` (site-affine shards run by the batched engine,
            optionally in worker processes; incremental only). Batched and
            reference produce bit-identical results, with or without
            politeness; ``sharded`` with ``shards=1`` is bit-identical to
            batched.
        shards: Number of site-affine shards (``engine="sharded"`` only).
            Results for a fixed ``(seed, shards)`` are reproducible
            regardless of worker count and scheduling.
        workers: Number of worker processes running the shards
            (``engine="sharded"`` only); capped at ``shards``. ``1`` with
            ``shards=1`` runs inline, with no processes spawned.
        storage: Optional registered storage-backend name
            (:data:`repro.api.registry.STORAGE_BACKENDS` — ``"memory"``,
            ``"sqlite"`` or ``"columnar"`` out of the box). When set, the
            run journals its collection and change events into the backend;
            incremental crawls only.
        checkpoint_every: Optional virtual-day spacing between resumable
            state checkpoints. Requires ``storage`` and the batched engine;
            a killed run resumes bit-identically from its last checkpoint.
        faults: Optional :class:`FaultsSpec` injecting seeded, deterministic
            fetch faults (incremental only). Omitted specs hash exactly as
            they did before the field existed, and runs without it are
            byte-identical to the pre-fault engine.
        retry: Optional :class:`RetrySpec` tuning retry/backoff and the
            per-site circuit breaker (incremental only). Defaults apply
            when ``faults`` is set without ``retry``.
    """

    kind: str = "incremental"
    collection_capacity: int = 200
    crawl_budget_per_day: float = 500.0
    duration_days: float = 30.0
    start_time: float = 0.0
    cycle_days: float = 10.0
    ranking_interval_days: float = 5.0
    reallocation_interval_days: float = 1.0
    measurement_interval_days: float = 1.0
    default_revisit_interval_days: float = 7.0
    track_quality: bool = True
    use_politeness: bool = False
    politeness_min_delay_seconds: float = 10.0
    politeness_night_window: bool = False
    politeness_night_start: float = 0.875
    politeness_night_duration: float = 0.375
    engine: str = "batched"
    shards: Optional[int] = None
    workers: Optional[int] = None
    storage: Optional[str] = None
    checkpoint_every: Optional[float] = None
    faults: Optional[FaultsSpec] = None
    retry: Optional[RetrySpec] = None

    def __post_init__(self) -> None:
        if self.kind not in CRAWLER_KINDS:
            raise _unknown_choice("crawler kind", self.kind, CRAWLER_KINDS)
        spec_engines = CRAWL_ENGINES + ("sharded",)
        if self.engine not in spec_engines:
            raise _unknown_choice("crawl engine", self.engine, spec_engines)
        if self.engine == "sharded" and self.kind != "incremental":
            raise ValueError("the sharded engine supports incremental crawls only")
        if self.shards is not None:
            if self.engine != "sharded":
                raise ValueError("shards requires engine='sharded'")
            if self.shards < 1:
                raise ValueError("shards must be at least 1")
        if self.workers is not None:
            if self.engine != "sharded":
                raise ValueError("workers requires engine='sharded'")
            if self.workers < 1:
                raise ValueError("workers must be at least 1")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")
        # Capacity/budget/interval validation lives in the crawler configs;
        # fail fast here so a bad spec never reaches web generation.
        if self.collection_capacity < 1:
            raise ValueError("collection_capacity must be at least 1")
        if self.crawl_budget_per_day <= 0:
            raise ValueError("crawl_budget_per_day must be positive")
        if self.cycle_days <= 0:
            raise ValueError("cycle_days must be positive")
        if self.measurement_interval_days <= 0:
            raise ValueError("measurement_interval_days must be positive")
        if self.politeness_min_delay_seconds < 0:
            raise ValueError("politeness_min_delay_seconds must be non-negative")
        if not 0.0 <= self.politeness_night_start < 1.0:
            raise ValueError("politeness_night_start must be in [0, 1)")
        if not 0.0 < self.politeness_night_duration <= 1.0:
            raise ValueError("politeness_night_duration must be in (0, 1]")
        if self.storage is not None:
            # Backends register on import of repro.storage.backends; import
            # lazily to keep specs importable from domain modules.
            from repro.api.registry import STORAGE_BACKENDS
            import repro.storage.backends  # noqa: F401  (registration side effect)

            STORAGE_BACKENDS.validate(self.storage)
            if self.kind != "incremental":
                raise ValueError(
                    "storage backends are supported for incremental crawls only"
                )
        if self.checkpoint_every is not None:
            if self.checkpoint_every <= 0:
                raise ValueError("checkpoint_every must be positive")
            if self.storage is None:
                raise ValueError("checkpoint_every requires a storage backend")
            if self.engine not in ("batched", "sharded"):
                raise ValueError(
                    "checkpoint_every requires the batched or sharded engine "
                    "(the reference engine's event queue cannot be snapshotted)"
                )
        if (self.faults is not None or self.retry is not None) and (
            self.kind != "incremental"
        ):
            raise ValueError(
                "fault injection is supported for incremental crawls only"
            )

    @classmethod
    def _nested_spec_fields(cls) -> Dict[str, Type[_SpecBase]]:
        return {"faults": FaultsSpec, "retry": RetrySpec}

    @classmethod
    def _omit_when_none(cls) -> Tuple[str, ...]:
        return ("shards", "workers", "storage", "checkpoint_every",
                "faults", "retry")


@dataclass(frozen=True)
class ExperimentSpec(_SpecBase):
    """A complete, runnable experiment definition.

    Attributes:
        name: Free-form experiment name (recorded in the result).
        kind: One of :data:`EXPERIMENT_KINDS`.
        web: The synthetic web (required for ``crawl`` and ``monitor``).
        crawler: The crawler to run (required for ``crawl``).
        policy: Policy choices for the incremental crawler; defaults apply
            when omitted.
        scenario: Registered scenario name (required for ``scenario``).
        params: Extra keyword arguments: scenario parameters for
            ``scenario`` experiments, monitoring options (``start_day``,
            ``end_day``, ``n_candidates``, ``consent_rate``,
            ``selection_seed``) for ``monitor`` experiments.
        seed: Optional run-level seed overriding the web spec's seed (and
            forwarded to scenarios that accept a ``seed`` parameter).
    """

    name: str
    kind: str = "crawl"
    web: Optional[WebSpec] = None
    crawler: Optional[CrawlerSpec] = None
    policy: Optional[PolicySpec] = None
    scenario: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("experiment name must be non-empty")
        if self.kind not in EXPERIMENT_KINDS:
            raise _unknown_choice("experiment kind", self.kind, EXPERIMENT_KINDS)
        if self.kind in ("crawl", "monitor") and self.web is None:
            raise ValueError(f'a {self.kind!r} experiment needs a "web" spec')
        if self.kind == "crawl" and self.crawler is None:
            raise ValueError('a "crawl" experiment needs a "crawler" spec')
        if self.kind == "scenario":
            if not self.scenario:
                raise ValueError('a "scenario" experiment needs a scenario name')
            # Canned scenarios register on import of repro.api.scenarios;
            # import lazily to keep specs importable from domain modules.
            from repro.api.registry import SCENARIOS
            import repro.api.scenarios  # noqa: F401  (registration side effect)

            SCENARIOS.validate(self.scenario)
        try:
            json.dumps(dict(self.params))
        except (TypeError, ValueError) as error:
            raise ValueError(f"params must be JSON-serializable: {error}") from error

    @classmethod
    def _nested_spec_fields(cls) -> Dict[str, Type[_SpecBase]]:
        return {"web": WebSpec, "crawler": CrawlerSpec, "policy": PolicySpec}

    def effective_seed(self) -> Optional[int]:
        """The seed recorded in result provenance.

        The run-level seed wins; otherwise the web seed (crawl/monitor) or
        the explicit ``seed`` scenario parameter, if any.
        """
        if self.seed is not None:
            return self.seed
        if self.web is not None:
            return self.web.seed
        seed = self.params.get("seed")
        return seed if isinstance(seed, int) else None
