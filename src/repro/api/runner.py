"""The unified experiment runner: ``run(spec) -> ExperimentResult``.

One entry point executes any :class:`~repro.api.specs.ExperimentSpec` —
full crawler runs, canned scenarios and the Sections 2-3 monitoring
experiment — and returns a structured, JSON-serializable
:class:`ExperimentResult` carrying metric time series, summary scalars and
provenance (seed, spec hash, wall time, package version). Heavy in-memory
objects (the generated web, the crawler, the observation log) ride along in
``result.artifacts`` for callers that want to dig deeper, and are excluded
from serialization.

:class:`ScenarioMatrix` executes crossed parameter sweeps over a base spec.
The matrix runner generates each distinct synthetic web once (cells that
share a web spec share the web) and collapses scenario cells along an axis
the scenario declares batchable into a single call, so sweeps lean on the
vectorized kernels instead of repeating their setup per cell.
"""

from __future__ import annotations

import inspect
import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import __version__
from repro.api.registry import SCENARIOS, STORAGE_BACKENDS
from repro.api.specs import CrawlerSpec, ExperimentSpec, PolicySpec, WebSpec
from repro.api import scenarios as _scenarios  # noqa: F401  (registration side effect)
from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.core.periodic_crawler import PeriodicCrawler, PeriodicCrawlerConfig
from repro.core.sharded_crawler import ShardedCrawler
from repro.storage import backends as _backends  # noqa: F401  (registration side effect)
from repro.storage.backends import StorageBackend
from repro.storage.checkpoint import (
    RESULT_STATE_KEY,
    CollectionJournal,
    CrawlCheckpointer,
)
from repro.experiment.change_interval import analyze_change_intervals
from repro.experiment.lifespan_analysis import analyze_lifespans
from repro.experiment.monitor import ActiveMonitor
from repro.experiment.site_selection import select_sites
from repro.experiment.survival import analyze_survival
from repro.simweb.generator import generate_web
from repro.simweb.web import SimulatedWeb


@dataclass
class ExperimentResult:
    """Structured outcome of :func:`run`.

    Attributes:
        name: The spec's experiment name.
        kind: The spec's experiment kind.
        spec_hash: Content hash of the spec that produced this result.
        seed: Effective seed (``None`` when the experiment has no single
            governing seed).
        wall_time_seconds: Wall-clock execution time.
        series: Metric time series, ``label -> list of floats``.
        summary: Scalar metrics and counters.
        tables: Nested mappings (e.g. per-policy freshness values).
        artifacts: Heavy in-memory objects (web, crawler, observation log);
            never serialized.
    """

    name: str
    kind: str
    spec_hash: str
    seed: Optional[int]
    wall_time_seconds: float
    series: Dict[str, List[float]] = field(default_factory=dict)
    summary: Dict[str, Any] = field(default_factory=dict)
    tables: Dict[str, Any] = field(default_factory=dict)
    artifacts: Dict[str, Any] = field(default_factory=dict, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (artifacts excluded)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "provenance": {
                "spec_hash": self.spec_hash,
                "seed": self.seed,
                "wall_time_seconds": self.wall_time_seconds,
                "repro_version": __version__,
            },
            "summary": self.summary,
            "tables": self.tables,
            "series": self.series,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The result as JSON text.

        Raises:
            TypeError: When a non-serializable object leaked into ``series``,
                ``summary`` or ``tables`` — named by its dotted path, so the
                failure points at the offending entry instead of surfacing as
                an opaque error deep inside ``json.dumps``. Heavy in-memory
                objects belong in ``result.artifacts`` (never serialized).
        """
        payload = self.to_dict()
        try:
            return json.dumps(payload, sort_keys=True, indent=indent)
        except (TypeError, ValueError) as error:
            path = _first_unserializable(payload)
            location = path if path is not None else "an unknown entry"
            raise TypeError(
                f"ExperimentResult is not JSON-serializable at {location}; "
                "heavy in-memory objects belong in result.artifacts, which "
                "is never serialized"
            ) from error


def _first_unserializable(value: Any, path: str = "result") -> Optional[str]:
    """Dotted path of the first JSON-unserializable entry, or ``None``.

    Walks the payload exactly as ``json.dumps`` would (mappings, sequences,
    scalars), tracking the container stack so circular references are
    reported rather than recursed into.
    """
    return _walk_unserializable(value, path, set())


def _walk_unserializable(value: Any, path: str, stack: set) -> Optional[str]:
    if value is None or isinstance(value, (str, int, float, bool)):
        return None
    if id(value) in stack:
        return f"{path} (circular reference)"
    if isinstance(value, Mapping):
        stack.add(id(value))
        try:
            for key, item in value.items():
                if key is not None and not isinstance(key, (str, int, float, bool)):
                    return f"{path} key {key!r} ({type(key).__name__})"
                found = _walk_unserializable(item, f"{path}.{key}", stack)
                if found is not None:
                    return found
        finally:
            stack.discard(id(value))
        return None
    if isinstance(value, (list, tuple)):
        stack.add(id(value))
        try:
            for index, item in enumerate(value):
                found = _walk_unserializable(item, f"{path}[{index}]", stack)
                if found is not None:
                    return found
        finally:
            stack.discard(id(value))
        return None
    return f"{path} ({type(value).__name__})"


def build_web(spec: WebSpec, seed: Optional[int] = None) -> SimulatedWeb:
    """Generate the synthetic web described by ``spec``."""
    return generate_web(spec.to_generator_config(seed=seed))


def run(
    spec: ExperimentSpec,
    web: Optional[SimulatedWeb] = None,
    *,
    store: Optional[str] = None,
    resume: bool = False,
) -> ExperimentResult:
    """Execute an experiment spec end to end.

    Args:
        spec: The experiment to run.
        web: Optional pre-generated web to crawl/monitor instead of
            generating one from ``spec.web`` (used by the matrix runner to
            share webs across cells; ignored for scenario experiments).
        store: Optional path for the storage backend named by
            ``spec.crawler.storage`` (e.g. a SQLite file). Defaults to the
            backend's volatile/in-memory form when omitted.
        resume: Continue a killed run from the last checkpoint in the
            store (requires ``spec.crawler.checkpoint_every``). When the
            store already holds the run's final result, it is returned
            without re-running anything; the resumed run is bit-identical
            to an uninterrupted one.

    Returns:
        A structured :class:`ExperimentResult` with provenance.
    """
    started = time.perf_counter()
    backend = _open_backend(spec, store, resume)
    try:
        if backend is not None and resume:
            saved = backend.load_state(RESULT_STATE_KEY)
            if saved is not None:
                return _result_from_state(spec, saved, time.perf_counter() - started)
        if spec.kind == "crawl":
            series, summary, tables, artifacts = _run_crawl(
                spec, web, backend=backend, resume=resume, store=store
            )
        elif spec.kind == "monitor":
            series, summary, tables, artifacts = _run_monitor(spec, web)
        elif spec.kind == "scenario":
            series, summary, tables, artifacts = _run_scenario(spec)
        else:  # pragma: no cover - ExperimentSpec already validates the kind
            raise ValueError(f"unknown experiment kind {spec.kind!r}")
        result = ExperimentResult(
            name=spec.name,
            kind=spec.kind,
            spec_hash=spec.spec_hash(),
            seed=spec.effective_seed(),
            wall_time_seconds=time.perf_counter() - started,
            series=series,
            summary=summary,
            tables=tables,
            artifacts=artifacts,
        )
        if backend is not None:
            backend.save_state(
                RESULT_STATE_KEY,
                {
                    "name": result.name,
                    "kind": result.kind,
                    "spec_hash": result.spec_hash,
                    "seed": result.seed,
                    "series": result.series,
                    "summary": result.summary,
                    "tables": result.tables,
                },
            )
            backend.flush()
        return result
    finally:
        if backend is not None:
            backend.close()


def _open_backend(
    spec: ExperimentSpec, store: Optional[str], resume: bool
) -> Optional[StorageBackend]:
    """Instantiate the spec's storage backend, or ``None`` when unset."""
    storage = spec.crawler.storage if spec.crawler is not None else None
    if storage is None:
        if store is not None:
            raise ValueError(
                "store= was given but the spec names no storage backend; "
                "set crawler.storage (e.g. 'sqlite')"
            )
        if resume:
            raise ValueError(
                "resume requires a storage backend; set crawler.storage "
                "and crawler.checkpoint_every in the spec"
            )
        return None
    return STORAGE_BACKENDS.create(storage, path=store)


def _result_from_state(
    spec: ExperimentSpec, saved: Dict[str, Any], elapsed: float
) -> ExperimentResult:
    """Rebuild a completed run's result from its persisted state doc."""
    stored_hash = saved.get("spec_hash")
    if stored_hash != spec.spec_hash():
        raise ValueError(
            "the store holds a result for a different spec "
            f"(stored {str(stored_hash)[:12]}..., expected "
            f"{spec.spec_hash()[:12]}...)"
        )
    return ExperimentResult(
        name=saved["name"],
        kind=saved["kind"],
        spec_hash=stored_hash,
        seed=saved.get("seed"),
        wall_time_seconds=elapsed,
        series=dict(saved.get("series", {})),
        summary=dict(saved.get("summary", {})),
        tables=dict(saved.get("tables", {})),
        artifacts={},
    )


# --------------------------------------------------------------------- #
# Experiment kinds
# --------------------------------------------------------------------- #
_RunPayload = Tuple[Dict[str, List[float]], Dict[str, Any], Dict[str, Any], Dict[str, Any]]


def _incremental_config(
    crawler_spec: CrawlerSpec, policy: PolicySpec, engine: str
) -> IncrementalCrawlerConfig:
    """The crawler-core config a spec describes (engine chosen by caller)."""
    return IncrementalCrawlerConfig(
        collection_capacity=crawler_spec.collection_capacity,
        crawl_budget_per_day=crawler_spec.crawl_budget_per_day,
        revisit_policy=policy.revisit_policy,
        estimator=policy.estimator,
        importance_metric=policy.importance_metric,
        ranking_interval_days=crawler_spec.ranking_interval_days,
        reallocation_interval_days=crawler_spec.reallocation_interval_days,
        use_importance_in_scheduling=policy.use_importance,
        measurement_interval_days=crawler_spec.measurement_interval_days,
        default_revisit_interval_days=crawler_spec.default_revisit_interval_days,
        track_quality=crawler_spec.track_quality,
        use_politeness=crawler_spec.use_politeness,
        politeness_min_delay_seconds=crawler_spec.politeness_min_delay_seconds,
        politeness_night_window=crawler_spec.politeness_night_window,
        politeness_night_start=crawler_spec.politeness_night_start,
        politeness_night_duration=crawler_spec.politeness_night_duration,
        engine=engine,
        fault_models=(
            None if crawler_spec.faults is None
            else crawler_spec.faults.to_model_tuples()
        ),
        fault_seed=0 if crawler_spec.faults is None else crawler_spec.faults.seed,
        retry=(
            None if crawler_spec.retry is None
            else crawler_spec.retry.to_retry_policy()
        ),
    )


def _run_sharded_crawl(
    spec: ExperimentSpec,
    web: SimulatedWeb,
    store: Optional[str],
    resume: bool,
) -> _RunPayload:
    """The ``engine="sharded"`` crawl path: fan out, merge, summarize.

    Per-shard persistence (journals, checkpoints, shard results) lives in
    the coordinator's sibling stores; the base backend opened by
    :func:`run` only holds the merged result document.
    """
    crawler_spec = spec.crawler
    policy = spec.policy if spec.policy is not None else PolicySpec()
    crawler = ShardedCrawler(
        web,
        _incremental_config(crawler_spec, policy, engine="batched"),
        shards=crawler_spec.shards or 1,
        workers=crawler_spec.workers or 1,
        storage=crawler_spec.storage,
        store_path=store,
        checkpoint_every=crawler_spec.checkpoint_every,
        spec_hash=spec.spec_hash(),
    )
    outcome = crawler.run(
        crawler_spec.duration_days,
        start_time=crawler_spec.start_time,
        resume=resume,
    )
    times, freshness = outcome.freshness.as_series()
    series = {
        "times": [float(t) for t in times],
        "freshness": [float(f) for f in freshness],
    }
    if outcome.quality:
        series["quality_times"] = [float(t) for t in outcome.quality_times]
        series["quality"] = [float(q) for q in outcome.quality]
    summary: Dict[str, Any] = {
        "mode": crawler_spec.kind,
        "pages_crawled": outcome.pages_crawled,
        "collection_size": len(outcome.records),
        "mean_freshness": outcome.mean_freshness(),
        "final_quality": outcome.final_quality(),
        "duration_days": outcome.duration_days,
        "pages_failed": outcome.pages_failed,
        "changes_detected": outcome.changes_detected,
        "pages_replaced": outcome.pages_replaced,
        "shards": outcome.shards,
        "workers": outcome.workers,
    }
    if outcome.failures is not None:
        summary["failures"] = dict(outcome.failures)
    tables = {"per_shard": outcome.per_shard}
    artifacts = {"web": web, "crawler": crawler, "outcome": outcome}
    return series, summary, tables, artifacts


def _run_crawl(
    spec: ExperimentSpec,
    web: Optional[SimulatedWeb],
    backend: Optional[StorageBackend] = None,
    resume: bool = False,
    store: Optional[str] = None,
) -> _RunPayload:
    assert spec.web is not None and spec.crawler is not None
    if web is None:
        web = build_web(spec.web, seed=spec.seed)
    crawler_spec = spec.crawler
    policy = spec.policy if spec.policy is not None else PolicySpec()
    if crawler_spec.engine == "sharded":
        return _run_sharded_crawl(spec, web, store, resume)
    if crawler_spec.kind == "incremental":
        crawler = IncrementalCrawler(
            web, _incremental_config(crawler_spec, policy, crawler_spec.engine)
        )
    else:
        crawler = PeriodicCrawler(
            web,
            PeriodicCrawlerConfig(
                collection_capacity=crawler_spec.collection_capacity,
                crawl_budget_per_day=crawler_spec.crawl_budget_per_day,
                cycle_days=crawler_spec.cycle_days,
                measurement_interval_days=crawler_spec.measurement_interval_days,
                track_quality=crawler_spec.track_quality,
                engine=crawler_spec.engine,
            ),
        )
    journal = None
    checkpointer = None
    resume_state = None
    if backend is not None:
        journal = CollectionJournal(backend)
        if crawler_spec.checkpoint_every is not None:
            checkpointer = CrawlCheckpointer(
                backend, crawler_spec.checkpoint_every, spec_hash=spec.spec_hash()
            )
        if resume:
            if checkpointer is None:
                raise ValueError(
                    "resume requires crawler.checkpoint_every in the spec"
                )
            resume_state = checkpointer.load()
            if resume_state is None:
                raise ValueError(
                    "the store holds no checkpoint to resume from; run the "
                    "spec without resume first"
                )
    if journal is not None or checkpointer is not None:
        outcome = crawler.run(
            crawler_spec.duration_days,
            start_time=crawler_spec.start_time,
            journal=journal,
            checkpointer=checkpointer,
            resume_state=resume_state,
        )
    else:
        outcome = crawler.run(
            crawler_spec.duration_days, start_time=crawler_spec.start_time
        )

    times, freshness = outcome.freshness.as_series()
    series = {
        "times": [float(t) for t in times],
        "freshness": [float(f) for f in freshness],
    }
    if outcome.quality:
        series["quality_times"] = [float(t) for t in outcome.quality_times]
        series["quality"] = [float(q) for q in outcome.quality]
    summary: Dict[str, Any] = {
        "mode": crawler_spec.kind,
        "pages_crawled": outcome.pages_crawled,
        "collection_size": len(crawler.collection.current_records()),
        "mean_freshness": outcome.mean_freshness(),
        "final_quality": outcome.final_quality(),
        "duration_days": outcome.duration_days,
    }
    if crawler_spec.kind == "incremental":
        summary["pages_failed"] = outcome.pages_failed
        summary["changes_detected"] = outcome.changes_detected
        summary["pages_replaced"] = outcome.pages_replaced
        failures = crawler.failure_counters()
        if failures is not None:
            summary["failures"] = failures
    else:
        summary["cycles_completed"] = outcome.cycles_completed
    artifacts = {"web": web, "crawler": crawler, "outcome": outcome}
    return series, summary, {}, artifacts


def _run_monitor(spec: ExperimentSpec, web: Optional[SimulatedWeb]) -> _RunPayload:
    assert spec.web is not None
    if web is None:
        web = build_web(spec.web, seed=spec.seed)
    params = dict(spec.params)
    start_day = int(params.pop("start_day", 0))
    end_day = params.pop("end_day", None)
    end_day = int(web.horizon_days) - 1 if end_day is None else int(end_day)
    selection_params = {
        key: params.pop(key)
        for key in ("n_candidates", "consent_rate", "selection_seed")
        if key in params
    }
    selection = None
    site_ids = None
    if selection_params:
        selection = select_sites(
            web,
            n_candidates=int(selection_params.get("n_candidates", web.n_sites)),
            consent_rate=float(selection_params.get("consent_rate", 1.0)),
            seed=int(selection_params.get("selection_seed", 0)),
        )
        site_ids = selection.selected_site_ids
    if params:
        raise ValueError(
            f"unknown monitor parameter(s) {sorted(params)}; valid: "
            "start_day, end_day, n_candidates, consent_rate, selection_seed"
        )

    log = ActiveMonitor(web, site_ids=site_ids).run(start_day=start_day, end_day=end_day)
    change = analyze_change_intervals(log)
    lifespan = analyze_lifespans(log)
    survival = analyze_survival(log)

    summary = {
        "n_pages": log.n_pages,
        "duration_days": log.duration_days,
        "mean_change_interval_days": change.mean_interval_estimate_days,
    }
    tables = {
        "change_interval_fractions": dict(change.overall_fractions()),
        "lifespan_fractions": dict(lifespan.method1_overall.labelled_fractions()),
        "half_change_days": dict(survival.half_change_days()),
        "monitored_sites_per_domain": (
            dict(selection.domain_counts) if selection is not None else None
        ),
    }
    artifacts = {
        "web": web,
        "log": log,
        "selection": selection,
        "change": change,
        "lifespan": lifespan,
        "survival": survival,
    }
    return {}, summary, tables, artifacts


def _run_scenario(spec: ExperimentSpec) -> _RunPayload:
    assert spec.scenario is not None
    function = SCENARIOS.get(spec.scenario)
    kwargs = _scenario_kwargs(spec, function)
    try:
        payload = function(**kwargs)
    except TypeError as error:
        raise ValueError(
            f"scenario {spec.scenario!r} rejected parameters {sorted(kwargs)}: {error}"
        ) from error
    return _split_payload(spec.scenario, payload)


def _split_payload(scenario: str, payload: Any) -> _RunPayload:
    if not isinstance(payload, Mapping):
        raise TypeError(
            f"scenario {scenario!r} must return a mapping with optional "
            f"'series'/'summary'/'tables' keys, got {type(payload).__name__}"
        )
    return (
        dict(payload.get("series", {})),
        dict(payload.get("summary", {})),
        dict(payload.get("tables", {})),
        {},
    )


# --------------------------------------------------------------------- #
# Crossed parameter sweeps
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioMatrix:
    """A crossed parameter sweep over a base experiment spec.

    Axes are ``dotted.path -> values`` overrides applied to copies of
    ``base``: the first path segment names a spec field (``params``,
    ``crawler``, ``web``, ``policy``, ``seed``, ...), the optional second
    segment a field inside that nested spec or params mapping. The matrix
    expands to the full cross product, one cell per combination.

    Example::

        ScenarioMatrix(
            base=ExperimentSpec(name="sweep", kind="scenario",
                                scenario="revisit-policies"),
            axes={"params.policy": ["uniform", "proportional", "optimal"]},
        )
    """

    base: ExperimentSpec
    axes: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("a ScenarioMatrix needs at least one axis")
        for path, values in self.axes.items():
            if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
                raise ValueError(f"axis {path!r} must map to a sequence of values")
            if len(values) == 0:
                raise ValueError(f"axis {path!r} has no values")
            self._apply(self.base, path, values[0])  # validate the path

    def cells(self) -> List[Tuple[Dict[str, Any], ExperimentSpec]]:
        """Expand the cross product into ``(axis assignment, spec)`` cells."""
        paths = list(self.axes)
        out: List[Tuple[Dict[str, Any], ExperimentSpec]] = []
        for combination in itertools.product(*(self.axes[path] for path in paths)):
            assignment = dict(zip(paths, combination))
            spec = self.base
            for path, value in assignment.items():
                spec = self._apply(spec, path, value)
            label = ", ".join(f"{path}={value}" for path, value in assignment.items())
            spec = spec.replace(name=f"{self.base.name}[{label}]")
            out.append((assignment, spec))
        return out

    @staticmethod
    def _apply(spec: ExperimentSpec, path: str, value: Any) -> ExperimentSpec:
        head, _, rest = path.partition(".")
        if head == "params":
            if not rest:
                raise ValueError("axis 'params' needs a key, e.g. 'params.rate'")
            params = dict(spec.params)
            params[rest] = value
            return spec.replace(params=params)
        if head in ("web", "crawler", "policy"):
            nested = getattr(spec, head)
            if nested is None:
                raise ValueError(f"axis {path!r} targets {head!r} but the base "
                                 f"spec has no {head} spec")
            if not rest:
                raise ValueError(f"axis {head!r} needs a field, e.g. '{head}.seed'")
            return spec.replace(**{head: nested.replace(**{rest: value})})
        if rest:
            raise ValueError(f"unknown axis path {path!r}")
        return spec.replace(**{head: value})


@dataclass
class MatrixResult:
    """All cell results of a :func:`run_matrix` sweep."""

    name: str
    cells: List[ExperimentResult]
    wall_time_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view of every cell."""
        return {
            "name": self.name,
            "wall_time_seconds": self.wall_time_seconds,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The matrix result as JSON text."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


def run_matrix(
    matrix: ScenarioMatrix,
    *,
    workers: int = 1,
    on_cell: Optional[Any] = None,
) -> MatrixResult:
    """Execute every cell of the matrix, batching where possible.

    Two batching layers keep sweeps cheap:

    * cells whose web spec and effective seed coincide share one generated
      :class:`SimulatedWeb` (web generation dominates small crawl runs);
    * scenario cells that differ only along an axis the scenario declares
      via ``batch_param`` are collapsed into a single scenario call that
      receives the whole value list and returns per-cell payloads.

    Args:
        workers: Number of worker processes to spread the cells over.
            ``1`` (the default) runs everything in-process, exactly as
            before. With more, cells run in a process pool; each distinct
            web is generated once in the parent and shipped to the pool
            through shared memory, so workers attach zero-copy instead of
            re-generating or unpickling it. Per-cell results are identical
            to a serial sweep except that heavy in-memory ``artifacts``
            (web, crawler, outcome) cannot cross the process boundary and
            come back empty.
        on_cell: Optional ``(index, result)`` callback streamed in
            deterministic cell order — cell ``i`` is always delivered
            before cell ``i+1``, regardless of which worker finished
            first.

    Returns:
        The :class:`MatrixResult`; ``cells`` is ordered by cell index in
        both modes.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    started = time.perf_counter()
    cells = matrix.cells()
    results: Dict[int, ExperimentResult] = {}
    emitted = 0

    def flush() -> None:
        nonlocal emitted
        while on_cell is not None and emitted in results:
            on_cell(emitted, results[emitted])
            emitted += 1

    # Batched scenario axes.
    remaining: List[Tuple[int, Dict[str, Any], ExperimentSpec]] = []
    for index, (assignment, spec) in enumerate(cells):
        remaining.append((index, assignment, spec))
    batch_axis = _single_batchable_axis(matrix)
    if batch_axis is not None:
        path, values = batch_axis
        key = path.partition(".")[2]
        merged_params = dict(matrix.base.params)
        merged_params[key] = list(values)
        merged = matrix.base.replace(params=merged_params)
        function = SCENARIOS.get(merged.scenario)
        try:
            payload = function(**_scenario_kwargs(merged, function))
        except TypeError as error:
            raise ValueError(
                f"scenario {merged.scenario!r} rejected batched parameters "
                f"{sorted(merged.params)}: {error}"
            ) from error
        per_cell = payload.get("cells") if isinstance(payload, Mapping) else None
        if per_cell is None or len(per_cell) != len(values):
            # Failing loud beats silently re-running the expensive merged
            # evaluation once per cell.
            raise ValueError(
                f"scenario {merged.scenario!r} declares batch_param "
                f"{key!r} but returned "
                f"{'no' if per_cell is None else len(per_cell)} 'cells' for "
                f"{len(values)} values"
            )
        for (index, assignment, spec), cell_payload in zip(remaining, per_cell):
            series, summary, tables, artifacts = _split_payload(
                spec.scenario, cell_payload
            )
            results[index] = ExperimentResult(
                name=spec.name,
                kind=spec.kind,
                spec_hash=spec.spec_hash(),
                seed=spec.effective_seed(),
                wall_time_seconds=0.0,
                series=series,
                summary=summary,
                tables=tables,
                artifacts=artifacts,
            )
        remaining = []
        flush()

    # Everything else: run per cell with a shared-web cache.
    if workers > 1 and len(remaining) > 1:
        _run_cells_parallel(remaining, results, workers, flush)
    else:
        web_cache: Dict[str, SimulatedWeb] = {}
        for index, assignment, spec in remaining:
            web = None
            cache_key = _web_cache_key(spec)
            if cache_key is not None:
                web = web_cache.get(cache_key)
                if web is None:
                    web = build_web(spec.web, seed=spec.seed)
                    web_cache[cache_key] = web
            results[index] = run(spec, web=web)
            flush()

    ordered = [results[index] for index in range(len(cells))]
    return MatrixResult(
        name=matrix.base.name,
        cells=ordered,
        wall_time_seconds=time.perf_counter() - started,
    )


def _web_cache_key(spec: ExperimentSpec) -> Optional[str]:
    """The shared-web cache key of a cell, or ``None`` when it needs no web."""
    if spec.kind in ("crawl", "monitor") and spec.web is not None:
        return spec.web.spec_hash() + f"/{spec.effective_seed()}"
    return None


def _matrix_pool_worker(tasks: Any, results_queue: Any) -> None:
    """Process-pool worker: pull cell jobs until the ``None`` sentinel.

    Webs arrive as :class:`~repro.simweb.shared.SharedWebPayload` names and
    are materialised zero-copy, then cached per worker by cache key so a
    worker running several cells over the same web attaches once.
    """
    from repro.simweb.shared import install_parent_death_signal

    install_parent_death_signal()
    webs: Dict[str, SimulatedWeb] = {}
    while True:
        job = tasks.get()
        if job is None:
            break
        index, spec, payload, cache_key = job
        try:
            web = None
            if payload is not None:
                web = webs.get(cache_key)
                if web is None:
                    web = payload.materialise()
                    webs[cache_key] = web
            result = run(spec, web=web)
            results_queue.put(
                (
                    "result",
                    index,
                    {
                        "name": result.name,
                        "kind": result.kind,
                        "spec_hash": result.spec_hash,
                        "seed": result.seed,
                        "wall_time_seconds": result.wall_time_seconds,
                        "series": result.series,
                        "summary": result.summary,
                        "tables": result.tables,
                    },
                )
            )
        except BaseException:
            import traceback

            try:
                results_queue.put(("error", index, traceback.format_exc()))
            except Exception:  # pragma: no cover - queue already broken
                pass
            break


def _run_cells_parallel(
    remaining: List[Tuple[int, Dict[str, Any], ExperimentSpec]],
    results: Dict[int, ExperimentResult],
    workers: int,
    flush: Any,
) -> None:
    """Run matrix cells on a spawn-based process pool with shared webs.

    Every distinct ``(web spec, seed)`` is generated once here and packed
    into shared memory; workers attach zero-copy. Cell jobs are enqueued in
    cell-index order and whichever worker is free takes the next, so the
    pool stays busy regardless of per-cell cost skew; results are keyed by
    index, making the outcome independent of scheduling.
    """
    import multiprocessing
    import queue as queue_module

    from repro.simweb.shared import SharedWeb

    ctx = multiprocessing.get_context("spawn")
    tasks = ctx.Queue()
    results_queue = ctx.Queue()
    shared_webs: Dict[str, SharedWeb] = {}
    processes: List[Any] = []
    n_workers = min(workers, len(remaining))
    try:
        for index, assignment, spec in remaining:
            cache_key = _web_cache_key(spec)
            payload = None
            if cache_key is not None:
                shared = shared_webs.get(cache_key)
                if shared is None:
                    shared = SharedWeb(build_web(spec.web, seed=spec.seed))
                    shared_webs[cache_key] = shared
                payload = shared.payload
            tasks.put((index, spec, payload, cache_key))
        for _ in range(n_workers):
            tasks.put(None)
        for _ in range(n_workers):
            process = ctx.Process(
                target=_matrix_pool_worker,
                args=(tasks, results_queue),
                daemon=True,
            )
            process.start()
            processes.append(process)
        received = 0
        while received < len(remaining):
            try:
                message = results_queue.get(timeout=1.0)
            except queue_module.Empty:
                dead = [p for p in processes if not p.is_alive() and p.exitcode != 0]
                if dead and received < len(remaining):
                    raise RuntimeError(
                        f"matrix worker exited with code {dead[0].exitcode} "
                        "without reporting its cell"
                    )
                continue
            kind, index, payload = message
            if kind == "error":
                raise RuntimeError(f"matrix cell {index} failed:\n{payload}")
            received += 1
            results[index] = ExperimentResult(
                name=payload["name"],
                kind=payload["kind"],
                spec_hash=payload["spec_hash"],
                seed=payload["seed"],
                wall_time_seconds=payload["wall_time_seconds"],
                series=payload["series"],
                summary=payload["summary"],
                tables=payload["tables"],
                artifacts={},
            )
            flush()
        for process in processes:
            process.join()
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join()
        tasks.close()
        results_queue.close()
        for shared in shared_webs.values():
            shared.close()


def _single_batchable_axis(
    matrix: ScenarioMatrix,
) -> Optional[Tuple[str, Sequence[Any]]]:
    """The matrix's sole axis if the scenario declares it batchable."""
    if matrix.base.kind != "scenario" or len(matrix.axes) != 1:
        return None
    (path, values), = matrix.axes.items()
    head, _, rest = path.partition(".")
    if head != "params" or not rest:
        return None
    function = SCENARIOS.get(matrix.base.scenario)
    if getattr(function, "batch_param", None) != rest:
        return None
    return path, values


def _scenario_kwargs(spec: ExperimentSpec, function: Any) -> Dict[str, Any]:
    """The scenario call's kwargs: explicit params, plus the run-level seed
    when the scenario actually accepts a ``seed`` parameter."""
    kwargs = dict(spec.params)
    if spec.seed is not None and _accepts_parameter(function, "seed"):
        kwargs.setdefault("seed", spec.seed)
    return kwargs


def _accepts_parameter(function: Any, name: str) -> bool:
    try:
        signature = inspect.signature(function)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return True
    if any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in signature.parameters.values()
    ):
        return True
    return name in signature.parameters
