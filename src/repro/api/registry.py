"""Plugin registries for the declarative experiment API.

Every extensible choice in the reproduction — revisit policies, change-rate
estimators, page change models, storage backends and canned experiment
scenarios — is a named entry in one of the registries below. Configuration objects and
:class:`~repro.api.specs.ExperimentSpec` resolve those names through the
registries instead of hard-coded string comparisons, so a new policy (or
scenario) only needs a ``@register_*`` decorator to become available to the
CLI, the JSON spec runner and the benchmarks alike.

The module is deliberately dependency-free (it imports nothing from the rest
of ``repro``): domain modules import their ``register_*`` decorator from
here and self-register at import time, which keeps the dependency direction
domain -> registry rather than api -> domain.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Iterator, List, Optional, TypeVar

FactoryT = TypeVar("FactoryT", bound=Callable[..., Any])


class UnknownEntryError(ValueError):
    """Raised when a name is not registered; lists the registered choices."""

    def __init__(self, kind: str, name: str, registered: List[str]) -> None:
        choices = ", ".join(repr(choice) for choice in registered) or "(none)"
        super().__init__(
            f"unknown {kind} {name!r}; registered {kind} names: {choices}"
        )
        self.kind = kind
        self.name = name
        self.registered = registered


class Registry:
    """A named collection of factories (classes or callables).

    Args:
        kind: Human-readable singular name of what is registered, used in
            error messages (``"revisit policy"``, ``"scenario"``, ...).
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._entries: Dict[str, Callable[..., Any]] = {}

    @property
    def kind(self) -> str:
        """What this registry holds (for error messages and listings)."""
        return self._kind

    def register(
        self, name: str, factory: Optional[FactoryT] = None
    ) -> Callable[[FactoryT], FactoryT]:
        """Register ``factory`` under ``name``; usable as a decorator.

        Re-registering a name replaces the previous entry, so tests and
        plugins can override built-ins.
        """

        def _register(obj: FactoryT) -> FactoryT:
            if not callable(obj):
                raise TypeError(f"{self._kind} {name!r} must be callable")
            self._entries[name] = obj
            return obj

        if factory is not None:
            return _register(factory)
        return _register

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name``.

        Raises:
            UnknownEntryError: If ``name`` is not registered; the message
                lists every registered choice.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownEntryError(self._kind, name, self.names()) from None

    def create(self, name: str, **kwargs: Any) -> Any:
        """Instantiate the entry, passing only the kwargs its factory accepts.

        Factories differ in what they can be configured with (for example
        only the optimal revisit policy takes ``use_importance``), so extra
        keyword arguments are silently dropped unless the factory declares
        ``**kwargs`` itself.
        """
        factory = self.get(name)
        return factory(**self._accepted_kwargs(factory, kwargs))

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._entries)

    def validate(self, name: str) -> str:
        """Return ``name`` if registered, else raise :class:`UnknownEntryError`."""
        self.get(name)
        return name

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _accepted_kwargs(
        factory: Callable[..., Any], kwargs: Dict[str, Any]
    ) -> Dict[str, Any]:
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):  # builtins without introspectable sigs
            return kwargs
        if any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in signature.parameters.values()
        ):
            return kwargs
        return {
            key: value for key, value in kwargs.items() if key in signature.parameters
        }


#: Revisit policies: name -> RevisitPolicy factory (see repro.freshness.policies).
REVISIT_POLICIES = Registry("revisit policy")
#: Change-rate estimators: name -> ChangeRateEstimator factory
#: (see repro.estimation.rate_estimators).
ESTIMATORS = Registry("estimator")
#: Page change models: name -> ChangeProcess factory (see repro.simweb.change_models).
CHANGE_MODELS = Registry("change model")
#: Canned experiment scenarios: name -> scenario function (see repro.api.scenarios).
SCENARIOS = Registry("scenario")
#: Collection storage backends: name -> StorageBackend factory
#: (see repro.storage.backends).
STORAGE_BACKENDS = Registry("storage backend")
#: Fault models for deterministic fault injection: name -> FaultModel factory
#: (see repro.faults).
FAULT_MODELS = Registry("fault model")

register_revisit_policy = REVISIT_POLICIES.register
register_estimator = ESTIMATORS.register
register_change_model = CHANGE_MODELS.register
register_scenario = SCENARIOS.register
register_storage_backend = STORAGE_BACKENDS.register
register_fault_model = FAULT_MODELS.register
