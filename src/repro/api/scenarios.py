"""The paper's canned experiments as named scenario registry entries.

Each scenario is a plain function registered in
:data:`repro.api.registry.SCENARIOS`. Scenarios take keyword parameters
(everything has a default matching the corresponding benchmark, so a bare
``{"kind": "scenario", "scenario": "table2"}`` spec reproduces the
benchmark's numbers exactly) and return a JSON-serializable payload

``{"series": {...}, "summary": {...}, "tables": {...}}``

that :func:`repro.api.runner.run` wraps into an
:class:`~repro.api.runner.ExperimentResult`. All Monte-Carlo work routes
through the vectorized kernels of :mod:`repro.simulation.crawler_sim` and
:mod:`repro.freshness.optimal_allocation`.

Scenarios that can evaluate a whole axis of a
:class:`~repro.api.runner.ScenarioMatrix` in one call declare the axis
parameter via ``batch_param``; the matrix runner then collapses those cells
into a single invocation (one calibrated-rate draw, one allocation solve per
policy) instead of re-running the scenario per cell.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.api.registry import ESTIMATORS, REVISIT_POLICIES, register_scenario
from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.faults import RetryPolicy
from repro.freshness.analytic import freshness_trajectory, time_averaged_freshness
from repro.freshness.analytic import (
    batch_inplace_freshness_at,
    batch_shadow_freshness_at,
    steady_inplace_freshness_at,
    steady_shadow_freshness_at,
)
from repro.freshness.optimal_allocation import total_freshness
from repro.simulation.crawler_sim import simulate_crawl_policy, simulate_revisit_allocation
from repro.simulation.scenarios import (
    PAPER_SENSITIVITY_FRESHNESS,
    PAPER_TABLE2_FRESHNESS,
    figure7_change_rate,
    figure7_policies,
    figure8_policies,
    paper_table2_policies,
    sensitivity_example_policies,
    sensitivity_scenario_rate,
    table2_scenario_rate,
)
from repro.simweb.domains import sample_calibrated_rates
from repro.simweb.generator import WebGeneratorConfig, generate_web


def batchable(param: str) -> Callable:
    """Mark a scenario as able to evaluate a list of ``param`` in one call."""

    def _mark(function: Callable) -> Callable:
        function.batch_param = param
        return function

    return _mark


# --------------------------------------------------------------------- #
# Table 2 and the Section 4 sensitivity example
# --------------------------------------------------------------------- #
@register_scenario("table2")
def table2(n_pages: int = 500, n_cycles: int = 8, seed: int = 21,
           simulate: bool = True) -> Dict[str, Any]:
    """Table 2: freshness of the four design-choice combinations.

    All pages change with a four-month mean interval; every page is
    revisited once per monthly cycle; the batch crawler works in the first
    week of the cycle. Analytic values come from the closed forms, measured
    values from the vectorized Monte-Carlo simulator.
    """
    rate = table2_scenario_rate()
    policies = paper_table2_policies()
    analytic = {
        name: time_averaged_freshness(policy, rate) for name, policy in policies.items()
    }
    simulated: Dict[str, float] = {}
    if simulate:
        simulated = {
            name: simulate_crawl_policy(
                [rate] * n_pages, policy, n_cycles=n_cycles, seed=seed
            ).mean_freshness
            for name, policy in policies.items()
        }
    return {
        "summary": {"scenario_rate_per_day": rate, "n_pages": n_pages},
        "tables": {
            "paper": dict(PAPER_TABLE2_FRESHNESS),
            "analytic": analytic,
            "simulated": simulated,
        },
    }


@register_scenario("sensitivity")
def sensitivity() -> Dict[str, Any]:
    """Section 4 sensitivity example: monthly changes, two-week batch crawl."""
    rate = sensitivity_scenario_rate()
    analytic = {
        name: time_averaged_freshness(policy, rate)
        for name, policy in sensitivity_example_policies().items()
    }
    return {
        "summary": {"scenario_rate_per_day": rate},
        "tables": {
            "paper": dict(PAPER_SENSITIVITY_FRESHNESS),
            "analytic": analytic,
        },
    }


# --------------------------------------------------------------------- #
# Figures 7 and 8: freshness evolution
# --------------------------------------------------------------------- #
@register_scenario("figure7")
def figure7(rate: Optional[float] = None, duration_days: float = 90.0,
            n_points: int = 90, n_pages: int = 300, n_cycles: int = 6,
            seed: int = 7) -> Dict[str, Any]:
    """Figure 7: batch-mode saw-tooth vs. steady stability, in-place updates.

    Returns the analytic trajectories as series (``"<name>/times"`` /
    ``"<name>/freshness"``) plus analytic and simulated time averages.
    """
    rate = figure7_change_rate() if rate is None else rate
    policies = figure7_policies()
    series: Dict[str, List[float]] = {}
    analytic_mean: Dict[str, float] = {}
    simulated_mean: Dict[str, float] = {}
    for name, policy in policies.items():
        times, values = freshness_trajectory(
            policy, rate, duration_days=duration_days, n_points=n_points
        )
        series[f"{name}/times"] = list(times)
        series[f"{name}/freshness"] = list(values)
        analytic_mean[name] = time_averaged_freshness(policy, rate)
        simulated_mean[name] = simulate_crawl_policy(
            [rate] * n_pages, policy, n_cycles=n_cycles, seed=seed
        ).mean_freshness
    return {
        "series": series,
        "summary": {"rate_per_day": rate},
        "tables": {"analytic_mean": analytic_mean, "simulated_mean": simulated_mean},
    }


@register_scenario("figure8")
def figure8(variant: str = "steady", rate: Optional[float] = None,
            n_points: Optional[int] = None) -> Dict[str, Any]:
    """Figure 8: shadowing vs. in-place freshness trajectories.

    Args:
        variant: ``"steady"`` (Figure 8(a): crawler's and current collection
            over two cycles, plus the in-place curve) or ``"batch"``
            (Figure 8(b): shadowed vs. in-place current collection over one
            cycle).
        rate: Page change rate; defaults to the illustrative Figure 7 rate.
        n_points: Trajectory points; defaults match the benchmarks
            (401 for steady, 301 for batch).
    """
    if variant not in ("steady", "batch"):
        raise ValueError('variant must be "steady" or "batch"')
    rate = figure7_change_rate() if rate is None else rate
    policy = figure8_policies()[
        "steady with shadowing" if variant == "steady" else "batch-mode with shadowing"
    ]
    cycle = policy.cycle_days
    series: Dict[str, List[float]] = {}
    if variant == "steady":
        n_points = 401 if n_points is None else n_points
        times = [2.0 * cycle * i / (n_points - 1) for i in range(n_points)]
        series["times"] = times
        series["crawler"] = [
            steady_shadow_freshness_at(t, rate, cycle, "crawler") for t in times
        ]
        series["current"] = [
            steady_shadow_freshness_at(t, rate, cycle, "current") for t in times
        ]
        series["in_place"] = [
            steady_inplace_freshness_at(t, rate, cycle) for t in times
        ]
    else:
        batch = policy.batch_duration_days
        n_points = 301 if n_points is None else n_points
        times = [cycle * i / (n_points - 1) for i in range(n_points)]
        series["times"] = times
        series["current"] = [
            batch_shadow_freshness_at(t, rate, cycle, batch, "current") for t in times
        ]
        series["in_place"] = [
            batch_inplace_freshness_at(t, rate, cycle, batch) for t in times
        ]
    gap = [i - c for i, c in zip(series["in_place"], series["current"])]
    return {
        "series": series,
        "summary": {
            "variant": variant,
            "rate_per_day": rate,
            "cycle_days": cycle,
            "min_inplace_advantage": min(gap),
            "max_inplace_advantage": max(gap),
        },
        "tables": {},
    }


# --------------------------------------------------------------------- #
# Section 5: polite incremental crawling
# --------------------------------------------------------------------- #
@register_scenario("polite-crawl")
def polite_crawl(
    site_scale: float = 0.05,
    pages_per_site: int = 12,
    duration_days: float = 10.0,
    collection_capacity: int = 60,
    crawl_budget_per_day: float = 300.0,
    min_delay_seconds: float = 10.0,
    night_window: bool = True,
    revisit_policy: str = "optimal",
    estimator: str = "ep",
    seed: int = 31,
) -> Dict[str, Any]:
    """Incremental crawl under the paper's politeness constraints.

    Runs the Section 5 incremental crawler twice on the same synthetic
    multi-site web — once unconstrained, once with the per-site minimum
    delay and (optionally) the nightly crawl window — so the freshness
    cost of politeness is directly visible. Both runs use the batched
    tick-window engine; politeness is resolved in site-grouped bulk
    passes, not by falling back to the per-URL reference path.

    Args:
        site_scale: Site-count scale of the generated web.
        pages_per_site: Mean pages per generated site.
        duration_days: Virtual days to crawl.
        collection_capacity: Target collection size.
        crawl_budget_per_day: Pages fetched per virtual day.
        min_delay_seconds: Minimum (virtual) seconds between two requests
            to one site; the paper used 10.
        night_window: Also restrict fetching to the nightly crawl window.
        revisit_policy: Registered revisit-policy name.
        estimator: Registered change-rate estimator name.
        seed: Web-generation seed.
    """
    REVISIT_POLICIES.validate(revisit_policy)
    web_config = WebGeneratorConfig(
        site_scale=site_scale,
        pages_per_site=pages_per_site,
        horizon_days=duration_days + 30.0,
        seed=seed,
    )

    def _run(polite: bool):
        crawler = IncrementalCrawler(
            generate_web(web_config),
            IncrementalCrawlerConfig(
                collection_capacity=collection_capacity,
                crawl_budget_per_day=crawl_budget_per_day,
                revisit_policy=revisit_policy,
                estimator=estimator,
                track_quality=False,
                use_politeness=polite,
                politeness_min_delay_seconds=min_delay_seconds,
                politeness_night_window=night_window,
            ),
        )
        return crawler.run(duration_days)

    impolite = _run(False)
    polite = _run(True)
    series: Dict[str, List[float]] = {}
    for name, outcome in (("impolite", impolite), ("polite", polite)):
        times, freshness = outcome.freshness.as_series()
        series[f"{name}/times"] = [float(t) for t in times]
        series[f"{name}/freshness"] = [float(f) for f in freshness]
    return {
        "series": series,
        "summary": {
            "min_delay_seconds": min_delay_seconds,
            "night_window": night_window,
            "duration_days": duration_days,
            "pages_crawled_impolite": impolite.pages_crawled,
            "pages_crawled_polite": polite.pages_crawled,
        },
        "tables": {
            "mean_freshness": {
                "impolite": impolite.mean_freshness(),
                "polite": polite.mean_freshness(),
            },
            "changes_detected": {
                "impolite": impolite.changes_detected,
                "polite": polite.changes_detected,
            },
        },
    }


# --------------------------------------------------------------------- #
# Fault regimes: which policies/estimators degrade under failures
# --------------------------------------------------------------------- #
#: Default fault regimes of the ``chaos-crawl`` scenario, each a stack of
#: ``(kind, params)`` fault models (see :data:`repro.api.registry.FAULT_MODELS`).
DEFAULT_CHAOS_REGIMES: Dict[str, List] = {
    "transient": [("transient", {"rate": 0.1})],
    "outages": [
        ("site_outage", {"rate": 0.3, "period_days": 5.0, "duration_days": 1.0})
    ],
    "rate_limited": [("rate_limit", {"rate": 0.1, "retry_after_days": 0.5})],
    "soft_404": [("soft_404", {"rate": 0.08, "flap_period_days": 3.0})],
}


@register_scenario("chaos-crawl")
def chaos_crawl(
    site_scale: float = 0.03,
    pages_per_site: int = 10,
    duration_days: float = 15.0,
    collection_capacity: int = 80,
    crawl_budget_per_day: float = 300.0,
    policies: Sequence[str] = ("uniform", "optimal"),
    estimators: Sequence[str] = ("ep", "eb"),
    regimes: Optional[Dict[str, Sequence]] = None,
    fault_seed: int = 3,
    max_attempts: int = 3,
    seed: int = 31,
) -> Dict[str, Any]:
    """Incremental crawls under seeded fault regimes, per policy/estimator.

    Runs every ``revisit policy x estimator`` combination once without
    faults and once per fault regime on the same synthetic web, with the
    failure-aware engine (retry, backoff, circuit breaker) armed for the
    faulty runs. The result tables show which combinations degrade under
    which failure mode — e.g. soft-404 flapping hurts change-frequency
    estimators more than correlated site outages do.

    Args:
        site_scale: Site-count scale of the generated web.
        pages_per_site: Mean pages per generated site.
        duration_days: Virtual days to crawl.
        collection_capacity: Target collection size.
        crawl_budget_per_day: Pages fetched per virtual day.
        policies: Registered revisit-policy names to cross.
        estimators: Registered change-rate estimator names to cross.
        regimes: ``name -> list of (kind, params)`` fault-model stacks;
            defaults to :data:`DEFAULT_CHAOS_REGIMES`.
        fault_seed: Seed of the fault layer and retry jitter.
        max_attempts: Retry attempts per URL in the faulty runs.
        seed: Web-generation seed.
    """
    for name in policies:
        REVISIT_POLICIES.validate(name)
    for name in estimators:
        ESTIMATORS.validate(name)
    if regimes is None:
        regimes = DEFAULT_CHAOS_REGIMES
    regime_models = {
        str(name): tuple((str(kind), dict(params)) for kind, params in models)
        for name, models in regimes.items()
    }
    web_config = WebGeneratorConfig(
        site_scale=site_scale,
        pages_per_site=pages_per_site,
        horizon_days=duration_days + 30.0,
        seed=seed,
    )

    def _run(policy: str, estimator: str, models):
        crawler = IncrementalCrawler(
            generate_web(web_config),
            IncrementalCrawlerConfig(
                collection_capacity=collection_capacity,
                crawl_budget_per_day=crawl_budget_per_day,
                revisit_policy=policy,
                estimator=estimator,
                track_quality=False,
                fault_models=models,
                fault_seed=fault_seed,
                retry=RetryPolicy(max_attempts=max_attempts) if models else None,
            ),
        )
        outcome = crawler.run(duration_days)
        return outcome, crawler.failure_counters()

    mean_freshness: Dict[str, Dict[str, float]] = {}
    degradation: Dict[str, Dict[str, float]] = {}
    failures: Dict[str, Dict[str, int]] = {}
    for policy in policies:
        for estimator in estimators:
            combo = f"{policy}/{estimator}"
            baseline, _ = _run(policy, estimator, None)
            base = baseline.mean_freshness()
            mean_freshness[combo] = {"none": base}
            degradation[combo] = {}
            for regime, models in regime_models.items():
                outcome, counters = _run(policy, estimator, models)
                value = outcome.mean_freshness()
                mean_freshness[combo][regime] = value
                degradation[combo][regime] = base - value
                failures[f"{combo}/{regime}"] = counters
    worst: Dict[str, Dict[str, Any]] = {}
    for regime in regime_models:
        combo = max(degradation, key=lambda c: degradation[c][regime])
        worst[regime] = {
            "combo": combo,
            "freshness_loss": degradation[combo][regime],
        }
    return {
        "summary": {
            "duration_days": duration_days,
            "regimes": sorted(regime_models),
            "combos": sorted(mean_freshness),
            "worst_degradation": worst,
        },
        "tables": {
            "mean_freshness": mean_freshness,
            "degradation": degradation,
            "failures": failures,
        },
    }


# --------------------------------------------------------------------- #
# Figure 10 / Section 4.3: revisit-frequency policies
# --------------------------------------------------------------------- #
@register_scenario("revisit-policies")
@batchable("policy")
def revisit_policies(
    policy: Union[str, Sequence[str]] = ("uniform", "proportional", "optimal"),
    n_pages: int = 400,
    rates_seed: int = 5,
    budget_days_per_page: float = 15.0,
    duration_days: float = 240.0,
    n_samples: int = 200,
    sim_seed: int = 9,
    simulate: bool = True,
) -> Dict[str, Any]:
    """Section 4.3 / Figure 10: fixed vs. proportional vs. optimal revisits.

    One calibrated-rate population is drawn and shared by every requested
    policy; each policy's allocation is solved by the corresponding
    vectorized kernel and evaluated both analytically
    (:func:`total_freshness`) and with the Monte-Carlo allocation simulator.

    Args:
        policy: One registered policy name or a list of them; the whole list
            is evaluated in this single call (this is the scenario's
            :class:`~repro.api.runner.ScenarioMatrix` batch axis).
        n_pages: Population size drawn from the calibrated domain mix.
        rates_seed: Seed of the rate-population draw.
        budget_days_per_page: The crawl budget expressed as "each page can
            be visited once every this many days on average".
        duration_days: Monte-Carlo measurement window.
        n_samples: Monte-Carlo freshness samples.
        sim_seed: Monte-Carlo seed.
        simulate: Skip the Monte-Carlo pass when False.
    """
    names = [policy] if isinstance(policy, str) else list(policy)
    policies = {name: REVISIT_POLICIES.create(name) for name in names}
    rates = sample_calibrated_rates(n_pages, seed=rates_seed)
    rate_map = {f"page{index:05d}": rate for index, rate in enumerate(rates)}
    budget = len(rates) / budget_days_per_page
    analytic: Dict[str, float] = {}
    simulated: Dict[str, float] = {}
    for name, policy_impl in policies.items():
        frequency_map = policy_impl.frequencies(rate_map, budget)
        frequencies = [frequency_map[url] for url in rate_map]
        analytic[name] = total_freshness(rates, frequencies)
        if simulate:
            # Raw reciprocal intervals (no MAX_REVISIT_INTERVAL_DAYS cap):
            # a zero-frequency page is genuinely never revisited here.
            intervals = [1.0 / f if f > 0 else float("inf") for f in frequencies]
            simulated[name] = simulate_revisit_allocation(
                rates, intervals, duration_days=duration_days,
                n_samples=n_samples, seed=sim_seed,
            ).mean_freshness
    payload: Dict[str, Any] = {
        "summary": {
            "n_pages": len(rates),
            "budget_per_day": budget,
            "policies": names,
        },
        "tables": {"analytic": analytic, "simulated": simulated},
    }
    # Per-policy cell payloads so a batched matrix call can be split back
    # into one ExperimentResult per cell.
    payload["cells"] = [
        {
            "summary": {"policy": name, "n_pages": len(rates), "budget_per_day": budget},
            "tables": {
                "analytic": {name: analytic[name]},
                "simulated": {name: simulated[name]} if name in simulated else {},
            },
        }
        for name in names
    ]
    return payload
