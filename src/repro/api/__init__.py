"""``repro.api`` — the declarative experiment layer.

The package turns experiments into *data*:

* :mod:`repro.api.registry` — plugin registries for revisit policies,
  change-rate estimators, page change models, canned scenarios and storage
  backends (``@register_revisit_policy`` and friends);
* :mod:`repro.api.specs` — frozen, JSON-round-trippable spec dataclasses
  (:class:`WebSpec`, :class:`PolicySpec`, :class:`CrawlerSpec`,
  :class:`ExperimentSpec`) with validation and a stable content hash;
* :mod:`repro.api.runner` — a single :func:`run` entry point returning a
  structured, JSON-serializable :class:`ExperimentResult`, plus
  :class:`ScenarioMatrix` for crossed parameter sweeps;
* :mod:`repro.api.scenarios` — the paper's canned Section 4 / Figure 7/8/10
  experiments as named registry entries.

Only the registries are imported eagerly: domain modules self-register by
importing their decorator from :mod:`repro.api.registry`, so the heavier
spec/runner modules (which import those same domain modules) are loaded
lazily to keep the dependency graph acyclic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.api.registry import (
    CHANGE_MODELS,
    ESTIMATORS,
    REVISIT_POLICIES,
    SCENARIOS,
    STORAGE_BACKENDS,
    Registry,
    UnknownEntryError,
    register_change_model,
    register_estimator,
    register_revisit_policy,
    register_scenario,
    register_storage_backend,
)

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers only
    from repro.api.runner import (
        ExperimentResult,
        MatrixResult,
        ScenarioMatrix,
        build_web,
        run,
        run_matrix,
    )
    from repro.api.specs import CrawlerSpec, ExperimentSpec, PolicySpec, WebSpec

__all__ = [
    "CHANGE_MODELS",
    "ESTIMATORS",
    "REVISIT_POLICIES",
    "SCENARIOS",
    "STORAGE_BACKENDS",
    "Registry",
    "UnknownEntryError",
    "register_change_model",
    "register_estimator",
    "register_revisit_policy",
    "register_scenario",
    "register_storage_backend",
    "CrawlerSpec",
    "ExperimentSpec",
    "PolicySpec",
    "WebSpec",
    "ExperimentResult",
    "MatrixResult",
    "ScenarioMatrix",
    "build_web",
    "run",
    "run_matrix",
]

#: Lazily-resolved exports: attribute name -> defining submodule.
_LAZY_EXPORTS = {
    "CrawlerSpec": "repro.api.specs",
    "ExperimentSpec": "repro.api.specs",
    "PolicySpec": "repro.api.specs",
    "WebSpec": "repro.api.specs",
    "ExperimentResult": "repro.api.runner",
    "MatrixResult": "repro.api.runner",
    "ScenarioMatrix": "repro.api.runner",
    "build_web": "repro.api.runner",
    "run": "repro.api.runner",
    "run_matrix": "repro.api.runner",
}


def __getattr__(name: str) -> Any:
    """Load spec/runner exports on first access (PEP 562)."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    # Scenario registration happens on import, so the canned scenarios are
    # always visible once any lazy export is touched.
    importlib.import_module("repro.api.scenarios")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
