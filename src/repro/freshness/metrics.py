"""Empirical freshness and age of a collection.

Freshness ([CGM99b], quoted in Section 4): the fraction of pages in the
local collection that are *up to date*, i.e. identical to their live
counterpart at the evaluation instant. Age: for each page, how long its
stored copy has been out of date (zero for up-to-date copies), averaged over
the collection.

In the simulation the ground truth is available from the
:class:`~repro.simweb.web.SimulatedWeb` oracle, so both metrics can be
computed exactly: a stored copy fetched at time ``t_f`` is up to date at
time ``t`` iff the page did not change in ``(t_f, t]`` and still exists.

Both metrics run through the *batched* oracle
(:meth:`~repro.simweb.web.SimulatedWeb.oracle_arrays`): one measurement
event over an N-record collection costs a few NumPy passes instead of N
Python oracle calls, which is what the measurement events inside
``IncrementalCrawler.run()`` and every figure benchmark pay repeatedly.
The original per-record loops are retained as
:func:`collection_freshness_reference` / :func:`collection_age_reference`
for the parity suite and the perf-trajectory benchmark.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.simweb.web import OracleArrays, SimulatedWeb
from repro.storage.records import PageRecord


def collection_freshness(
    records: Iterable[PageRecord],
    web: SimulatedWeb,
    at: float,
) -> float:
    """Fraction of stored records that are up to date at time ``at``.

    A record is up to date when its page still exists and has not changed
    since the record was fetched. An empty collection has freshness 0 (it
    provides no up-to-date pages to users).

    Args:
        records: Stored page records (the *current* collection).
        web: Ground-truth oracle.
        at: Evaluation instant (virtual days).

    Returns:
        Freshness in [0, 1].
    """
    freshness, _ = measure_collection(records, web, at, include_age=False)
    return freshness


def measure_collection(
    records: Iterable[PageRecord],
    web: SimulatedWeb,
    at: float,
    include_age: bool = True,
) -> Tuple[float, Optional[float]]:
    """Freshness and (optionally) age of a collection in one batched pass.

    The URL lookup and per-record fetch-time array — the only remaining
    O(records) Python work — are computed once and shared by both metrics,
    so a measurement event that tracks age does not pay them twice.

    Returns:
        ``(freshness, age)``; ``age`` is None when ``include_age`` is False.
    """
    records = list(records)
    if not records:
        return 0.0, (0.0 if include_age else None)
    arrays = web.oracle_arrays()
    ids, known = arrays.lookup([record.url for record in records])
    fetched = np.array([record.fetched_at for record in records], dtype=float)
    freshness = _freshness_from_arrays(arrays, ids, known, fetched, at, len(records))
    age = (
        _age_from_arrays(arrays, ids, known, fetched, at, len(records))
        if include_age
        else None
    )
    return freshness, age


def _freshness_from_arrays(
    arrays: OracleArrays,
    ids: np.ndarray,
    known: np.ndarray,
    fetched: np.ndarray,
    at: float,
    n_records: int,
) -> float:
    if not known.any():
        return 0.0
    ids = ids[known]
    fetched = fetched[known]
    alive = arrays.exists(ids, at)
    if not alive.any():
        return 0.0
    live_ids = ids[alive]
    unchanged = arrays.versions(live_ids, at) == arrays.versions(live_ids, fetched[alive])
    return int(unchanged.sum()) / n_records


def collection_freshness_reference(
    records: Iterable[PageRecord],
    web: SimulatedWeb,
    at: float,
) -> float:
    """Per-record loop implementation of :func:`collection_freshness`.

    Kept only for the parity suite and the perf-trajectory benchmark.
    """
    records = list(records)
    if not records:
        return 0.0
    fresh = 0
    for record in records:
        page = web.page(record.url) if record.url in web else None
        if page is None or not page.exists_at(at):
            continue
        if not page.changed_between(record.fetched_at, at):
            fresh += 1
    return fresh / len(records)


def collection_age(
    records: Iterable[PageRecord],
    web: SimulatedWeb,
    at: float,
) -> float:
    """Average age of the stored records at time ``at``.

    The age of an up-to-date record is zero; the age of a stale record is
    the time since the *first* change after its fetch. Records whose page no
    longer exists age from the moment of deletion... they are treated as
    stale since the deletion instant, matching the freshness definition.

    Args:
        records: Stored page records.
        web: Ground-truth oracle.
        at: Evaluation instant.

    Returns:
        Mean age in days (0 for an empty collection).
    """
    _, age = measure_collection(records, web, at, include_age=True)
    return age


def _age_from_arrays(
    arrays: OracleArrays,
    ids: np.ndarray,
    known: np.ndarray,
    fetched: np.ndarray,
    at: float,
    n_records: int,
) -> float:
    ages = np.maximum(0.0, at - fetched)  # unknown URLs age from their fetch

    if known.any():
        sub_ids = ids[known]
        sub_fetched = fetched[known]
        alive = arrays.exists(sub_ids, at)
        known_ages = np.empty(sub_ids.size)

        # Pages gone from the window: stale since the deletion instant (or
        # since the fetch, for pages the oracle never saw deleted).
        deleted = arrays.deleted[sub_ids]
        deleted = np.where(np.isinf(deleted), sub_fetched, deleted)
        stale_since = np.minimum(np.maximum(sub_fetched, deleted), at)
        known_ages[:] = np.maximum(0.0, at - stale_since)

        # Live pages: age from the first change after the fetch, if any.
        if alive.any():
            live_ids = sub_ids[alive]
            relative_now = np.maximum(0.0, at - arrays.created[live_ids])
            versions_at_fetch = arrays.versions(live_ids, sub_fetched[alive])
            next_change = arrays.next_change_relative(live_ids, versions_at_fetch)
            known_ages[alive] = np.where(
                next_change > relative_now, 0.0, relative_now - next_change
            )
        ages[known] = known_ages

    return float(ages.sum()) / n_records


def collection_age_reference(
    records: Iterable[PageRecord],
    web: SimulatedWeb,
    at: float,
) -> float:
    """Per-record loop implementation of :func:`collection_age`.

    Kept only for the parity suite and the perf-trajectory benchmark.
    """
    records = list(records)
    if not records:
        return 0.0
    total_age = 0.0
    for record in records:
        total_age += _record_age(record, web, at)
    return total_age / len(records)


def _record_age(record: PageRecord, web: SimulatedWeb, at: float) -> float:
    if record.url not in web:
        return max(0.0, at - record.fetched_at)
    page = web.page(record.url)
    if not page.exists_at(at):
        deleted_at = page.deleted_at if page.deleted_at is not None else record.fetched_at
        stale_since = min(max(record.fetched_at, deleted_at), at)
        return max(0.0, at - stale_since)
    relative_fetch = max(0.0, record.fetched_at - page.created_at)
    relative_now = max(0.0, at - page.created_at)
    next_change = page.change_process.next_change_after(relative_fetch)
    if next_change is None or next_change > relative_now:
        return 0.0
    return relative_now - next_change


def time_average(samples: Sequence[Tuple[float, float]]) -> float:
    """Time-weighted average of a piecewise-constant series.

    Args:
        samples: ``(time, value)`` pairs sorted by time; the value is assumed
            to hold from its sample time until the next sample time.

    Returns:
        The time-weighted mean of the values (simple mean when all samples
        share the same timestamp; 0 for an empty series).
    """
    if not samples:
        return 0.0
    if len(samples) == 1:
        return samples[0][1]
    times = [s[0] for s in samples]
    if any(b < a for a, b in zip(times, times[1:])):
        raise ValueError("samples must be sorted by time")
    total_span = samples[-1][0] - samples[0][0]
    if total_span == 0:
        return sum(value for _, value in samples) / len(samples)
    weighted = 0.0
    for (t0, v0), (t1, _) in zip(samples, samples[1:]):
        weighted += v0 * (t1 - t0)
    return weighted / total_span
