"""Revisit policies the UpdateModule can plug in.

A revisit policy turns per-page change-rate estimates (and optionally
importance scores) into per-page revisit intervals under a crawl bandwidth
budget. Three policies are provided, matching the Section 4 discussion:

* :class:`UniformRevisitPolicy` — the fixed-frequency policy (every page at
  the same interval), natural for a batch-mode crawler;
* :class:`ProportionalRevisitPolicy` — visit a page more often the more it
  changes; intuitive but suboptimal, as the paper's two-page example shows;
* :class:`OptimalRevisitPolicy` — the freshness-optimal allocation of
  [CGM99b] (Figure 9), optionally importance-weighted.

Each policy registers itself in :data:`repro.api.registry.REVISIT_POLICIES`
under its configuration name (``"uniform"``, ``"proportional"``,
``"optimal"``), which is how crawler configs and experiment specs resolve
the name to a policy instance; :func:`build_revisit_policy` is the shared
constructor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

from repro.api.registry import REVISIT_POLICIES, register_revisit_policy
from repro.freshness.optimal_allocation import (
    optimal_revisit_frequencies,
    proportional_revisit_frequencies,
    uniform_revisit_frequencies,
)

#: Interval assigned to pages the policy decides never to revisit. Keeping it
#: finite (rather than infinite) means even "hopeless" pages are eventually
#: re-checked, which lets the crawler notice estimation errors.
MAX_REVISIT_INTERVAL_DAYS = 365.0


class RevisitPolicy(ABC):
    """Maps change-rate estimates to revisit intervals under a budget."""

    @abstractmethod
    def frequencies(
        self,
        rates: Mapping[str, float],
        budget_per_day: float,
        importance: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Per-URL revisit frequencies (visits per day) summing to the budget.

        Args:
            rates: Mapping from URL to estimated change rate (changes/day).
            budget_per_day: Total page fetches per day available for
                refreshing.
            importance: Optional per-URL importance weights.

        Returns:
            Mapping from URL to revisit frequency.
        """

    def intervals(
        self,
        rates: Mapping[str, float],
        budget_per_day: float,
        importance: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Per-URL revisit intervals in days (capped at a year).

        Pages the policy assigns zero frequency get
        :data:`MAX_REVISIT_INTERVAL_DAYS`.
        """
        frequencies = self.frequencies(rates, budget_per_day, importance)
        intervals: Dict[str, float] = {}
        for url, frequency in frequencies.items():
            if frequency <= 0:
                intervals[url] = MAX_REVISIT_INTERVAL_DAYS
            else:
                intervals[url] = min(MAX_REVISIT_INTERVAL_DAYS, 1.0 / frequency)
        return intervals

    @staticmethod
    def _validate(rates: Mapping[str, float], budget_per_day: float) -> None:
        if rates and budget_per_day <= 0:
            raise ValueError("budget_per_day must be positive")
        if any(rate < 0 for rate in rates.values()):
            raise ValueError("change rates must be non-negative")


@register_revisit_policy("uniform")
class UniformRevisitPolicy(RevisitPolicy):
    """Every page is revisited at the same frequency (fixed-frequency)."""

    def frequencies(
        self,
        rates: Mapping[str, float],
        budget_per_day: float,
        importance: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        self._validate(rates, budget_per_day)
        urls = list(rates.keys())
        values = uniform_revisit_frequencies([rates[url] for url in urls], budget_per_day)
        return dict(zip(urls, values))


@register_revisit_policy("proportional")
class ProportionalRevisitPolicy(RevisitPolicy):
    """Revisit frequency proportional to the estimated change rate."""

    def frequencies(
        self,
        rates: Mapping[str, float],
        budget_per_day: float,
        importance: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        self._validate(rates, budget_per_day)
        urls = list(rates.keys())
        values = proportional_revisit_frequencies(
            [rates[url] for url in urls], budget_per_day
        )
        return dict(zip(urls, values))


@register_revisit_policy("optimal")
class OptimalRevisitPolicy(RevisitPolicy):
    """Freshness-optimal allocation, optionally importance-weighted.

    Args:
        use_importance: When True and importance scores are provided, the
            allocation maximises importance-weighted freshness, implementing
            the Section 5.3 remark that highly important pages may deserve
            more frequent revisits than their change rate alone would
            justify.
    """

    def __init__(self, use_importance: bool = False) -> None:
        self.use_importance = use_importance

    def frequencies(
        self,
        rates: Mapping[str, float],
        budget_per_day: float,
        importance: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        self._validate(rates, budget_per_day)
        urls = list(rates.keys())
        weights = None
        if self.use_importance and importance:
            # Guard against all-zero importance (e.g. before the first
            # PageRank computation) which would starve every page.
            raw = [max(0.0, importance.get(url, 0.0)) for url in urls]
            if any(weight > 0 for weight in raw):
                floor = max(raw) * 1e-3 if max(raw) > 0 else 1.0
                weights = [max(weight, floor) for weight in raw]
        values = optimal_revisit_frequencies(
            [rates[url] for url in urls], budget_per_day, weights=weights
        )
        return dict(zip(urls, values))


def build_revisit_policy(name: str, use_importance: bool = False) -> RevisitPolicy:
    """Instantiate the registered revisit policy called ``name``.

    Args:
        name: A name registered in
            :data:`repro.api.registry.REVISIT_POLICIES` (``"uniform"``,
            ``"proportional"`` and ``"optimal"`` out of the box).
        use_importance: Passed through to policies that support importance
            weighting (ignored by the others).

    Raises:
        repro.api.registry.UnknownEntryError: If ``name`` is not registered;
            the message lists the registered policy names.
    """
    return REVISIT_POLICIES.create(name, use_importance=use_importance)
