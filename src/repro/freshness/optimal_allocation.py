"""Freshness-optimal allocation of revisit frequencies (Figure 9).

Section 4 (design choice 3) argues, following [CGM99b], that the revisit
frequency of a page should *not* simply be proportional to its change
frequency: pages that change extremely often are not worth revisiting at
all, because their copy goes stale almost immediately no matter what.

Formally: pages ``i = 1..n`` change with Poisson rates ``lambda_i``; the
crawler can afford a total revisit budget ``B`` (page fetches per day,
``sum f_i = B``). Revisiting page ``i`` every ``1/f_i`` days yields
time-averaged freshness

    F(lambda, f) = (f / lambda) * (1 - exp(-lambda / f)),       f > 0
    F(lambda, 0) = 0  (for lambda > 0),   F(0, f) = 1.

``F`` is concave and increasing in ``f``, so the optimal allocation follows
from the Karush-Kuhn-Tucker conditions: there is a water level ``mu > 0``
such that each page either satisfies ``dF/df(lambda_i, f_i) = mu`` or gets
``f_i = 0`` when even the first marginal unit of bandwidth is worth less
than ``mu`` (which happens exactly when ``1/lambda_i < mu``, i.e. for pages
that change too often). Solving ``f_i(mu)`` per page and bisecting on ``mu``
to exhaust the budget gives the allocation; the resulting ``f(lambda)``
curve is the unimodal shape of Figure 9.

The same machinery supports per-page importance weights (Section 5.3 notes
the UpdateModule "may need to consult the importance of a page in deciding
on revisit frequency"): maximising ``sum w_i F(lambda_i, f_i)`` simply
replaces the marginal-value condition by ``w_i * dF/df = mu``.

The solver is vectorized: ``f_i(mu)`` is found for *all* pages at once by
array bisection, so each step of the outer water-level search is a handful
of NumPy passes instead of a 200-iteration scalar bisection per page. The
original scalar solver is retained as
:func:`optimal_revisit_frequencies_reference` for the parity suite and the
``benchmarks/bench_perf_hotpaths.py`` speedup trajectory.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

#: Rates below this threshold are treated as "never changes"; it avoids
#: numerical underflow for denormal inputs and has no practical effect (the
#: threshold corresponds to one change per ~3 billion years).
_RATE_EPSILON = 1e-12

#: Bracket bounds of the per-page frequency bisection (fetches per day).
_FREQ_LOW = 1e-12
_FREQ_CAP = 1e12

#: Iterations of each bisection; 200 halvings drive the bracket far below
#: any meaningful tolerance.
_BISECTION_ITERS = 200


def page_freshness(rate: float, frequency: float) -> float:
    """Time-averaged freshness of one page revisited ``frequency`` times/day."""
    if rate < 0 or frequency < 0:
        raise ValueError("rate and frequency must be non-negative")
    if rate <= _RATE_EPSILON:
        return 1.0
    if frequency == 0.0:
        return 0.0
    x = rate / frequency
    if x <= _RATE_EPSILON:
        return 1.0
    return -math.expm1(-x) / x


def marginal_freshness(rate: float, frequency: float) -> float:
    """Derivative of :func:`page_freshness` with respect to the frequency.

    ``dF/df = (1/lambda)(1 - exp(-lambda/f)) - exp(-lambda/f)/f``; the limit
    as ``f -> 0+`` is ``1/lambda`` and the function decreases to 0.
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if rate <= _RATE_EPSILON:
        return 0.0
    if frequency <= 0.0:
        return 1.0 / rate
    x = rate / frequency
    return (1.0 - math.exp(-x)) / rate - math.exp(-x) / frequency


def total_freshness(
    rates: Sequence[float],
    frequencies: Sequence[float],
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Weighted average freshness of a page population under an allocation.

    Args:
        rates: Per-page change rates.
        frequencies: Per-page revisit frequencies (same length as ``rates``).
        weights: Optional per-page importance weights; uniform when omitted.

    Returns:
        ``sum w_i F_i / sum w_i``.
    """
    if len(rates) != len(frequencies):
        raise ValueError("rates and frequencies must have the same length")
    if len(rates) == 0:
        return 0.0
    if weights is None:
        weights = [1.0] * len(rates)
    if len(weights) != len(rates):
        raise ValueError("weights must have the same length as rates")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    return (
        sum(w * page_freshness(r, f) for w, r, f in zip(weights, rates, frequencies))
        / total_weight
    )


def uniform_revisit_frequencies(rates: Sequence[float], budget: float) -> List[float]:
    """Every page gets the same revisit frequency (the fixed-frequency policy)."""
    _validate_budget(rates, budget)
    if len(rates) == 0:
        return []
    return [budget / len(rates)] * len(rates)


def proportional_revisit_frequencies(rates: Sequence[float], budget: float) -> List[float]:
    """Revisit frequency proportional to the change rate.

    This is the intuitive-but-suboptimal policy the paper warns about. Pages
    that never change receive no visits; if no page changes at all, the
    budget is spread uniformly.
    """
    _validate_budget(rates, budget)
    if len(rates) == 0:
        return []
    total_rate = float(sum(rates))
    if total_rate == 0.0:
        return uniform_revisit_frequencies(rates, budget)
    return [budget * float(rate) / total_rate for rate in rates]


def optimal_revisit_frequencies(
    rates: Sequence[float],
    budget: float,
    weights: Optional[Sequence[float]] = None,
    tolerance: float = 1e-9,
) -> List[float]:
    """Freshness-optimal revisit frequencies under a total budget.

    Args:
        rates: Per-page Poisson change rates (changes per day); any
            sequence or NumPy array.
        budget: Total revisit budget (page fetches per day); must be
            positive when there is at least one page.
        weights: Optional importance weights; the allocation then maximises
            the weighted freshness sum.
        tolerance: Relative tolerance of the budget bisection.

    Returns:
        Per-page revisit frequencies summing to ``budget`` (up to the
        tolerance). Pages with rate 0 always get frequency 0 (their copy is
        fresh forever); pages that change too fast relative to the budget
        may also get frequency 0, which is the Figure 9 effect.
    """
    rate_array, weight_array = _as_rate_and_weight_arrays(rates, budget, weights)
    n = rate_array.size
    if n == 0:
        return []

    changing = (rate_array > _RATE_EPSILON) & (weight_array > 0)
    if not changing.any():
        return [0.0] * n

    active_rates = rate_array[changing]
    active_weights = weight_array[changing]

    # The marginal value of the first unit of bandwidth for page i is
    # weights[i] / rates[i]; mu must lie below the largest such value for any
    # page to receive bandwidth at all.
    mu_high = float((active_weights / active_rates).max())
    mu_low = 0.0

    def allocation_for(mu: float) -> np.ndarray:
        frequencies = np.zeros(n)
        frequencies[changing] = _frequencies_for_marginal_array(
            active_rates, active_weights, mu
        )
        return frequencies

    # total is decreasing in mu: bisect for the water level that exhausts
    # the budget. As mu -> 0+ the total grows without bound, so mu_low always
    # ends up on the over-budget side and mu_high on the under-budget side.
    for _ in range(_BISECTION_ITERS):
        mu_mid = 0.5 * (mu_low + mu_high)
        if mu_mid <= 0:
            break
        total = float(allocation_for(mu_mid).sum())
        if abs(total - budget) <= tolerance * max(1.0, budget):
            mu_low = mu_high = mu_mid
            break
        if total > budget:
            mu_low = mu_mid
        else:
            mu_high = mu_mid

    frequencies = allocation_for(mu_high if mu_high > 0 else mu_low)
    leftover = budget - float(frequencies.sum())
    if leftover > tolerance * max(1.0, budget) and mu_low > 0:
        # Degenerate (but common) case: some page's marginal freshness is flat
        # at exactly the water level — its frequency jumps discontinuously as
        # mu crosses 1/rate, so bisection alone cannot hit the budget. The
        # KKT-optimal completion gives the leftover budget to exactly those
        # pages, capped at their allocation just below the water level.
        capacity = allocation_for(mu_low) - frequencies
        order = np.argsort(-capacity, kind="stable")
        caps = capacity[order]
        already_given = np.cumsum(caps) - caps
        extras = np.clip(leftover - already_given, 0.0, caps)
        frequencies[order] += extras

    # Normalise residual numerical drift so the budget is met exactly.
    total = float(frequencies.sum())
    if total > 0:
        frequencies *= budget / total
    return frequencies.tolist()


def optimal_revisit_frequencies_reference(
    rates: Sequence[float],
    budget: float,
    weights: Optional[Sequence[float]] = None,
    tolerance: float = 1e-9,
) -> List[float]:
    """Scalar-bisection implementation of :func:`optimal_revisit_frequencies`.

    Kept only for the parity suite and the perf-trajectory benchmark: it
    runs one 200-iteration bisection *per page, per water-level step*.
    """
    _validate_budget(rates, budget)
    n = len(rates)
    if n == 0:
        return []
    if weights is None:
        weights = [1.0] * n
    if len(weights) != n:
        raise ValueError("weights must have the same length as rates")
    if any(weight < 0 for weight in weights):
        raise ValueError("weights must be non-negative")

    changing = [
        index for index in range(n)
        if rates[index] > _RATE_EPSILON and weights[index] > 0
    ]
    if not changing:
        return [0.0] * n

    mu_high = max(weights[index] / rates[index] for index in changing)
    mu_low = 0.0

    def allocation_for(mu: float) -> List[float]:
        frequencies = [0.0] * n
        for index in changing:
            frequencies[index] = _frequency_for_marginal(
                rates[index], weights[index], mu
            )
        return frequencies

    def total_for(mu: float) -> float:
        return sum(allocation_for(mu))

    for _ in range(_BISECTION_ITERS):
        mu_mid = 0.5 * (mu_low + mu_high)
        if mu_mid <= 0:
            break
        total = total_for(mu_mid)
        if abs(total - budget) <= tolerance * max(1.0, budget):
            mu_low = mu_high = mu_mid
            break
        if total > budget:
            mu_low = mu_mid
        else:
            mu_high = mu_mid

    frequencies = allocation_for(mu_high if mu_high > 0 else mu_low)
    leftover = budget - sum(frequencies)
    if leftover > tolerance * max(1.0, budget) and mu_low > 0:
        generous = allocation_for(mu_low)
        jumps = sorted(
            range(n), key=lambda i: generous[i] - frequencies[i], reverse=True
        )
        for index in jumps:
            if leftover <= 0:
                break
            extra = min(leftover, generous[index] - frequencies[index])
            if extra > 0:
                frequencies[index] += extra
                leftover -= extra

    total = sum(frequencies)
    if total > 0:
        scale = budget / total
        frequencies = [frequency * scale for frequency in frequencies]
    return frequencies


def optimal_frequency_curve(
    rates: Sequence[float],
    budget: float,
    population_rates: Optional[Sequence[float]] = None,
) -> List[float]:
    """The Figure 9 curve: optimal frequency as a function of change rate.

    Args:
        rates: The change-rate values at which to evaluate the curve (the
            horizontal axis of Figure 9).
        budget: Revisit budget for the *population*.
        population_rates: The change rates of the page population that fixes
            the water level; defaults to ``rates`` themselves (one page per
            horizontal-axis point).

    Returns:
        The optimal revisit frequency for a page of each given rate, holding
        the population's water level fixed.
    """
    population = list(population_rates) if population_rates is not None else list(rates)
    allocation = optimal_revisit_frequencies(population, budget)
    # Recover the water level as the median marginal over all funded pages:
    # every funded page sits at the same water level in exact arithmetic, so
    # the median averages out the per-page bisection noise that a single
    # (arbitrary) page would contribute.
    marginals = [
        marginal_freshness(rate, frequency)
        for rate, frequency in zip(population, allocation)
        if frequency > 0 and rate > 0
    ]
    if not marginals:
        return [0.0 for _ in rates]
    mu = float(np.median(marginals))
    return [_frequency_for_marginal(rate, 1.0, mu) if rate > 0 else 0.0 for rate in rates]


# --------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------- #
def _marginal_freshness_array(rates: np.ndarray, frequencies: np.ndarray) -> np.ndarray:
    """Elementwise ``dF/df`` for positive rates and frequencies."""
    x = rates / frequencies
    decay = np.exp(-x)
    return (1.0 - decay) / rates - decay / frequencies


def _frequencies_for_marginal_array(
    rates: np.ndarray, weights: np.ndarray, mu: float
) -> np.ndarray:
    """Solve ``weight * dF/df(rate, f) = mu`` for every page at once.

    Array counterpart of :func:`_frequency_for_marginal`: pages whose first
    marginal unit of bandwidth is already worth less than ``mu`` get 0; the
    rest are solved together by array bisection with the same bracket
    growth and iteration count as the scalar reference.
    """
    if mu <= 0:
        raise ValueError("mu must be positive")
    frequencies = np.zeros(rates.size)
    funded = mu < weights / rates
    if not funded.any():
        return frequencies
    rate = rates[funded]
    target = mu / weights[funded]

    def gap_positive(freq: np.ndarray) -> np.ndarray:
        return _marginal_freshness_array(rate, freq) - target > 0

    low = np.full(rate.shape, _FREQ_LOW)
    high = np.maximum(rate, 1.0)
    growing = np.ones(rate.shape, dtype=bool)
    while True:
        need = growing & gap_positive(high)
        if not need.any():
            break
        high[need] *= 2.0
        growing &= high <= _FREQ_CAP
    for _ in range(_BISECTION_ITERS):
        mid = 0.5 * (low + high)
        if ((mid == low) | (mid == high)).all():
            # Every bracket has collapsed to adjacent floats: further
            # iterations are bit-exact no-ops, so stopping early returns
            # the same answer the full iteration count would.
            break
        above = gap_positive(mid)
        low = np.where(above, mid, low)
        high = np.where(above, high, mid)
    frequencies[funded] = 0.5 * (low + high)
    return frequencies


def _frequency_for_marginal(rate: float, weight: float, mu: float) -> float:
    """Solve ``weight * dF/df(rate, f) = mu`` for ``f`` (0 when impossible).

    ``dF/df`` decreases from ``1/rate`` (at ``f -> 0``) to 0, so a positive
    solution exists iff ``mu < weight / rate``; otherwise the page is not
    worth visiting at all.
    """
    if mu <= 0:
        raise ValueError("mu must be positive")
    if rate <= _RATE_EPSILON or weight <= 0:
        return 0.0
    if mu >= weight / rate:
        return 0.0
    target = mu / weight

    def gap(frequency: float) -> float:
        return marginal_freshness(rate, frequency) - target

    low = _FREQ_LOW
    high = max(rate, 1.0)
    while gap(high) > 0:
        high *= 2.0
        if high > _FREQ_CAP:
            break
    for _ in range(_BISECTION_ITERS):
        mid = 0.5 * (low + high)
        if mid == low or mid == high:
            # Bracket collapsed to adjacent floats; the remaining
            # iterations could not change the result.
            break
        if gap(mid) > 0:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def _as_rate_and_weight_arrays(
    rates: Sequence[float], budget: float, weights: Optional[Sequence[float]]
):
    rate_array = np.asarray(rates, dtype=float)
    if rate_array.ndim != 1:
        raise ValueError("rates must be a one-dimensional sequence")
    _validate_budget(rate_array, budget)
    if weights is None:
        weight_array = np.ones(rate_array.size)
    else:
        weight_array = np.asarray(weights, dtype=float)
        if weight_array.shape != rate_array.shape:
            raise ValueError("weights must have the same length as rates")
        if np.any(weight_array < 0):
            raise ValueError("weights must be non-negative")
    return rate_array, weight_array


def _validate_budget(rates: Sequence[float], budget: float) -> None:
    if any(rate < 0 for rate in rates):
        raise ValueError("rates must be non-negative")
    if len(rates) > 0 and budget <= 0:
        raise ValueError("budget must be positive when pages are present")
