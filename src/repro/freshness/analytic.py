"""Closed-form freshness under the Poisson change model.

These formulas generate Figures 7 and 8 and Table 2. They follow the
freshness framework of [CGM99b] ("Synchronizing a database to improve
freshness"), which the paper uses but does not re-derive "due to space
constraints"; we derive them here and cross-check them against the
discrete-event simulator in the integration tests.

Setting: every page changes according to a Poisson process with rate
``lambda`` (changes per day); the crawler re-fetches every page once per
cycle of length ``T`` days. A stored copy fetched ``x`` days ago is still
fresh with probability ``exp(-lambda * x)``.

**In-place update (steady or batch).** Each page is refreshed exactly every
``T`` days and the refreshed copy is immediately visible, so the
time-averaged freshness is

    F = (1 - exp(-lambda*T)) / (lambda*T).

Both the steady and the batch-mode crawler obtain this value, which is the
paper's observation that "their freshness averaged over time is the same, if
they visit pages at the same average speed".

**Steady crawler with shadowing.** The crawler's collection is rebuilt from
scratch over each cycle (pages fetched uniformly over ``[0, T]``); the
current collection is swapped at the end of the cycle and then serves users,
unchanged, for the next ``T`` days. Averaging the copy age over both the
fetch phase and the serving phase gives

    F = [ (1 - exp(-lambda*T)) / (lambda*T) ]^2.

**Batch crawler with shadowing.** The crawl is compressed into the first
``a`` days of the cycle (the paper uses one week of a one-month cycle);
copies are fetched uniformly over ``[0, a]``, swapped in at time ``a`` and
served for ``T`` days:

    F = [ (1 - exp(-lambda*a)) / (lambda*a) ] * [ (1 - exp(-lambda*T)) / (lambda*T) ].

With the paper's parameters (mean change interval four months, monthly
cycle, one-week batch) these give 0.88 / 0.88 / 0.78 / 0.86 for
steady-in-place / batch-in-place / steady-shadow / batch-shadow — Table 2
reports 0.88 / 0.88 / 0.77 / 0.86.

The instantaneous-freshness functions below give the trajectories plotted in
Figures 7 and 8.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


class CrawlMode(enum.Enum):
    """Batch-mode versus steady crawling (Section 4, design choice 1)."""

    STEADY = "steady"
    BATCH = "batch"


class UpdateMode(enum.Enum):
    """In-place update versus shadowing (Section 4, design choice 2)."""

    IN_PLACE = "in_place"
    SHADOW = "shadow"


@dataclass(frozen=True)
class CrawlPolicy:
    """A crawl-policy combination analysed in Section 4.

    Attributes:
        crawl_mode: Steady or batch-mode crawling.
        update_mode: In-place update or shadowing.
        cycle_days: Length of one crawl cycle (every page is re-fetched once
            per cycle).
        batch_duration_days: For a batch crawler, the active crawling window
            at the start of each cycle; ignored for steady crawlers (where
            the crawl is spread over the whole cycle).
    """

    crawl_mode: CrawlMode
    update_mode: UpdateMode
    cycle_days: float
    batch_duration_days: float = 7.0

    def __post_init__(self) -> None:
        if self.cycle_days <= 0:
            raise ValueError("cycle_days must be positive")
        if self.crawl_mode is CrawlMode.BATCH:
            if not 0 < self.batch_duration_days <= self.cycle_days:
                raise ValueError(
                    "batch_duration_days must be in (0, cycle_days] for a batch crawler"
                )

    @property
    def active_duration_days(self) -> float:
        """Days per cycle during which the crawler fetches pages."""
        if self.crawl_mode is CrawlMode.STEADY:
            return self.cycle_days
        return self.batch_duration_days

    def label(self) -> str:
        """Human-readable label, e.g. ``"steady / in-place"``."""
        crawl = self.crawl_mode.value
        update = "in-place" if self.update_mode is UpdateMode.IN_PLACE else "shadowing"
        return f"{crawl} / {update}"


# --------------------------------------------------------------------- #
# Per-page building blocks
# --------------------------------------------------------------------- #
def _effectively_static(rate: float, *spans: float) -> bool:
    """True when ``rate`` is zero or so small that ``rate * span`` underflows.

    Denormal rates (e.g. 5e-324) make products like ``lam * a`` underflow to
    exactly 0.0, which would divide by zero in the closed-form expressions;
    such a page changes once per ~1e300 days, i.e. never.
    """
    return rate == 0.0 or any(rate * span == 0.0 for span in spans)


def expected_freshness_periodic(rate: float, revisit_interval: float) -> float:
    """Time-averaged freshness of a page revisited every ``revisit_interval`` days.

    Args:
        rate: Poisson change rate (changes per day). Zero means the page
            never changes, so its copy is always fresh.
        revisit_interval: Days between successive re-fetches; ``inf`` means
            the page is never revisited.

    Returns:
        Freshness in [0, 1]: ``(1 - exp(-rate * I)) / (rate * I)``.
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if revisit_interval <= 0:
        raise ValueError("revisit_interval must be positive")
    if rate == 0.0:
        return 1.0
    if math.isinf(revisit_interval):
        return 0.0
    x = rate * revisit_interval
    if x == 0.0:
        return 1.0
    # -expm1(-x) = 1 - exp(-x) without cancellation for small x, which keeps
    # the result within [0, 1] even for near-zero rates.
    return -math.expm1(-x) / x


def expected_age_periodic(rate: float, revisit_interval: float) -> float:
    """Time-averaged age (days out of date) of a periodically revisited page.

    ``Age(t) = t - (1 - exp(-rate*t)) / rate`` at ``t`` days after a
    re-fetch; averaging over a cycle of length ``I`` gives
    ``I/2 - 1/rate + (1 - exp(-rate*I)) / (rate^2 * I)``.
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if revisit_interval <= 0:
        raise ValueError("revisit_interval must be positive")
    if rate == 0.0:
        return 0.0
    if math.isinf(revisit_interval):
        return float("inf")
    x = rate * revisit_interval
    # The closed form I*(1/2 - 1/x + (1 - e^{-x})/x^2) cancels three
    # O(1/x)-sized terms down to an O(x) result, which loses all precision
    # (and can divide by an underflowed product) for small x; switch to the
    # series I*(x/6 - x^2/24 + x^3/120 - x^4/720 + ...) there.
    if x <= 1e-2:
        return revisit_interval * x * (
            1.0 / 6.0 - x / 24.0 + x * x / 120.0 - x * x * x / 720.0
        )
    return revisit_interval * (0.5 - 1.0 / x - math.expm1(-x) / (x * x))


def expected_freshness_poisson_revisit(rate: float, revisit_rate: float) -> float:
    """Time-averaged freshness when revisits themselves are Poisson events.

    When the crawler revisits a page at exponentially distributed intervals
    with rate ``f`` (instead of a fixed period), the stationary freshness is
    ``f / (f + lambda)``. Provided for the ablation comparing scheduling
    disciplines.
    """
    if rate < 0 or revisit_rate < 0:
        raise ValueError("rates must be non-negative")
    if rate == 0.0:
        return 1.0
    if revisit_rate == 0.0:
        return 0.0
    return revisit_rate / (revisit_rate + rate)


# --------------------------------------------------------------------- #
# Time-averaged freshness of the four policy combinations
# --------------------------------------------------------------------- #
def time_averaged_freshness(policy: CrawlPolicy, rate: float) -> float:
    """Time-averaged freshness of the *current* collection for one page.

    Args:
        policy: The crawl-policy combination.
        rate: The page's Poisson change rate (changes per day).

    Returns:
        The expected freshness in [0, 1] (Table 2 entries are this value
        computed at the paper's parameters).
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if rate == 0.0:
        return 1.0
    cycle_term = expected_freshness_periodic(rate, policy.cycle_days)
    if policy.update_mode is UpdateMode.IN_PLACE:
        return cycle_term
    if policy.crawl_mode is CrawlMode.STEADY:
        return cycle_term * cycle_term
    batch_term = expected_freshness_periodic(rate, policy.batch_duration_days)
    return batch_term * cycle_term


def population_time_averaged_freshness(
    policy: CrawlPolicy, rates: Iterable[float]
) -> float:
    """Average of :func:`time_averaged_freshness` over a page population."""
    rates = list(rates)
    if not rates:
        return 0.0
    return sum(time_averaged_freshness(policy, rate) for rate in rates) / len(rates)


# --------------------------------------------------------------------- #
# Instantaneous freshness trajectories (Figures 7 and 8)
# --------------------------------------------------------------------- #
def steady_inplace_freshness_at(t: float, rate: float, cycle_days: float) -> float:
    """Instantaneous freshness of a steady, in-place crawler's collection.

    In steady state the refresh phases of the pages are uniformly spread
    over the cycle, so the expected freshness is constant in time and equals
    the time average — the flat curve of Figure 7(b).
    """
    if t < 0:
        raise ValueError("t must be non-negative")
    return expected_freshness_periodic(rate, cycle_days)


def batch_inplace_freshness_at(
    t: float, rate: float, cycle_days: float, batch_duration_days: float
) -> float:
    """Instantaneous freshness of a batch-mode, in-place crawler's collection.

    During the crawling window freshness climbs as pages are re-fetched;
    during the idle remainder of the cycle it decays exponentially — the
    saw-tooth of Figure 7(a).
    """
    _validate_batch(cycle_days, batch_duration_days)
    if t < 0:
        raise ValueError("t must be non-negative")
    if _effectively_static(rate, batch_duration_days):
        return 1.0
    a = batch_duration_days
    big_t = cycle_days
    tau = t % big_t
    m = min(tau, a)
    lam = rate
    # All exponents are kept non-positive to avoid overflow for high rates:
    # e^{-lam*tau}(e^{lam*m}-1) == e^{-lam*(tau-m)} - e^{-lam*tau}, etc.
    refreshed = math.exp(-lam * (tau - m)) - math.exp(-lam * tau)
    stale = math.exp(-lam * (tau + big_t - a)) - math.exp(-lam * (tau + big_t - m))
    return _clamp_freshness((refreshed + stale) / (lam * a))


def steady_shadow_freshness_at(
    t: float, rate: float, cycle_days: float, collection: str = "current"
) -> float:
    """Instantaneous freshness of a steady crawler that shadows its collection.

    Args:
        t: Virtual time (days) since the start of a cycle boundary.
        rate: Page change rate.
        cycle_days: Cycle length; the current collection is swapped at each
            cycle boundary.
        collection: ``"current"`` for the user-visible collection (bottom
            curve of Figure 8(a)) or ``"crawler"`` for the shadow collection
            being built (top curve).
    """
    _validate_collection(collection)
    if t < 0:
        raise ValueError("t must be non-negative")
    if _effectively_static(rate, cycle_days):
        return 1.0 if collection == "current" else min(1.0, (t % cycle_days) / cycle_days)
    lam = rate
    big_t = cycle_days
    tau = t % big_t
    if collection == "crawler":
        return _clamp_freshness(-math.expm1(-lam * tau) / (lam * big_t))
    return _clamp_freshness(
        math.exp(-lam * tau) * -math.expm1(-lam * big_t) / (lam * big_t)
    )


def batch_shadow_freshness_at(
    t: float,
    rate: float,
    cycle_days: float,
    batch_duration_days: float,
    collection: str = "current",
) -> float:
    """Instantaneous freshness of a batch crawler that shadows its collection.

    The shadow collection grows from zero during the crawl window; the
    current collection is replaced when the crawl finishes (at phase ``a``)
    and then decays for a full cycle — Figure 8(b).
    """
    _validate_batch(cycle_days, batch_duration_days)
    _validate_collection(collection)
    if t < 0:
        raise ValueError("t must be non-negative")
    a = batch_duration_days
    big_t = cycle_days
    tau = t % big_t
    if _effectively_static(rate, batch_duration_days):
        if collection == "crawler":
            return min(1.0, tau / a)
        return 1.0
    lam = rate
    # e^{-lam*x}(e^{lam*a}-1) is evaluated as e^{-lam*(x-a)} - e^{-lam*x} so
    # that no positive exponent is ever computed (x >= a in every branch).
    if collection == "crawler":
        if tau <= a:
            return _clamp_freshness(-math.expm1(-lam * tau) / (lam * a))
        return _clamp_freshness(
            (math.exp(-lam * (tau - a)) - math.exp(-lam * tau)) / (lam * a)
        )
    if tau >= a:
        return _clamp_freshness(
            (math.exp(-lam * (tau - a)) - math.exp(-lam * tau)) / (lam * a)
        )
    return _clamp_freshness(
        (math.exp(-lam * (tau + big_t - a)) - math.exp(-lam * (tau + big_t))) / (lam * a)
    )


def freshness_at(
    policy: CrawlPolicy, t: float, rate: float, collection: str = "current"
) -> float:
    """Instantaneous freshness under ``policy`` at time ``t`` for one page.

    Dispatches to the four trajectory functions above. For in-place policies
    the ``collection`` argument is ignored (there is only one collection).
    """
    if policy.update_mode is UpdateMode.IN_PLACE:
        if policy.crawl_mode is CrawlMode.STEADY:
            return steady_inplace_freshness_at(t, rate, policy.cycle_days)
        return batch_inplace_freshness_at(
            t, rate, policy.cycle_days, policy.batch_duration_days
        )
    if policy.crawl_mode is CrawlMode.STEADY:
        return steady_shadow_freshness_at(t, rate, policy.cycle_days, collection)
    return batch_shadow_freshness_at(
        t, rate, policy.cycle_days, policy.batch_duration_days, collection
    )


def freshness_trajectory(
    policy: CrawlPolicy,
    rate: float,
    duration_days: float,
    n_points: int = 200,
    collection: str = "current",
) -> Tuple[List[float], List[float]]:
    """Sampled freshness trajectory under ``policy`` (Figures 7 and 8).

    Args:
        policy: The crawl-policy combination.
        rate: Page change rate.
        duration_days: Length of the plotted time axis.
        n_points: Number of evenly spaced samples.
        collection: ``"current"`` or ``"crawler"`` (shadowing policies only).

    Returns:
        ``(times, freshness_values)`` lists of equal length.
    """
    if duration_days <= 0:
        raise ValueError("duration_days must be positive")
    if n_points < 2:
        raise ValueError("n_points must be at least 2")
    times = [duration_days * i / (n_points - 1) for i in range(n_points)]
    values = [freshness_at(policy, t, rate, collection) for t in times]
    return times, values


def _clamp_freshness(value: float) -> float:
    """Clamp a freshness value to [0, 1] (guards against rounding noise)."""
    return min(1.0, max(0.0, value))


def _validate_batch(cycle_days: float, batch_duration_days: float) -> None:
    if cycle_days <= 0:
        raise ValueError("cycle_days must be positive")
    if not 0 < batch_duration_days <= cycle_days:
        raise ValueError("batch_duration_days must be in (0, cycle_days]")


def _validate_collection(collection: str) -> None:
    if collection not in ("current", "crawler"):
        raise ValueError('collection must be "current" or "crawler"')
