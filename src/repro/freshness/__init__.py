"""Freshness and age models (Section 4, Figures 7-9, Table 2).

The paper evaluates crawl-policy choices with the *freshness* metric of
[CGM99b]: the fraction of pages in the local collection whose stored copy
equals the live page. This package provides

* empirical freshness/age of a collection against the simulated-web oracle
  (:mod:`repro.freshness.metrics`);
* closed-form freshness/age under the Poisson change model for the four
  policy combinations — steady/batch crossed with in-place/shadowing —
  both time-averaged values and instantaneous trajectories
  (:mod:`repro.freshness.analytic`), which generate Figures 7 and 8 and
  Table 2;
* the freshness-optimal allocation of revisit frequencies under a bandwidth
  constraint (:mod:`repro.freshness.optimal_allocation`), which generates
  the Figure 9 curve and the 10-23% improvement claim;
* revisit policies (uniform, proportional, optimal) that the UpdateModule
  can plug in (:mod:`repro.freshness.policies`).
"""

from repro.freshness.metrics import (
    collection_age,
    collection_age_reference,
    collection_freshness,
    collection_freshness_reference,
    measure_collection,
    time_average,
)
from repro.freshness.analytic import (
    CrawlMode,
    CrawlPolicy,
    UpdateMode,
    batch_inplace_freshness_at,
    batch_shadow_freshness_at,
    expected_age_periodic,
    expected_freshness_periodic,
    expected_freshness_poisson_revisit,
    freshness_trajectory,
    steady_inplace_freshness_at,
    steady_shadow_freshness_at,
    time_averaged_freshness,
)
from repro.freshness.optimal_allocation import (
    optimal_frequency_curve,
    optimal_revisit_frequencies,
    optimal_revisit_frequencies_reference,
    proportional_revisit_frequencies,
    total_freshness,
    uniform_revisit_frequencies,
)
from repro.freshness.policies import (
    OptimalRevisitPolicy,
    ProportionalRevisitPolicy,
    RevisitPolicy,
    UniformRevisitPolicy,
)

__all__ = [
    "collection_freshness",
    "collection_age",
    "measure_collection",
    "time_average",
    "CrawlMode",
    "UpdateMode",
    "CrawlPolicy",
    "expected_freshness_periodic",
    "expected_age_periodic",
    "expected_freshness_poisson_revisit",
    "time_averaged_freshness",
    "freshness_trajectory",
    "steady_inplace_freshness_at",
    "batch_inplace_freshness_at",
    "steady_shadow_freshness_at",
    "batch_shadow_freshness_at",
    "optimal_revisit_frequencies",
    "optimal_revisit_frequencies_reference",
    "optimal_frequency_curve",
    "collection_freshness_reference",
    "collection_age_reference",
    "uniform_revisit_frequencies",
    "proportional_revisit_frequencies",
    "total_freshness",
    "RevisitPolicy",
    "UniformRevisitPolicy",
    "ProportionalRevisitPolicy",
    "OptimalRevisitPolicy",
]
