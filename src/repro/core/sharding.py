"""Site-affine sharding of the crawl: partitioner, shard views, shard engine.

The paper's architecture (Section 5.2) is explicitly built to crawl at
scale with *multiple* crawl processes. This module provides the pieces that
let one logical crawl decompose into independent, site-affine shards:

* :class:`SitePartitioner` — a deterministic, seed-independent mapping from
  site id to shard index. Partitioning by *site* (never by URL) means every
  page of a site lands on one shard, so the :class:`~repro.fetch.politeness.
  PolitenessPolicy` per-site last-request state never crosses a shard
  boundary and each shard can resolve its politeness delays locally.
* :class:`ShardView` — one shard's slice of the crawl problem: the sites it
  owns, the seed URLs it starts from, and its share of the collection
  capacity and crawl budget.
* :class:`ShardEngine` — the batched tick-window loop, extracted from
  ``IncrementalCrawler._run_batched`` so the same code drives both the
  single-process crawler and every worker of a
  :class:`~repro.core.sharded_crawler.ShardedCrawler`. The loop is moved,
  not rewritten: every float addition, sequence claim and tie-break is the
  one the monolithic engine performed, which is what keeps the single-shard
  configuration bit-identical to the pre-shard crawler.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.simulation.events import StreamScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ranking_module import RankingModule
    from repro.core.update_module import UpdateModule
    from repro.simulation.freshness_tracker import FreshnessTracker
    from repro.simweb.web import SimulatedWeb
    from repro.storage.checkpoint import CrawlCheckpointer


class SitePartitioner:
    """Deterministic site -> shard assignment.

    The mapping hashes the site id with BLAKE2b (never Python's builtin
    ``hash``, which is salted per process: two workers must agree on the
    assignment without coordination). It is therefore:

    * **total** — every site id maps to a shard in ``[0, n_shards)``;
    * **deterministic** — the same site id always maps to the same shard,
      across processes, hash seeds and platforms;
    * **site-affine** — URLs are assigned through their owning site, so all
      pages of one site share a shard by construction;
    * **insertion-order independent** — the assignment is a pure function
      of the site id string.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.n_shards = n_shards

    def shard_of(self, site_id: str) -> int:
        """The shard index owning ``site_id``."""
        if self.n_shards == 1:
            return 0
        digest = hashlib.blake2b(site_id.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.n_shards

    def assign(self, site_ids: Sequence[str]) -> Dict[str, int]:
        """Bulk :meth:`shard_of` over many site ids."""
        return {site_id: self.shard_of(site_id) for site_id in site_ids}


@dataclass(frozen=True)
class ShardView:
    """One shard's slice of a crawl: owned sites, seeds, capacity, budget.

    Attributes:
        index: This shard's index in ``[0, n_shards)``.
        n_shards: Total number of shards in the partition.
        site_ids: Site ids owned by this shard, in web registration order.
        seed_urls: Seed URLs owned by this shard, in seed order.
        capacity: This shard's slice of the collection capacity.
        budget_per_day: This shard's slice of the crawl budget.
    """

    index: int
    n_shards: int
    site_ids: Tuple[str, ...]
    seed_urls: Tuple[str, ...]
    capacity: int
    budget_per_day: float

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.n_shards:
            raise ValueError("shard index must be in [0, n_shards)")
        if self.capacity < 1:
            raise ValueError("shard capacity must be at least 1")
        if self.budget_per_day <= 0:
            raise ValueError("shard budget must be positive")
        # Frozen-dataclass-compatible cache of the membership set.
        object.__setattr__(self, "_site_set", frozenset(self.site_ids))

    @property
    def is_total(self) -> bool:
        """Whether this view covers the whole URL space (single shard)."""
        return self.n_shards == 1

    def owns_site(self, site_id: str) -> bool:
        """Whether ``site_id`` belongs to this shard."""
        return site_id in self._site_set  # type: ignore[attr-defined]

    @staticmethod
    def split(
        web: "SimulatedWeb",
        n_shards: int,
        *,
        capacity: int,
        budget_per_day: float,
        seed_urls: Optional[Sequence[str]] = None,
    ) -> List["ShardView"]:
        """Partition a web's crawl problem into site-affine shard views.

        Sites are assigned by :class:`SitePartitioner`; capacity is split by
        largest remainder over per-shard *page* counts (every non-empty
        shard gets at least one slot) and the budget proportionally to page
        counts. Shards that own no sites are dropped — the returned list
        holds only non-empty shards, in shard-index order. With
        ``n_shards=1`` the single view carries the capacity, budget and
        seed list through unchanged.

        Args:
            web: The web being crawled.
            n_shards: Number of shards to partition into.
            capacity: Total collection capacity to split.
            budget_per_day: Total crawl budget to split.
            seed_urls: Seed URLs (defaults to every site root). Every seed
                must be a URL the web knows, so it can be routed to the
                shard owning its site.

        Returns:
            Non-empty :class:`ShardView` objects in shard-index order.
        """
        partitioner = SitePartitioner(n_shards)
        seeds = list(seed_urls) if seed_urls is not None else web.seed_urls()
        if n_shards == 1:
            all_sites = tuple(site.site_id for site in web.sites)
            return [
                ShardView(
                    index=0,
                    n_shards=1,
                    site_ids=all_sites,
                    seed_urls=tuple(seeds),
                    capacity=capacity,
                    budget_per_day=budget_per_day,
                )
            ]

        shard_sites: Dict[int, List[str]] = {k: [] for k in range(n_shards)}
        shard_pages = [0] * n_shards
        for site in web.sites:
            shard = partitioner.shard_of(site.site_id)
            shard_sites[shard].append(site.site_id)
            shard_pages[shard] += len(site.all_pages)
        shard_seeds: Dict[int, List[str]] = {k: [] for k in range(n_shards)}
        for url in seeds:
            if url not in web:
                raise ValueError(
                    f"seed URL {url!r} is not in the web and cannot be routed "
                    "to a shard (site-affine sharding needs the owning site)"
                )
            shard_seeds[partitioner.shard_of(web.page(url).site_id)].append(url)

        occupied = [k for k in range(n_shards) if shard_sites[k]]
        if not occupied:
            raise ValueError("the web has no sites to shard")
        if capacity < len(occupied):
            raise ValueError(
                f"collection capacity {capacity} cannot give each of the "
                f"{len(occupied)} non-empty shards at least one slot; lower "
                "the shard count or raise the capacity"
            )
        total_pages = sum(shard_pages[k] for k in occupied)
        capacities = _largest_remainder_split(
            capacity, [shard_pages[k] for k in occupied], minimum=1
        )
        views: List[ShardView] = []
        for slot, shard in enumerate(occupied):
            views.append(
                ShardView(
                    index=shard,
                    n_shards=n_shards,
                    site_ids=tuple(shard_sites[shard]),
                    seed_urls=tuple(shard_seeds[shard]),
                    capacity=capacities[slot],
                    budget_per_day=budget_per_day * shard_pages[shard] / total_pages,
                )
            )
        return views


def _largest_remainder_split(
    total: int, weights: Sequence[int], minimum: int = 0
) -> List[int]:
    """Split integer ``total`` proportionally to ``weights``, deterministically.

    Uses the largest-remainder method with ties broken by position, then
    tops up entries below ``minimum`` by taking slots from the largest
    allocations (again position-deterministic).
    """
    n = len(weights)
    weight_sum = sum(weights)
    if weight_sum <= 0:
        raise ValueError("weights must sum to a positive value")
    quotas = [total * w / weight_sum for w in weights]
    shares = [int(q) for q in quotas]
    remainder = total - sum(shares)
    by_fraction = sorted(
        range(n), key=lambda i: (shares[i] - quotas[i], i)
    )  # most negative fractional loss first
    for i in by_fraction[:remainder]:
        shares[i] += 1
    # Enforce the per-entry minimum by pulling from the largest shares.
    for i in range(n):
        while shares[i] < minimum:
            donor = max(range(n), key=lambda j: (shares[j], -j))
            if shares[donor] <= minimum:
                raise ValueError("total is too small for the per-entry minimum")
            shares[donor] -= 1
            shares[i] += 1
    return shares


class ShardEngine:
    """The batched tick-window loop, runnable for one shard or the whole web.

    This is ``IncrementalCrawler._run_batched``'s loop body, extracted so a
    :class:`~repro.core.sharded_crawler.ShardedCrawler` worker drives the
    exact same code over its :class:`ShardView`. The :class:`StreamScheduler`
    carries the three recurring streams with the reference engine's exact
    ``(time, sequence)`` ordering. When a crawl event pops, every follow-up
    crawl slot that would have run before the next ranking/measurement event
    is folded into one ``process_slots`` call; each folded slot claims the
    sequence number its per-event counterpart would have consumed, so every
    tie-break — now and later in the run — resolves identically. Slot times
    are accumulated with the same float additions the reference engine
    performs, keeping fetch timestamps bit-identical.

    Checkpoints are taken at the top of the loop, *before* the head event
    pops: the snapshot reads state only (no sequence numbers are consumed,
    no float is recomputed), so a checkpointed run is the same run — and a
    resume restores the scheduler with the head event still pending,
    replaying it exactly as the uninterrupted run would have.

    Args:
        update_module: The shard's :class:`~repro.core.update_module.UpdateModule`.
        ranking_module: The shard's :class:`~repro.core.ranking_module.RankingModule`.
        crawl_budget_per_day: Crawl-slot rate (slots per virtual day).
        ranking_interval_days: Refinement-scan cadence.
        measurement_interval_days: Freshness-sampling cadence.
        track_quality: Whether measurement events also sample quality.
        sample_quality: Callback invoked with the measurement instant when
            ``track_quality`` is set.
        refresh_journal: Callback invoked after each ranking scan (mirrors
            rewritten records into the journal, when one is attached).
        on_measure: Optional hook invoked after every measurement event with
            ``(at, freshness, quality)`` — the shard coordinator uses it to
            stream per-window results over its queue. ``quality`` is ``None``
            when quality tracking is off.
        view: Optional :class:`ShardView` this engine operates on (``None``
            for the monolithic crawler); carried for introspection and
            progress labels, never consulted by the loop itself.
    """

    def __init__(
        self,
        *,
        update_module: "UpdateModule",
        ranking_module: "RankingModule",
        crawl_budget_per_day: float,
        ranking_interval_days: float,
        measurement_interval_days: float,
        track_quality: bool,
        sample_quality: Optional[Callable[[float], Optional[float]]] = None,
        refresh_journal: Optional[Callable[[], None]] = None,
        on_measure: Optional[Callable[[float, float, Optional[float]], None]] = None,
        view: Optional[ShardView] = None,
    ) -> None:
        if crawl_budget_per_day <= 0:
            raise ValueError("crawl_budget_per_day must be positive")
        self._update_module = update_module
        self._ranking_module = ranking_module
        self._crawl_budget_per_day = crawl_budget_per_day
        self._ranking_interval_days = ranking_interval_days
        self._measurement_interval_days = measurement_interval_days
        self._track_quality = track_quality
        self._sample_quality = sample_quality
        self._refresh_journal = refresh_journal
        self.on_measure = on_measure
        self.view = view

    def run(
        self,
        start_time: float,
        end_time: float,
        tracker: "FreshnessTracker",
        *,
        checkpointer: Optional["CrawlCheckpointer"] = None,
        scheduler: Optional[StreamScheduler] = None,
        snapshot: Optional[Callable[[float, StreamScheduler], dict]] = None,
    ) -> None:
        """Drive the tick-window loop from ``start_time`` to ``end_time``.

        Args:
            start_time: Virtual time the run starts (used only to seed the
                scheduler when none is passed).
            end_time: Virtual time past which no event executes.
            tracker: Freshness tracker sampled at measurement events.
            checkpointer: Optional checkpointer; offered a save opportunity
                at the top of every loop iteration.
            scheduler: A restored scheduler (resume); ``None`` starts all
                three streams at ``start_time``.
            snapshot: Callable assembling the checkpoint state dict, invoked
                as ``snapshot(at, scheduler)``; required when
                ``checkpointer`` is given.
        """
        if checkpointer is not None and snapshot is None:
            raise ValueError("a checkpointer needs a snapshot callable")
        if scheduler is None:
            scheduler = StreamScheduler()
            scheduler.schedule(start_time, "crawl")
            scheduler.schedule(start_time, "ranking")
            scheduler.schedule(start_time, "measure")
        crawl_period = 1.0 / self._crawl_budget_per_day
        epsilon = 1e-12

        while True:
            head = scheduler.peek()
            if head is None or head[0] > end_time + epsilon:
                break
            if checkpointer is not None and checkpointer.due(head[0]):
                checkpointer.save(snapshot(head[0], scheduler), head[0])
            at, _sequence, label = scheduler.pop()
            if label == "crawl":
                # Fold every crawl slot that precedes the next other-stream
                # event into one batch. The other streams cannot move while
                # only crawl slots run, so their head is read once; each
                # folded slot still consumes the sequence number its
                # per-event counterpart would have, keeping all later
                # tie-breaks identical. Slot times accumulate with the same
                # float additions the reference engine performs.
                slots = [at]
                append = slots.append
                next_time = at + crawl_period
                other = scheduler.peek()
                if other is None:
                    other_time, other_sequence = float("inf"), 0
                else:
                    other_time, other_sequence = other[0], other[1]
                base_sequence = scheduler.next_sequence
                claimed = 0
                limit = end_time + epsilon
                while next_time <= limit:
                    if next_time > other_time or (
                        next_time == other_time
                        and other_sequence < base_sequence + claimed
                    ):
                        break
                    append(next_time)
                    claimed += 1
                    next_time += crawl_period
                scheduler.claim_sequences(claimed)
                scheduler.schedule(next_time, "crawl")
                self._update_module.process_slots(slots)
            elif label == "ranking":
                refinement = self._ranking_module.refine(at)
                self._update_module.set_importance(refinement.importance)
                if self._refresh_journal is not None:
                    self._refresh_journal()
                scheduler.schedule(at + self._ranking_interval_days, "ranking")
            else:
                freshness = tracker.sample(at)
                quality = None
                if self._track_quality and self._sample_quality is not None:
                    quality = self._sample_quality(at)
                if self.on_measure is not None:
                    self.on_measure(at, freshness, quality)
                scheduler.schedule(
                    at + self._measurement_interval_days, "measure"
                )
