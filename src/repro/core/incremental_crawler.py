"""The incremental crawler: steady, in-place, variable-frequency.

This class wires the Figure 12 architecture together on a virtual clock and
event queue:

* a recurring *crawl* event pops the next URL from CollUrls and processes it
  through the UpdateModule (which calls the CrawlModule); the event period
  is the reciprocal of the crawl budget, which makes the crawler *steady* —
  pages are fetched at a constant, low peak rate;
* a recurring *refinement* event runs the RankingModule scan, which
  recomputes importance and replaces less important pages with more
  important discoveries — deliberately far less often than the crawl event,
  reflecting the paper's point that separating the update decision from the
  (expensive) refinement decision is crucial for performance;
* a recurring *measurement* event samples freshness (and optionally
  quality) of the collection against the simulated-web oracle.

The collection is updated in place, so newly fetched copies are visible to
users immediately — the left-hand column of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.registry import REVISIT_POLICIES
from repro.core.allurls import AllUrls
from repro.core.collurls import CollUrls
from repro.core.crawl_module import CrawlModule
from repro.core.quality import collection_quality, true_page_importance
from repro.core.ranking_module import RankingModule, RankingModuleConfig
from repro.core.update_module import UpdateModule, UpdateModuleConfig
from repro.fetch.fetcher import SimulatedFetcher
from repro.fetch.politeness import PolitenessPolicy
from repro.freshness.policies import RevisitPolicy, build_revisit_policy
from repro.simulation.clock import VirtualClock
from repro.simulation.events import EventQueue
from repro.simulation.freshness_tracker import FreshnessTimeSeries, FreshnessTracker
from repro.simweb.web import SimulatedWeb
from repro.storage.collection import InPlaceCollection


@dataclass(frozen=True)
class IncrementalCrawlerConfig:
    """Configuration of the incremental crawler.

    Attributes:
        collection_capacity: Target number of pages in the collection.
        crawl_budget_per_day: Pages fetched per virtual day.
        revisit_policy: Name of a registered revisit policy (``"uniform"``,
            ``"proportional"`` or ``"optimal"`` out of the box); resolved
            through :data:`repro.api.registry.REVISIT_POLICIES`.
        estimator: Name of a registered change-frequency estimator (``"ep"``
            or ``"eb"`` out of the box); resolved through
            :data:`repro.api.registry.ESTIMATORS`.
        importance_metric: ``"pagerank"`` or ``"hits"``.
        ranking_interval_days: How often the RankingModule scan runs.
        reallocation_interval_days: How often revisit intervals are
            recomputed from the latest rate estimates.
        use_importance_in_scheduling: Let the revisit policy weight pages by
            importance.
        measurement_interval_days: How often freshness is sampled.
        default_revisit_interval_days: Revisit interval for pages without a
            change history yet.
        track_quality: Also sample collection quality (needs a ground-truth
            PageRank over the whole web, computed once at start-up).
        use_politeness: Apply the per-site politeness delay to fetches.
    """

    collection_capacity: int = 500
    crawl_budget_per_day: float = 2000.0
    revisit_policy: str = "optimal"
    estimator: str = "ep"
    importance_metric: str = "pagerank"
    ranking_interval_days: float = 5.0
    reallocation_interval_days: float = 1.0
    use_importance_in_scheduling: bool = False
    measurement_interval_days: float = 0.5
    default_revisit_interval_days: float = 7.0
    track_quality: bool = True
    use_politeness: bool = False

    def __post_init__(self) -> None:
        if self.collection_capacity < 1:
            raise ValueError("collection_capacity must be at least 1")
        if self.crawl_budget_per_day <= 0:
            raise ValueError("crawl_budget_per_day must be positive")
        REVISIT_POLICIES.validate(self.revisit_policy)
        if self.ranking_interval_days <= 0:
            raise ValueError("ranking_interval_days must be positive")
        if self.measurement_interval_days <= 0:
            raise ValueError("measurement_interval_days must be positive")

    def build_revisit_policy(self) -> RevisitPolicy:
        """Instantiate the configured revisit policy through the registry."""
        return build_revisit_policy(
            self.revisit_policy, use_importance=self.use_importance_in_scheduling
        )


@dataclass
class CrawlRunResult:
    """Outcome of a crawler run.

    Attributes:
        freshness: Sampled freshness time series of the current collection.
        quality: Sampled collection-quality time series (empty when quality
            tracking is disabled).
        pages_crawled: Total successful fetches.
        pages_failed: Fetches of pages that had disappeared (or were
            excluded).
        changes_detected: Re-fetches whose checksum differed.
        pages_replaced: Collection pages displaced by the refinement
            decision.
        duration_days: Length of the run.
    """

    freshness: FreshnessTimeSeries
    quality: List[float] = field(default_factory=list)
    quality_times: List[float] = field(default_factory=list)
    pages_crawled: int = 0
    pages_failed: int = 0
    changes_detected: int = 0
    pages_replaced: int = 0
    duration_days: float = 0.0

    def mean_freshness(self) -> float:
        """Time-averaged freshness over the run."""
        return self.freshness.mean_freshness()

    def final_quality(self) -> float:
        """Last sampled collection quality (0 when not tracked)."""
        return self.quality[-1] if self.quality else 0.0


class IncrementalCrawler:
    """The incremental crawler of Section 5, runnable against a synthetic web.

    Args:
        web: The synthetic web to crawl.
        config: Crawler configuration.
        seed_urls: Starting URLs; defaults to every site's root page.
    """

    def __init__(
        self,
        web: SimulatedWeb,
        config: Optional[IncrementalCrawlerConfig] = None,
        seed_urls: Optional[Sequence[str]] = None,
    ) -> None:
        self._web = web
        self._config = config if config is not None else IncrementalCrawlerConfig()
        self._seeds = list(seed_urls) if seed_urls is not None else web.seed_urls()
        if not self._seeds:
            raise ValueError("the crawler needs at least one seed URL")

        politeness = PolitenessPolicy() if self._config.use_politeness else None
        self._fetcher = SimulatedFetcher(web, politeness=politeness)
        self._collection = InPlaceCollection(capacity=self._config.collection_capacity)
        self._allurls = AllUrls()
        self._collurls = CollUrls()
        self._crawl_module = CrawlModule(self._fetcher, self._collection, self._allurls)
        self._update_module = UpdateModule(
            self._collurls,
            self._crawl_module,
            UpdateModuleConfig(
                crawl_budget_per_day=self._config.crawl_budget_per_day,
                estimator=self._config.estimator,
                default_interval_days=self._config.default_revisit_interval_days,
                reallocation_interval_days=self._config.reallocation_interval_days,
                use_importance=self._config.use_importance_in_scheduling,
            ),
            revisit_policy=self._config.build_revisit_policy(),
        )
        self._ranking_module = RankingModule(
            self._allurls,
            self._collurls,
            self._collection,
            self._crawl_module,
            RankingModuleConfig(importance_metric=self._config.importance_metric),
            capacity=self._config.collection_capacity,
        )
        self._true_importance: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------ #
    # Accessors (useful for tests and examples)
    # ------------------------------------------------------------------ #
    @property
    def collection(self) -> InPlaceCollection:
        """The crawler's collection."""
        return self._collection

    @property
    def allurls(self) -> AllUrls:
        """The discovered-URL registry."""
        return self._allurls

    @property
    def collurls(self) -> CollUrls:
        """The collection URL priority queue."""
        return self._collurls

    @property
    def update_module(self) -> UpdateModule:
        """The UpdateModule (exposes per-page rate estimates)."""
        return self._update_module

    @property
    def ranking_module(self) -> RankingModule:
        """The RankingModule (exposes refinement statistics)."""
        return self._ranking_module

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(self, duration_days: float, start_time: float = 0.0) -> CrawlRunResult:
        """Run the crawler for ``duration_days`` of virtual time.

        Args:
            duration_days: How long to run.
            start_time: Virtual time at which the run starts.

        Returns:
            A :class:`CrawlRunResult` with freshness/quality series and
            counters.
        """
        if duration_days <= 0:
            raise ValueError("duration_days must be positive")
        end_time = min(start_time + duration_days, self._web.horizon_days)

        clock = VirtualClock(start_time)
        queue = EventQueue(clock)
        tracker = FreshnessTracker(
            self._web,
            self._collection,
            denominator=self._config.collection_capacity,
        )
        result = CrawlRunResult(freshness=tracker.series, duration_days=duration_days)

        self._bootstrap(start_time)

        crawl_period = 1.0 / self._config.crawl_budget_per_day

        def crawl_step(at: float) -> None:
            self._update_module.process_next(at)
            queue.schedule(at + crawl_period, crawl_step, label="crawl")

        def ranking_step(at: float) -> None:
            refinement = self._ranking_module.refine(at)
            self._update_module.set_importance(refinement.importance)
            queue.schedule(
                at + self._config.ranking_interval_days, ranking_step, label="ranking"
            )

        def measure_step(at: float) -> None:
            tracker.sample(at)
            if self._config.track_quality:
                self._sample_quality(result, at)
            queue.schedule(
                at + self._config.measurement_interval_days, measure_step, label="measure"
            )

        queue.schedule(start_time, crawl_step, label="crawl")
        queue.schedule(start_time, ranking_step, label="ranking")
        queue.schedule(start_time, measure_step, label="measure")
        queue.run_until(end_time)

        result.pages_crawled = self._crawl_module.pages_fetched
        result.pages_failed = self._crawl_module.pages_failed
        result.changes_detected = self._update_module.changes_detected
        result.pages_replaced = self._ranking_module.pages_replaced
        return result

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _bootstrap(self, start_time: float) -> None:
        """Seed AllUrls and CollUrls with the configured seed URLs."""
        for offset, url in enumerate(self._seeds):
            self._allurls.add(url, discovered_at=start_time)
            if url not in self._collurls:
                # Spread the seeds over the first crawl steps.
                self._collurls.schedule(url, start_time + offset * 1e-6)

    def _sample_quality(self, result: CrawlRunResult, at: float) -> None:
        if self._true_importance is None:
            self._true_importance = true_page_importance(self._web)
        urls = [record.url for record in self._collection.current_records()]
        quality = collection_quality(
            urls, self._true_importance, capacity=self._config.collection_capacity
        )
        result.quality.append(quality)
        result.quality_times.append(at)
