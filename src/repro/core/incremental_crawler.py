"""The incremental crawler: steady, in-place, variable-frequency.

This class wires the Figure 12 architecture together on a virtual clock and
event queue:

* a recurring *crawl* event pops the next URL from CollUrls and processes it
  through the UpdateModule (which calls the CrawlModule); the event period
  is the reciprocal of the crawl budget, which makes the crawler *steady* —
  pages are fetched at a constant, low peak rate;
* a recurring *refinement* event runs the RankingModule scan, which
  recomputes importance and replaces less important pages with more
  important discoveries — deliberately far less often than the crawl event,
  reflecting the paper's point that separating the update decision from the
  (expensive) refinement decision is crucial for performance;
* a recurring *measurement* event samples freshness (and optionally
  quality) of the collection against the simulated-web oracle.

The collection is updated in place, so newly fetched copies are visible to
users immediately — the left-hand column of Figure 10.

Two execution engines drive the same architecture:

* the **batched** engine (default) advances the run in *tick windows*
  bounded by the next ranking/measurement event and drains all crawl slots
  of a window through :meth:`UpdateModule.process_slots` — batched oracle
  fetches, vectorized change detection, one bulk reschedule — while
  replicating the event queue's ``(time, sequence)`` ordering exactly;
* the **reference** engine processes one event per fetched page, exactly
  as Figure 12 describes the per-URL control flow. It is pinned by the
  parity suite (``tests/test_crawler_batched_parity.py``): both engines
  produce bit-identical counters and freshness/quality series.

Politeness (the paper's 10-second per-site delay and 9PM-6AM crawl
window, Section 2.3) runs on the batched engine too: per-site delays
resolve in bulk through the politeness batch API, with per-site last-fetch
state carried across tick windows, and remain bit-identical to the
reference engine's per-fetch resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.api.registry import REVISIT_POLICIES
from repro.core.allurls import AllUrls
from repro.core.collurls import CollUrls
from repro.core.crawl_module import CrawlModule
from repro.core.quality import CollectionQualityCache
from repro.core.ranking_module import RankingModule, RankingModuleConfig
from repro.core.sharding import ShardEngine, ShardView
from repro.core.update_module import UpdateModule, UpdateModuleConfig
from repro.faults import (
    FailureTracker,
    FaultLayer,
    RetryPolicy,
    build_fault_layer,
)
from repro.fetch.fetcher import SimulatedFetcher
from repro.fetch.politeness import NightWindow, PolitenessPolicy
from repro.freshness.policies import RevisitPolicy, build_revisit_policy
from repro.simulation.clock import VirtualClock
from repro.simulation.events import EventQueue, StreamScheduler
from repro.simulation.freshness_tracker import FreshnessTimeSeries, FreshnessTracker
from repro.simweb.web import SimulatedWeb
from repro.storage.checkpoint import (
    CHECKPOINT_FORMAT,
    CollectionJournal,
    CrawlCheckpointer,
)
from repro.storage.collection import InPlaceCollection
from repro.storage.records import record_from_dict, record_to_dict

#: Engines :meth:`IncrementalCrawler.run` can execute with.
CRAWL_ENGINES: Tuple[str, ...] = ("batched", "reference")


@dataclass(frozen=True)
class IncrementalCrawlerConfig:
    """Configuration of the incremental crawler.

    Attributes:
        collection_capacity: Target number of pages in the collection.
        crawl_budget_per_day: Pages fetched per virtual day.
        revisit_policy: Name of a registered revisit policy (``"uniform"``,
            ``"proportional"`` or ``"optimal"`` out of the box); resolved
            through :data:`repro.api.registry.REVISIT_POLICIES`.
        estimator: Name of a registered change-frequency estimator (``"ep"``
            or ``"eb"`` out of the box); resolved through
            :data:`repro.api.registry.ESTIMATORS`.
        importance_metric: ``"pagerank"`` or ``"hits"``.
        ranking_interval_days: How often the RankingModule scan runs.
        reallocation_interval_days: How often revisit intervals are
            recomputed from the latest rate estimates.
        use_importance_in_scheduling: Let the revisit policy weight pages by
            importance.
        measurement_interval_days: How often freshness is sampled.
        default_revisit_interval_days: Revisit interval for pages without a
            change history yet.
        track_quality: Also sample collection quality (needs a ground-truth
            PageRank over the whole web, computed once at start-up).
        use_politeness: Apply the per-site politeness delay to fetches.
            Both engines honour it with bit-identical results; the batched
            engine resolves the delays in bulk.
        politeness_min_delay_seconds: Minimum (virtual) seconds between two
            requests to one site when politeness is on; the paper used 10.
        politeness_night_window: Also restrict fetching to a recurring
            nightly window (the paper's monitoring crawler ran 9PM-6AM).
        politeness_night_start: Start of the nightly window as a fraction
            of a day (0.875 = 9PM).
        politeness_night_duration: Length of the nightly window as a
            fraction of a day (0.375 = nine hours).
        engine: ``"batched"`` (tick-window engine, the default) or
            ``"reference"`` (one event per fetch, the pinned per-URL path).
            Both produce bit-identical results.
        fault_models: Optional fault-model stack as ``(kind, params)``
            pairs, resolved through
            :data:`repro.api.registry.FAULT_MODELS`. ``None`` (the
            default) runs the pre-fault fetch path byte for byte.
        fault_seed: Seed of the fault layer and retry jitter.
        retry: Optional :class:`repro.faults.RetryPolicy` for the
            failure-aware engine. Defaults apply when ``fault_models`` is
            set without an explicit policy; setting ``retry`` alone arms
            the failure-aware engine without injecting faults.
    """

    collection_capacity: int = 500
    crawl_budget_per_day: float = 2000.0
    revisit_policy: str = "optimal"
    estimator: str = "ep"
    importance_metric: str = "pagerank"
    ranking_interval_days: float = 5.0
    reallocation_interval_days: float = 1.0
    use_importance_in_scheduling: bool = False
    measurement_interval_days: float = 0.5
    default_revisit_interval_days: float = 7.0
    track_quality: bool = True
    use_politeness: bool = False
    politeness_min_delay_seconds: float = 10.0
    politeness_night_window: bool = False
    politeness_night_start: float = 0.875
    politeness_night_duration: float = 0.375
    engine: str = "batched"
    fault_models: Optional[Tuple[Tuple[str, dict], ...]] = None
    fault_seed: int = 0
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.collection_capacity < 1:
            raise ValueError("collection_capacity must be at least 1")
        if self.crawl_budget_per_day <= 0:
            raise ValueError("crawl_budget_per_day must be positive")
        REVISIT_POLICIES.validate(self.revisit_policy)
        if self.ranking_interval_days <= 0:
            raise ValueError("ranking_interval_days must be positive")
        if self.measurement_interval_days <= 0:
            raise ValueError("measurement_interval_days must be positive")
        if self.engine not in CRAWL_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choices: {', '.join(CRAWL_ENGINES)}"
            )
        if self.politeness_min_delay_seconds < 0:
            raise ValueError("politeness_min_delay_seconds must be non-negative")
        # Build the fault layer once so bad model names/params fail here,
        # not deep inside a run.
        self.build_fault_layer()

    def build_fault_layer(self) -> Optional[FaultLayer]:
        """Instantiate the configured fault layer (``None`` when off)."""
        if not self.fault_models:
            return None
        return build_fault_layer(self.fault_models, seed=self.fault_seed)

    def build_failure_tracker(self) -> Optional[FailureTracker]:
        """Instantiate the failure tracker (``None`` when faults/retry off).

        The tracker is armed whenever faults are injected *or* an explicit
        retry policy is configured; faults without a policy take the
        default :class:`~repro.faults.RetryPolicy`.
        """
        if not self.fault_models and self.retry is None:
            return None
        policy = self.retry if self.retry is not None else RetryPolicy()
        return FailureTracker(policy, seed=self.fault_seed)

    def build_revisit_policy(self) -> RevisitPolicy:
        """Instantiate the configured revisit policy through the registry."""
        return build_revisit_policy(
            self.revisit_policy, use_importance=self.use_importance_in_scheduling
        )

    def build_politeness(self) -> Optional[PolitenessPolicy]:
        """Instantiate the configured politeness policy (``None`` when off)."""
        if not self.use_politeness:
            return None
        window = None
        if self.politeness_night_window:
            window = NightWindow(
                start_fraction=self.politeness_night_start,
                duration_fraction=self.politeness_night_duration,
            )
        return PolitenessPolicy(
            min_delay_seconds=self.politeness_min_delay_seconds,
            night_window=window,
        )


@dataclass
class CrawlRunResult:
    """Outcome of a crawler run.

    Attributes:
        freshness: Sampled freshness time series of the current collection.
        quality: Sampled collection-quality time series (empty when quality
            tracking is disabled).
        pages_crawled: Total successful fetches.
        pages_failed: Fetches of pages that had disappeared (or were
            excluded).
        changes_detected: Re-fetches whose checksum differed.
        pages_replaced: Collection pages displaced by the refinement
            decision.
        duration_days: Length of the run.
    """

    freshness: FreshnessTimeSeries
    quality: List[float] = field(default_factory=list)
    quality_times: List[float] = field(default_factory=list)
    pages_crawled: int = 0
    pages_failed: int = 0
    changes_detected: int = 0
    pages_replaced: int = 0
    duration_days: float = 0.0

    def mean_freshness(self) -> float:
        """Time-averaged freshness over the run."""
        return self.freshness.mean_freshness()

    def final_quality(self) -> float:
        """Last sampled collection quality (0 when not tracked)."""
        return self.quality[-1] if self.quality else 0.0


class IncrementalCrawler:
    """The incremental crawler of Section 5, runnable against a synthetic web.

    Args:
        web: The synthetic web to crawl.
        config: Crawler configuration.
        seed_urls: Starting URLs; defaults to every site's root page (or,
            with a shard view, the view's seed list).
        shard_view: Optional :class:`~repro.core.sharding.ShardView`
            restricting this crawler to one site-affine shard of the URL
            space. The view supplies the default seeds, filters discovered
            links to owned sites (so the shard's AllUrls universe stays
            local), arms the politeness site-affinity guard and restricts
            the quality denominator to attainable-within-shard mass. The
            config's capacity and budget should already be the shard's
            slice (``ShardedCrawler`` passes a per-shard config). ``None``
            — the default — is the unsharded crawler, byte-for-byte the
            pre-shard behaviour.
    """

    def __init__(
        self,
        web: SimulatedWeb,
        config: Optional[IncrementalCrawlerConfig] = None,
        seed_urls: Optional[Sequence[str]] = None,
        shard_view: Optional[ShardView] = None,
    ) -> None:
        self._web = web
        self._config = config if config is not None else IncrementalCrawlerConfig()
        self._shard_view = shard_view
        if seed_urls is not None:
            self._seeds = list(seed_urls)
        elif shard_view is not None:
            self._seeds = list(shard_view.seed_urls)
        else:
            self._seeds = web.seed_urls()
        if not self._seeds:
            raise ValueError("the crawler needs at least one seed URL")

        allowed_sites = None
        link_filter = None
        if shard_view is not None and not shard_view.is_total:
            allowed_sites = frozenset(shard_view.site_ids)
            link_filter = self._owns_url
        politeness = self._config.build_politeness()
        if politeness is not None and allowed_sites is not None:
            # Site-affinity contract: per-site politeness state must never
            # cross a shard boundary, so a foreign-site request raises.
            politeness.allowed_sites = allowed_sites
        self._fetcher = SimulatedFetcher(
            web, politeness=politeness, faults=self._config.build_fault_layer()
        )
        self._collection = InPlaceCollection(capacity=self._config.collection_capacity)
        self._allurls = AllUrls()
        self._collurls = CollUrls()
        self._crawl_module = CrawlModule(
            self._fetcher, self._collection, self._allurls, link_filter=link_filter
        )
        self._failure_tracker = self._config.build_failure_tracker()
        self._update_module = UpdateModule(
            self._collurls,
            self._crawl_module,
            UpdateModuleConfig(
                crawl_budget_per_day=self._config.crawl_budget_per_day,
                estimator=self._config.estimator,
                default_interval_days=self._config.default_revisit_interval_days,
                reallocation_interval_days=self._config.reallocation_interval_days,
                use_importance=self._config.use_importance_in_scheduling,
            ),
            revisit_policy=self._config.build_revisit_policy(),
            failure_tracker=self._failure_tracker,
        )
        self._ranking_module = RankingModule(
            self._allurls,
            self._collurls,
            self._collection,
            self._crawl_module,
            RankingModuleConfig(importance_metric=self._config.importance_metric),
            capacity=self._config.collection_capacity,
        )
        self._quality_cache: Optional[CollectionQualityCache] = None
        #: Optional hook invoked after every measurement event with
        #: ``(at, freshness, quality-or-None)``; the sharded coordinator
        #: uses it to stream per-window results over its queue.
        self.on_measure = None

    def _owns_url(self, url: str) -> bool:
        """Shard link filter: keep only URLs of sites this shard owns.

        URLs the web does not know cannot be routed to a site (and could
        never be fetched successfully), so they are dropped too — each
        shard's discovered universe stays site-affine by construction.
        """
        if url not in self._web:
            return False
        return self._shard_view.owns_site(self._web.page(url).site_id)

    # ------------------------------------------------------------------ #
    # Accessors (useful for tests and examples)
    # ------------------------------------------------------------------ #
    @property
    def collection(self) -> InPlaceCollection:
        """The crawler's collection."""
        return self._collection

    @property
    def allurls(self) -> AllUrls:
        """The discovered-URL registry."""
        return self._allurls

    @property
    def collurls(self) -> CollUrls:
        """The collection URL priority queue."""
        return self._collurls

    @property
    def update_module(self) -> UpdateModule:
        """The UpdateModule (exposes per-page rate estimates)."""
        return self._update_module

    @property
    def failure_tracker(self) -> Optional[FailureTracker]:
        """The failure tracker (``None`` when faults and retry are off)."""
        return self._failure_tracker

    def failure_counters(self) -> Optional[dict]:
        """Failure counters by class (``None`` without a failure tracker)."""
        if self._failure_tracker is None:
            return None
        return dict(self._failure_tracker.counters)

    @property
    def ranking_module(self) -> RankingModule:
        """The RankingModule (exposes refinement statistics)."""
        return self._ranking_module

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(
        self,
        duration_days: float,
        start_time: float = 0.0,
        *,
        journal: Optional[CollectionJournal] = None,
        checkpointer: Optional[CrawlCheckpointer] = None,
        resume_state: Optional[dict] = None,
    ) -> CrawlRunResult:
        """Run the crawler for ``duration_days`` of virtual time.

        Dispatches to the engine named by the configuration: the batched
        tick-window engine by default, or the per-URL reference loop. Both
        engines yield bit-identical results, with or without politeness.

        Args:
            duration_days: How long to run.
            start_time: Virtual time at which the run starts.
            journal: Optional :class:`CollectionJournal` mirroring records
                and change events into a storage backend as the crawl
                proceeds (works on both engines).
            checkpointer: Optional :class:`CrawlCheckpointer` persisting
                resumable state snapshots at event boundaries (batched
                engine only — the reference engine's event queue holds
                closures, which cannot be serialized).
            resume_state: A checkpoint previously written by this
                configuration, loaded via ``CrawlCheckpointer.load()``. The
                crawler must be freshly constructed; the run continues from
                the checkpoint and produces results bit-identical to an
                uninterrupted run.

        Returns:
            A :class:`CrawlRunResult` with freshness/quality series and
            counters.
        """
        if duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if (checkpointer is not None or resume_state is not None) and (
            self._config.engine != "batched"
        ):
            raise ValueError(
                "checkpoint/resume requires the batched engine; the reference "
                "engine's event queue holds closures and cannot be snapshotted"
            )
        end_time = min(start_time + duration_days, self._web.horizon_days)

        tracker = FreshnessTracker(
            self._web,
            self._collection,
            denominator=self._config.collection_capacity,
        )
        result = CrawlRunResult(freshness=tracker.series, duration_days=duration_days)
        self._crawl_module.journal = journal

        scheduler: Optional[StreamScheduler] = None
        if resume_state is not None:
            scheduler = self._restore_state(
                resume_state, start_time, duration_days, tracker, result, journal
            )
            if checkpointer is not None:
                checkpointer.start(float(resume_state["checkpoint_at"]))
        else:
            self._bootstrap(start_time)
            if checkpointer is not None:
                checkpointer.start(start_time)

        if self._config.engine == "batched":
            self._run_batched(
                start_time,
                end_time,
                tracker,
                result,
                checkpointer=checkpointer,
                scheduler=scheduler,
            )
        else:
            self._run_reference(start_time, end_time, tracker, result)

        result.pages_crawled = self._crawl_module.pages_fetched
        result.pages_failed = self._crawl_module.pages_failed
        result.changes_detected = self._update_module.changes_detected
        result.pages_replaced = self._ranking_module.pages_replaced
        return result

    # ------------------------------------------------------------------ #
    # Engines
    # ------------------------------------------------------------------ #
    def _run_reference(
        self,
        start_time: float,
        end_time: float,
        tracker: FreshnessTracker,
        result: CrawlRunResult,
    ) -> None:
        """The pinned per-URL engine: one event queue callback per fetch."""
        clock = VirtualClock(start_time)
        queue = EventQueue(clock)
        crawl_period = 1.0 / self._config.crawl_budget_per_day

        def crawl_step(at: float) -> None:
            self._update_module.process_next(at)
            queue.schedule(at + crawl_period, crawl_step, label="crawl")

        def ranking_step(at: float) -> None:
            refinement = self._ranking_module.refine(at)
            self._update_module.set_importance(refinement.importance)
            self._refresh_journal_records()
            queue.schedule(
                at + self._config.ranking_interval_days, ranking_step, label="ranking"
            )

        def measure_step(at: float) -> None:
            tracker.sample(at)
            if self._config.track_quality:
                self._sample_quality(result, at)
            queue.schedule(
                at + self._config.measurement_interval_days, measure_step, label="measure"
            )

        queue.schedule(start_time, crawl_step, label="crawl")
        queue.schedule(start_time, ranking_step, label="ranking")
        queue.schedule(start_time, measure_step, label="measure")
        queue.run_until(end_time)

    def _run_batched(
        self,
        start_time: float,
        end_time: float,
        tracker: FreshnessTracker,
        result: CrawlRunResult,
        checkpointer: Optional[CrawlCheckpointer] = None,
        scheduler: Optional[StreamScheduler] = None,
    ) -> None:
        """The batched engine: crawl slots drained one tick window at a time.

        The loop itself lives in :class:`~repro.core.sharding.ShardEngine`
        (extracted so sharded workers drive the identical code); this
        method builds the engine around this crawler's modules and
        delegates. See the engine's docstring for the tick-window and
        checkpoint semantics.
        """
        engine = ShardEngine(
            update_module=self._update_module,
            ranking_module=self._ranking_module,
            crawl_budget_per_day=self._config.crawl_budget_per_day,
            ranking_interval_days=self._config.ranking_interval_days,
            measurement_interval_days=self._config.measurement_interval_days,
            track_quality=self._config.track_quality,
            sample_quality=lambda at: self._sample_quality(result, at),
            refresh_journal=self._refresh_journal_records,
            on_measure=self.on_measure,
            view=self._shard_view,
        )
        engine.run(
            start_time,
            end_time,
            tracker,
            checkpointer=checkpointer,
            scheduler=scheduler,
            snapshot=lambda at, sched: self._snapshot_state(
                at, start_time, end_time, sched, tracker, result
            ),
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _bootstrap(self, start_time: float) -> None:
        """Seed AllUrls and CollUrls with the configured seed URLs.

        All seeds are scheduled at exactly ``start_time``; the queue's
        sequence tie-break serves them in seed order, so bulk scheduling is
        collision-safe without spreading artificial epsilon offsets.
        """
        fresh = []
        for url in self._seeds:
            self._allurls.add(url, discovered_at=start_time)
            if url not in self._collurls:
                fresh.append(url)
        self._collurls.schedule_many(fresh, [start_time] * len(fresh))

    def _sample_quality(self, result: CrawlRunResult, at: float) -> float:
        if self._quality_cache is None:
            subset = None
            if self._shard_view is not None and not self._shard_view.is_total:
                # A shard can only ever collect pages of the sites it owns,
                # so its attainable mass is the best `capacity` pages *within
                # the shard*. The per-shard attainable masses are the weights
                # the coordinator merges shard quality series with.
                subset = [
                    page.url
                    for site_id in self._shard_view.site_ids
                    for page in self._web.site(site_id).all_pages
                ]
            self._quality_cache = CollectionQualityCache(
                self._web,
                capacity=self._config.collection_capacity,
                subset=subset,
            )
        quality = self._quality_cache.quality(self._collection.current_urls())
        result.quality.append(quality)
        result.quality_times.append(at)
        return quality

    def quality_attainable(self) -> Optional[float]:
        """Attainable importance mass of this crawler's quality denominator.

        ``None`` until the first quality sample built the cache (or when
        quality tracking is off). The sharded coordinator uses these masses
        as the deterministic weights of its merged quality series.
        """
        if self._quality_cache is None:
            return None
        return self._quality_cache.attainable_mass

    def _refresh_journal_records(self) -> None:
        """Mirror the full collection after a ranking scan rewrote importance."""
        journal = self._crawl_module.journal
        if journal is not None:
            journal.refresh_records(self._collection.working_records())

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def _snapshot_state(
        self,
        at: float,
        start_time: float,
        end_time: float,
        scheduler: StreamScheduler,
        tracker: FreshnessTracker,
        result: CrawlRunResult,
    ) -> dict:
        """Assemble a JSON-serializable snapshot of the full crawler state.

        Taken with the head event still pending on the scheduler: restoring
        this state into a freshly constructed crawler replays the run from
        here bit-identically. Every float travels verbatim (JSON round-trips
        doubles exactly) and dict insertion order — which feeds ordered
        float reductions in the UpdateModule — survives serialization.
        """
        journal = self._crawl_module.journal
        politeness = self._fetcher.politeness
        return {
            "format": CHECKPOINT_FORMAT,
            "engine": "batched",
            "start_time": start_time,
            "end_time": end_time,
            "duration_days": result.duration_days,
            "checkpoint_at": at,
            "scheduler": scheduler.snapshot(),
            "collurls": self._collurls.snapshot(),
            "collection": [
                record_to_dict(record)
                for record in self._collection.working_records()
            ],
            "allurls": self._allurls.snapshot(),
            "update": self._update_module.snapshot(),
            "crawl": self._crawl_module.snapshot(),
            "ranking": self._ranking_module.snapshot(),
            "fetch_count": self._fetcher.fetch_count,
            "politeness": politeness.snapshot() if politeness is not None else None,
            "freshness": {
                "times": list(tracker.series.times),
                "freshness": list(tracker.series.freshness),
                "age": list(tracker.series.age),
            },
            "quality": {
                "times": list(result.quality_times),
                "values": list(result.quality),
            },
            "journal": journal.snapshot() if journal is not None else None,
        }

    def _restore_state(
        self,
        state: dict,
        start_time: float,
        duration_days: float,
        tracker: FreshnessTracker,
        result: CrawlRunResult,
        journal: Optional[CollectionJournal],
    ) -> StreamScheduler:
        """Rebuild crawler state from a checkpoint and return the scheduler.

        The crawler must be freshly constructed (as after a process kill):
        restoration *replays* collection stores in checkpoint order so the
        repository's insertion order — and with it every scan order
        downstream — matches the uninterrupted run.
        """
        fmt = state.get("format")
        if fmt != CHECKPOINT_FORMAT:
            raise ValueError(
                f"unsupported checkpoint format {fmt!r} "
                f"(this build reads format {CHECKPOINT_FORMAT})"
            )
        if float(state["start_time"]) != start_time:
            raise ValueError(
                f"checkpoint was taken for start_time={state['start_time']}, "
                f"got {start_time}"
            )
        if float(state["duration_days"]) != duration_days:
            raise ValueError(
                f"checkpoint was taken for duration_days={state['duration_days']}, "
                f"got {duration_days}"
            )

        scheduler = StreamScheduler()
        scheduler.restore_snapshot(state["scheduler"])
        self._collurls.restore_snapshot(state["collurls"])
        for payload in state["collection"]:
            self._collection.store(record_from_dict(payload))
        self._allurls.restore_snapshot(state["allurls"])
        self._update_module.restore_snapshot(state["update"])
        self._crawl_module.restore_snapshot(state["crawl"])
        self._ranking_module.restore_snapshot(state["ranking"])
        self._fetcher.fetch_count = int(state["fetch_count"])

        politeness = self._fetcher.politeness
        saved_politeness = state.get("politeness")
        if politeness is not None:
            if saved_politeness is None:
                raise ValueError(
                    "checkpoint was taken without politeness but this "
                    "configuration enables it"
                )
            politeness.restore_snapshot(saved_politeness)
        elif saved_politeness is not None:
            raise ValueError(
                "checkpoint was taken with politeness but this "
                "configuration disables it"
            )

        # ``result.freshness`` *is* ``tracker.series`` (same object), so
        # restoring the tracker restores the result series too.
        freshness = state["freshness"]
        tracker.series.times[:] = [float(t) for t in freshness["times"]]
        tracker.series.freshness[:] = [float(f) for f in freshness["freshness"]]
        tracker.series.age[:] = [float(a) for a in freshness["age"]]
        quality = state["quality"]
        result.quality[:] = [float(v) for v in quality["values"]]
        result.quality_times[:] = [float(t) for t in quality["times"]]

        if journal is not None and state.get("journal") is not None:
            journal.restore_snapshot(state["journal"])
        return scheduler
