"""AllUrls: the registry of every URL the crawler has discovered.

Algorithm 5.1 keeps a set ``AllUrls`` of all URLs known to the crawler; the
architecture of Figure 12 has the CrawlModule forward newly extracted URLs
into it and the RankingModule scan it when making the refinement decision.

Besides membership, the registry tracks, per URL, when it was discovered and
which collected pages link to it. The in-link information is what lets the
RankingModule estimate the importance of pages it has not collected yet
(footnote 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set


@dataclass
class UrlInfo:
    """What the crawler knows about a discovered URL.

    Attributes:
        url: The URL.
        discovered_at: Virtual time the URL was first seen.
        inlinks: Collected pages known to link to this URL.
        last_failed_at: Virtual time of the most recent failed fetch
            (``None`` when the URL has never failed); used to avoid
            rescheduling URLs that have disappeared.
    """

    url: str
    discovered_at: float
    inlinks: Set[str] = field(default_factory=set)
    last_failed_at: Optional[float] = None

    @property
    def inlink_count(self) -> int:
        """Number of known referring pages."""
        return len(self.inlinks)


class AllUrls:
    """Registry of all discovered URLs with their in-link evidence."""

    def __init__(self) -> None:
        self._urls: Dict[str, UrlInfo] = {}

    def __contains__(self, url: str) -> bool:
        return url in self._urls

    def __len__(self) -> int:
        return len(self._urls)

    def __iter__(self) -> Iterator[str]:
        return iter(self._urls)

    def add(self, url: str, discovered_at: float) -> bool:
        """Register a URL; returns True when it was new."""
        if url in self._urls:
            return False
        self._urls[url] = UrlInfo(url=url, discovered_at=discovered_at)
        return True

    def add_many(self, urls: Iterable[str], discovered_at: float) -> int:
        """Register several URLs; returns how many were new."""
        return sum(1 for url in urls if self.add(url, discovered_at))

    def record_link(self, source_url: str, target_url: str, discovered_at: float) -> None:
        """Record that collected page ``source_url`` links to ``target_url``.

        The target is registered if it was unknown.
        """
        self.add(target_url, discovered_at)
        self._urls[target_url].inlinks.add(source_url)

    def record_links(
        self, source_url: str, target_urls: Iterable[str], discovered_at: float
    ) -> None:
        """Record every link of a freshly crawled page."""
        for target_url in target_urls:
            self.record_link(source_url, target_url, discovered_at)

    def record_failure(self, url: str, at: float) -> None:
        """Record a failed fetch (page missing or excluded)."""
        info = self._urls.get(url)
        if info is not None:
            info.last_failed_at = at

    def info(self, url: str) -> UrlInfo:
        """The registry entry for ``url`` (raises ``KeyError`` when unknown)."""
        return self._urls[url]

    def get(self, url: str) -> Optional[UrlInfo]:
        """The registry entry for ``url`` or ``None``."""
        return self._urls.get(url)

    def urls(self) -> List[str]:
        """All known URLs."""
        return list(self._urls.keys())

    def candidates(self, exclude: Iterable[str]) -> List[UrlInfo]:
        """Known URLs not in ``exclude`` (the refinement candidates).

        URLs with a recorded fetch failure are omitted; they are known to
        have disappeared and are not worth admitting into the collection.
        """
        excluded = set(exclude)
        return [
            info
            for url, info in self._urls.items()
            if url not in excluded and info.last_failed_at is None
        ]

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serializable registry state in dict-insertion order.

        Insertion order is preserved (``candidates`` iterates it); in-link
        sets are serialized sorted, which is safe because in-links are only
        ever counted or extended, never iterated order-sensitively.
        """
        return {
            "urls": [
                {
                    "url": info.url,
                    "discovered_at": info.discovered_at,
                    "inlinks": sorted(info.inlinks),
                    "last_failed_at": info.last_failed_at,
                }
                for info in self._urls.values()
            ]
        }

    def restore_snapshot(self, state: dict) -> None:
        """Rebuild the registry exactly as captured by :meth:`snapshot`."""
        self._urls = {}
        for entry in state["urls"]:
            url = str(entry["url"])
            failed = entry["last_failed_at"]
            self._urls[url] = UrlInfo(
                url=url,
                discovered_at=float(entry["discovered_at"]),
                inlinks=set(entry["inlinks"]),
                last_failed_at=None if failed is None else float(failed),
            )
