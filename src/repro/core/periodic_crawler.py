"""The periodic (batch-mode, shadowing) crawler baseline.

Section 1: "the crawler visits the web until the collection has a desirable
number of pages, and stops visiting pages. Then when it is necessary to
refresh the collection, the crawler builds a brand new collection using the
same process described above, and then replaces the old collection with this
brand new one. We refer to this type of crawler as a periodic crawler."

This is the right-hand column of Figure 10: batch-mode crawling, a shadow
collection swapped in at the end of each crawl, and a fixed revisit
frequency (every page exactly once per cycle). It shares the fetch and
storage substrates with the incremental crawler so the comparison between
the two is apples-to-apples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.quality import CollectionQualityCache
from repro.fetch.fetcher import SimulatedFetcher
from repro.simulation.clock import VirtualClock
from repro.simulation.freshness_tracker import FreshnessTimeSeries, FreshnessTracker
from repro.simweb.web import SimulatedWeb
from repro.storage.collection import ShadowCollection
from repro.storage.records import PageRecord

#: Engines :meth:`PeriodicCrawler.run` can execute with.
PERIODIC_ENGINES: Tuple[str, ...] = ("batched", "reference")


@dataclass(frozen=True)
class PeriodicCrawlerConfig:
    """Configuration of the periodic crawler.

    Attributes:
        collection_capacity: Number of pages collected per crawl cycle.
        crawl_budget_per_day: Pages fetched per virtual day while the crawl
            is active. The paper's batch crawler "must visit pages at a
            higher speed when it operates"; with the same capacity and a
            shorter active window this budget is necessarily higher than a
            steady crawler's for the same cycle.
        cycle_days: Days between the starts of consecutive crawls.
        measurement_interval_days: How often freshness is sampled.
        track_quality: Also sample collection quality.
        engine: ``"batched"`` (BFS waves resolved through the batched
            oracle, the default) or ``"reference"`` (one scalar fetch per
            pop). Both produce identical results.
    """

    collection_capacity: int = 500
    crawl_budget_per_day: float = 8000.0
    cycle_days: float = 30.0
    measurement_interval_days: float = 0.5
    track_quality: bool = True
    engine: str = "batched"

    def __post_init__(self) -> None:
        if self.collection_capacity < 1:
            raise ValueError("collection_capacity must be at least 1")
        if self.crawl_budget_per_day <= 0:
            raise ValueError("crawl_budget_per_day must be positive")
        if self.cycle_days <= 0:
            raise ValueError("cycle_days must be positive")
        if self.measurement_interval_days <= 0:
            raise ValueError("measurement_interval_days must be positive")
        if self.engine not in PERIODIC_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choices: {', '.join(PERIODIC_ENGINES)}"
            )

    @property
    def batch_duration_days(self) -> float:
        """Days needed to collect the full capacity at the configured budget."""
        return self.collection_capacity / self.crawl_budget_per_day


@dataclass
class PeriodicCrawlResult:
    """Outcome of a periodic-crawler run."""

    freshness: FreshnessTimeSeries
    quality: List[float] = field(default_factory=list)
    quality_times: List[float] = field(default_factory=list)
    pages_crawled: int = 0
    cycles_completed: int = 0
    duration_days: float = 0.0

    def mean_freshness(self) -> float:
        """Time-averaged freshness over the run."""
        return self.freshness.mean_freshness()

    def final_quality(self) -> float:
        """Last sampled collection quality (0 when not tracked)."""
        return self.quality[-1] if self.quality else 0.0


class PeriodicCrawler:
    """Batch-mode crawler that rebuilds a shadow collection every cycle.

    Each cycle the crawler starts from the seed URLs and crawls breadth
    first until it has collected ``collection_capacity`` pages (or runs out
    of reachable URLs), spending virtual time according to its crawl budget.
    When the crawl completes, the current collection is atomically replaced.

    Args:
        web: The synthetic web to crawl.
        config: Crawler configuration.
        seed_urls: Starting URLs; defaults to every site's root page.
    """

    def __init__(
        self,
        web: SimulatedWeb,
        config: Optional[PeriodicCrawlerConfig] = None,
        seed_urls: Optional[Sequence[str]] = None,
    ) -> None:
        self._web = web
        self._config = config if config is not None else PeriodicCrawlerConfig()
        self._seeds = list(seed_urls) if seed_urls is not None else web.seed_urls()
        if not self._seeds:
            raise ValueError("the crawler needs at least one seed URL")
        self._fetcher = SimulatedFetcher(web)
        self._collection = ShadowCollection(capacity=self._config.collection_capacity)
        self._quality_cache: Optional[CollectionQualityCache] = None

    @property
    def collection(self) -> ShadowCollection:
        """The crawler's (shadowed) collection."""
        return self._collection

    def run(self, duration_days: float, start_time: float = 0.0) -> PeriodicCrawlResult:
        """Run the periodic crawler for ``duration_days`` of virtual time."""
        if duration_days <= 0:
            raise ValueError("duration_days must be positive")
        end_time = min(start_time + duration_days, self._web.horizon_days)
        clock = VirtualClock(start_time)
        tracker = FreshnessTracker(
            self._web,
            self._collection,
            denominator=self._config.collection_capacity,
        )
        result = PeriodicCrawlResult(freshness=tracker.series, duration_days=duration_days)

        next_measurement = start_time
        cycle_start = start_time
        while cycle_start < end_time:
            crawl_end = self._run_one_cycle(cycle_start, end_time, result)
            # Sample freshness over the remainder of the cycle (the crawler
            # is idle but the web keeps changing).
            next_cycle = min(cycle_start + self._config.cycle_days, end_time)
            next_measurement = self._measure_until(
                tracker, result, next_measurement, max(crawl_end, cycle_start), next_cycle
            )
            cycle_start = next_cycle
            if crawl_end >= end_time:
                break
        return result

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _run_one_cycle(
        self, cycle_start: float, end_time: float, result: PeriodicCrawlResult
    ) -> float:
        """Crawl one full collection breadth-first; returns the completion time."""
        if self._config.engine == "batched" and self._fetcher.supports_batching:
            return self._run_one_cycle_batched(cycle_start, end_time, result)
        per_fetch = 1.0 / self._config.crawl_budget_per_day
        now = cycle_start
        queue = deque(self._seeds)
        seen: Set[str] = set(self._seeds)
        collected = 0
        while queue and collected < self._config.collection_capacity and now < end_time:
            url = queue.popleft()
            fetch = self._fetcher.fetch(url, at=now)
            now += per_fetch
            if not fetch.ok:
                continue
            record = PageRecord(
                url=url,
                content=fetch.content,
                checksum=fetch.checksum,
                fetched_at=fetch.completed_at,
                first_fetched_at=fetch.completed_at,
                outlinks=tuple(fetch.outlinks),
            )
            if self._collection.get_working(url) is None and not self._shadow_full():
                self._collection.store(record)
                collected += 1
            result.pages_crawled += 1
            for link in fetch.outlinks:
                if link not in seen:
                    seen.add(link)
                    queue.append(link)
        self._collection.complete_cycle(at=now)
        result.cycles_completed += 1
        return now

    def _run_one_cycle_batched(
        self, cycle_start: float, end_time: float, result: PeriodicCrawlResult
    ) -> float:
        """Wave-batched breadth-first cycle, identical to the scalar loop.

        The BFS frontier is processed one wave at a time: all URLs queued at
        the start of the wave resolve through one
        :meth:`~repro.fetch.fetcher.SimulatedFetcher.fetch_many` call, then
        the discovered links of each fetched page are appended in pop order,
        reproducing the exact deque order of the per-URL loop. Within a
        wave, each URL is fetched at most once per cycle (the ``seen`` set
        guards enqueueing), so only the stop conditions need care: a wave
        slice never exceeds the remaining time budget (``now < end_time``
        per fetch) nor the number of pages still admissible, which keeps
        the fetch count identical to the scalar loop's.
        """
        per_fetch = 1.0 / self._config.crawl_budget_per_day
        capacity = self._config.collection_capacity
        now = cycle_start
        queue = deque(self._seeds)
        seen: Set[str] = set(self._seeds)
        collected = 0
        collection = self._collection
        fetcher = self._fetcher
        while queue and collected < capacity and now < end_time:
            # The scalar loop checks `now < end_time` before each pop and
            # stores at most (capacity - collected) more pages; a slice of
            # that length cannot overshoot either bound.
            max_by_time = len(queue)
            if per_fetch > 0:
                budget_slots = int((end_time - now) / per_fetch) + 1
                if budget_slots < max_by_time:
                    max_by_time = budget_slots
            wave_len = min(len(queue), capacity - collected, max_by_time)
            wave = [queue.popleft() for _ in range(wave_len)]
            times: List[float] = []
            wave_now = now
            for _ in range(wave_len):
                times.append(wave_now)
                wave_now += per_fetch
            # Trim to the slots that actually start before end_time.
            cut = wave_len
            for j in range(wave_len):
                if not times[j] < end_time:
                    cut = j
                    break
            if cut < wave_len:
                for url in reversed(wave[cut:]):
                    queue.appendleft(url)
                wave = wave[:cut]
                times = times[:cut]
            if not wave:
                break
            fetch = fetcher.fetch_many(wave, times)
            ok = fetch.ok.tolist()
            versions = fetch.versions.tolist()
            completed = fetch.completed_at.tolist()
            for url, ok_i, version_i, completed_i in zip(wave, ok, versions, completed):
                now += per_fetch
                if not ok_i:
                    continue
                content, checksum = fetcher.content_for(url, version_i)
                outlinks = fetcher.outlinks_of(url)
                if collection.get_working(url) is None and collected < capacity:
                    collection.store(
                        PageRecord(
                            url=url,
                            content=content,
                            checksum=checksum,
                            fetched_at=completed_i,
                            first_fetched_at=completed_i,
                            outlinks=tuple(outlinks),
                        )
                    )
                    collected += 1
                result.pages_crawled += 1
                for link in outlinks:
                    if link not in seen:
                        seen.add(link)
                        queue.append(link)
        self._collection.complete_cycle(at=now)
        result.cycles_completed += 1
        return now

    def _shadow_full(self) -> bool:
        return (
            len(self._collection.working_records()) >= self._config.collection_capacity
        )

    def _measure_until(
        self,
        tracker: FreshnessTracker,
        result: PeriodicCrawlResult,
        next_measurement: float,
        from_time: float,
        until: float,
    ) -> float:
        """Take periodic freshness/quality samples in ``[from_time, until)``."""
        while next_measurement < until:
            if next_measurement >= from_time - self._config.cycle_days:
                sample_at = max(next_measurement, 0.0)
                tracker.sample(min(sample_at, self._web.horizon_days))
                if self._config.track_quality:
                    self._sample_quality(result, sample_at)
            next_measurement += self._config.measurement_interval_days
        return next_measurement

    def _sample_quality(self, result: PeriodicCrawlResult, at: float) -> None:
        if self._quality_cache is None:
            self._quality_cache = CollectionQualityCache(
                self._web, capacity=self._config.collection_capacity
            )
        quality = self._quality_cache.quality(self._collection.current_urls())
        result.quality.append(quality)
        result.quality_times.append(at)
