"""CrawlModule: fetch pages, store them, forward discovered URLs.

Figure 12: "the CrawlModule crawls a page and saves/updates the page in the
Collection, based on the request from the UpdateModule. Also, the
CrawlModule extracts all links/URLs in the crawled page and forwards the
URLs to AllUrls." Multiple CrawlModule instances may run in parallel in a
production deployment; in the simulation a single instance is sufficient
because fetch latency is charged on the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Set

import numpy as np

from repro.core.allurls import AllUrls
from repro.faults import STATUS_EXCLUDED, STATUS_NOT_FOUND
from repro.fetch.fetcher import FetchResult, FetchStatus, SimulatedFetcher
from repro.storage.collection import Collection
from repro.storage.records import PageRecord

#: Statuses that are *permanent* verdicts on the URL itself. Only these may
#: reach ``AllUrls.record_failure`` (which excludes the URL from future
#: collection candidates); transient fault statuses say nothing about the
#: page and must not poison the discovered-URL registry.
_TERMINAL_STATUSES = (FetchStatus.NOT_FOUND, FetchStatus.EXCLUDED)
_TERMINAL_CODES = (STATUS_NOT_FOUND, STATUS_EXCLUDED)


@dataclass(frozen=True)
class CrawlOutcome:
    """What happened when the CrawlModule processed one URL.

    Attributes:
        url: The crawled URL.
        fetch: The raw fetch result.
        stored: Whether a copy was stored (False for missing/excluded pages).
        changed: For a re-fetch of a stored page, whether the checksum
            differed from the stored copy; always True for first fetches
            (the page is new to the collection).
        was_new: Whether the page was not previously in the working
            collection.
        completed_at: Virtual time the crawl completed.
    """

    url: str
    fetch: FetchResult
    stored: bool
    changed: bool
    was_new: bool
    completed_at: float


@dataclass
class BatchCrawlOutcome:
    """What happened when the CrawlModule processed a batch of URLs.

    Per-index sequences aligned with ``urls``; the semantics of each flag
    match the scalar :class:`CrawlOutcome` field of the same name. Flag
    sequences are plain lists (they are consumed element-wise on the hot
    path); the time columns stay NumPy arrays.
    """

    urls: Sequence[str]
    requested_at: np.ndarray
    completed_at: np.ndarray
    stored: Sequence[bool]
    changed: Sequence[bool]
    was_new: Sequence[bool]
    #: Integer status code per URL (``repro.faults.STATUS_*``), or ``None``
    #: when no fault layer is configured (``stored`` then implies OK vs
    #: NOT_FOUND, the pre-fault behaviour).
    statuses: Optional[Sequence[int]] = None
    #: Retry-after hint per URL in virtual days (``None`` without faults).
    retry_after: Optional[Sequence[float]] = None


class CrawlModule:
    """Fetches pages on request and maintains the collection and AllUrls.

    Args:
        fetcher: The fetch substrate.
        collection: The collection to store fetched copies in.
        allurls: The discovered-URL registry to forward extracted links to.
        link_filter: Optional predicate applied to extracted out-links
            before they are forwarded to AllUrls. A site-affine crawl shard
            keeps only links into sites it owns, so its discovered universe
            never leaves the shard. ``None`` forwards every link (the
            unsharded behaviour, byte for byte).
    """

    def __init__(
        self,
        fetcher: SimulatedFetcher,
        collection: Collection,
        allurls: AllUrls,
        link_filter: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self._fetcher = fetcher
        self._collection = collection
        self._allurls = allurls
        self._link_filter = link_filter
        self.pages_fetched = 0
        self.pages_failed = 0
        # Batched-path bookkeeping. ``_stored_versions`` maps a stored URL to
        # the oracle version its record was built from, so an unchanged
        # re-fetch skips body materialisation and checksum hashing entirely.
        # ``_links_recorded`` marks URLs whose (constant) out-links have been
        # forwarded to AllUrls at least once; later forwards are no-ops in
        # the scalar path and are skipped outright in the batched one.
        self._stored_versions: Dict[str, int] = {}
        self._links_recorded: Set[str] = set()
        # Optional CollectionJournal mirroring stored records and change
        # events into a storage backend (set by IncrementalCrawler.run).
        self.journal = None

    @property
    def collection(self) -> Collection:
        """The collection this module stores pages into."""
        return self._collection

    @property
    def fetcher(self) -> SimulatedFetcher:
        """The fetch substrate (exposed for the batched crawl engine)."""
        return self._fetcher

    def site_of(self, url: str) -> Optional[str]:
        """The owning site id of ``url`` (for the failure-aware engine)."""
        return self._fetcher.site_of(url)

    def crawl(self, url: str, at: float) -> CrawlOutcome:
        """Fetch ``url`` at virtual time ``at``, store it and forward links.

        Args:
            url: The URL to crawl.
            at: Virtual time the crawl is issued.

        Returns:
            A :class:`CrawlOutcome` describing what happened.
        """
        result = self._fetcher.fetch(url, at=at)
        if not result.ok:
            self.pages_failed += 1
            if result.status in _TERMINAL_STATUSES:
                self._allurls.record_failure(url, at)
            return CrawlOutcome(
                url=url,
                fetch=result,
                stored=False,
                changed=False,
                was_new=self._collection.get_working(url) is None,
                completed_at=result.completed_at,
            )

        self.pages_fetched += 1
        self._allurls.add(url, discovered_at=result.completed_at)
        outlinks = result.outlinks
        if self._link_filter is not None:
            outlinks = [link for link in outlinks if self._link_filter(link)]
        self._allurls.record_links(url, outlinks, result.completed_at)

        existing = self._collection.get_working(url)
        if existing is None:
            record = PageRecord(
                url=url,
                content=result.content,
                checksum=result.checksum,
                fetched_at=result.completed_at,
                first_fetched_at=result.completed_at,
                outlinks=tuple(result.outlinks),
            )
            self._collection.store(record)
            return CrawlOutcome(
                url=url,
                fetch=result,
                stored=True,
                changed=True,
                was_new=True,
                completed_at=result.completed_at,
            )

        changed = existing.checksum != result.checksum
        refreshed = existing.refreshed(
            content=result.content,
            checksum=result.checksum,
            fetched_at=result.completed_at,
            outlinks=result.outlinks,
        )
        self._collection.store(refreshed)
        return CrawlOutcome(
            url=url,
            fetch=result,
            stored=True,
            changed=changed,
            was_new=False,
            completed_at=result.completed_at,
        )

    def crawl_many(
        self,
        urls: Sequence[str],
        times: Sequence[float],
        resolved_at: Optional[Sequence[float]] = None,
    ) -> BatchCrawlOutcome:
        """Process a batch of URLs: one oracle pass, then bulk store/forward.

        Equivalent to calling :meth:`crawl` once per ``(url, time)`` pair in
        order — the same counters, stored records and AllUrls state — but
        the fetches resolve through :meth:`SimulatedFetcher.fetch_many`,
        change detection compares content *versions* instead of re-hashing
        bodies, unchanged re-fetches reuse the stored body verbatim, and
        link forwarding is skipped once a page's constant out-links have
        been recorded.

        Args:
            urls: URLs to crawl (distinct within one batch).
            times: Virtual time each crawl is issued, aligned with ``urls``.
            resolved_at: Optional politeness-resolved start instant per URL,
                forwarded to :meth:`SimulatedFetcher.fetch_many` when the
                caller already resolved the per-site delays.

        Returns:
            A :class:`BatchCrawlOutcome` with per-URL flags.
        """
        fetch = self._fetcher.fetch_many(urls, times, resolved_at=resolved_at)
        n = len(fetch.urls)
        changed = [False] * n
        was_new = [False] * n
        ok = fetch.ok.tolist()
        n_ok = sum(ok)
        self.pages_fetched += n_ok
        self.pages_failed += n - n_ok

        collection = self._collection
        allurls = self._allurls
        stored_versions = self._stored_versions
        links_recorded = self._links_recorded
        versions = fetch.versions.tolist()
        completed = fetch.completed_at.tolist()
        requested = fetch.requested_at.tolist()
        statuses = None if fetch.statuses is None else fetch.statuses.tolist()
        for i, (url, ok_i, version_i, completed_i, requested_i) in enumerate(
            zip(fetch.urls, ok, versions, completed, requested)
        ):
            if not ok_i:
                if statuses is None or statuses[i] in _TERMINAL_CODES:
                    allurls.record_failure(url, requested_i)
                was_new[i] = collection.get_working(url) is None
                continue
            if url not in links_recorded:
                allurls.add(url, discovered_at=completed_i)
                outlinks = self._fetcher.outlinks_of(url)
                if self._link_filter is not None:
                    outlinks = [
                        link for link in outlinks if self._link_filter(link)
                    ]
                allurls.record_links(url, outlinks, completed_i)
                links_recorded.add(url)
            existing = collection.get_working(url)
            if existing is None:
                content, checksum = self._fetcher.content_for(url, version_i)
                collection.store(
                    PageRecord(
                        url=url,
                        content=content,
                        checksum=checksum,
                        fetched_at=completed_i,
                        first_fetched_at=completed_i,
                        outlinks=tuple(self._fetcher.outlinks_of(url)),
                    )
                )
                changed[i] = True
                was_new[i] = True
            elif stored_versions.get(url) == version_i:
                # Unchanged re-fetch of a page this module stored: every
                # field except the fetch bookkeeping keeps its value, so
                # the stored record is refreshed in place. Field values
                # end up identical to the scalar path's replacement copy;
                # only the object identity differs.
                existing.fetched_at = completed_i
                existing.visit_count += 1
            else:
                previous_version = stored_versions.get(url)
                content, checksum = self._fetcher.content_for(url, version_i)
                if previous_version is None:
                    # Stored through the scalar path: fall back to the
                    # checksum comparison the scalar path would make.
                    page_changed = existing.checksum != checksum
                else:
                    page_changed = True
                # Direct construction of the refreshed record: equivalent to
                # PageRecord.refreshed() (same fields, same validation) but
                # without dataclasses.replace overhead on the hottest path.
                collection.store(
                    PageRecord(
                        url=url,
                        content=content,
                        checksum=checksum,
                        fetched_at=completed_i,
                        first_fetched_at=existing.first_fetched_at,
                        outlinks=tuple(self._fetcher.outlinks_of(url)),
                        importance=existing.importance,
                        visit_count=existing.visit_count + 1,
                        change_count=existing.change_count + (1 if page_changed else 0),
                    )
                )
                changed[i] = page_changed
            stored_versions[url] = version_i
        return BatchCrawlOutcome(
            urls=fetch.urls,
            requested_at=fetch.requested_at,
            completed_at=fetch.completed_at,
            stored=ok,
            changed=changed,
            was_new=was_new,
            statuses=statuses,
            retry_after=(
                None if fetch.retry_after is None else fetch.retry_after.tolist()
            ),
        )

    def discard(self, url: str) -> Optional[PageRecord]:
        """Remove a page from the working collection (refinement decision)."""
        self._stored_versions.pop(url, None)
        discarded = self._collection.discard(url)
        if discarded is not None and self.journal is not None:
            self.journal.on_discard(url)
        return discarded

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serializable module state (counters + batched bookkeeping)."""
        return {
            "pages_fetched": self.pages_fetched,
            "pages_failed": self.pages_failed,
            "stored_versions": dict(self._stored_versions),
            "links_recorded": sorted(self._links_recorded),
        }

    def restore_snapshot(self, state: dict) -> None:
        """Rebuild module state exactly as captured by :meth:`snapshot`."""
        self.pages_fetched = int(state["pages_fetched"])
        self.pages_failed = int(state["pages_failed"])
        self._stored_versions = {
            str(url): int(version)
            for url, version in state["stored_versions"].items()
        }
        self._links_recorded = set(state["links_recorded"])
