"""CrawlModule: fetch pages, store them, forward discovered URLs.

Figure 12: "the CrawlModule crawls a page and saves/updates the page in the
Collection, based on the request from the UpdateModule. Also, the
CrawlModule extracts all links/URLs in the crawled page and forwards the
URLs to AllUrls." Multiple CrawlModule instances may run in parallel in a
production deployment; in the simulation a single instance is sufficient
because fetch latency is charged on the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.allurls import AllUrls
from repro.fetch.fetcher import FetchResult, SimulatedFetcher
from repro.storage.collection import Collection
from repro.storage.records import PageRecord


@dataclass(frozen=True)
class CrawlOutcome:
    """What happened when the CrawlModule processed one URL.

    Attributes:
        url: The crawled URL.
        fetch: The raw fetch result.
        stored: Whether a copy was stored (False for missing/excluded pages).
        changed: For a re-fetch of a stored page, whether the checksum
            differed from the stored copy; always True for first fetches
            (the page is new to the collection).
        was_new: Whether the page was not previously in the working
            collection.
        completed_at: Virtual time the crawl completed.
    """

    url: str
    fetch: FetchResult
    stored: bool
    changed: bool
    was_new: bool
    completed_at: float


class CrawlModule:
    """Fetches pages on request and maintains the collection and AllUrls.

    Args:
        fetcher: The fetch substrate.
        collection: The collection to store fetched copies in.
        allurls: The discovered-URL registry to forward extracted links to.
    """

    def __init__(
        self,
        fetcher: SimulatedFetcher,
        collection: Collection,
        allurls: AllUrls,
    ) -> None:
        self._fetcher = fetcher
        self._collection = collection
        self._allurls = allurls
        self.pages_fetched = 0
        self.pages_failed = 0

    @property
    def collection(self) -> Collection:
        """The collection this module stores pages into."""
        return self._collection

    def crawl(self, url: str, at: float) -> CrawlOutcome:
        """Fetch ``url`` at virtual time ``at``, store it and forward links.

        Args:
            url: The URL to crawl.
            at: Virtual time the crawl is issued.

        Returns:
            A :class:`CrawlOutcome` describing what happened.
        """
        result = self._fetcher.fetch(url, at=at)
        if not result.ok:
            self.pages_failed += 1
            self._allurls.record_failure(url, at)
            return CrawlOutcome(
                url=url,
                fetch=result,
                stored=False,
                changed=False,
                was_new=self._collection.get_working(url) is None,
                completed_at=result.completed_at,
            )

        self.pages_fetched += 1
        self._allurls.add(url, discovered_at=result.completed_at)
        self._allurls.record_links(url, result.outlinks, result.completed_at)

        existing = self._collection.get_working(url)
        if existing is None:
            record = PageRecord(
                url=url,
                content=result.content,
                checksum=result.checksum,
                fetched_at=result.completed_at,
                first_fetched_at=result.completed_at,
                outlinks=tuple(result.outlinks),
            )
            self._collection.store(record)
            return CrawlOutcome(
                url=url,
                fetch=result,
                stored=True,
                changed=True,
                was_new=True,
                completed_at=result.completed_at,
            )

        changed = existing.checksum != result.checksum
        refreshed = existing.refreshed(
            content=result.content,
            checksum=result.checksum,
            fetched_at=result.completed_at,
            outlinks=result.outlinks,
        )
        self._collection.store(refreshed)
        return CrawlOutcome(
            url=url,
            fetch=result,
            stored=True,
            changed=changed,
            was_new=False,
            completed_at=result.completed_at,
        )

    def discard(self, url: str) -> Optional[PageRecord]:
        """Remove a page from the working collection (refinement decision)."""
        return self._collection.discard(url)
