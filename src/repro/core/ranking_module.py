"""RankingModule: keep the collection high-quality (the refinement decision).

Figure 12: "The RankingModule constantly scans through AllUrls and the
Collection to make the refinement decision. ... When a page not in CollUrls
turns out to be more important than a page within CollUrls, the
RankingModule schedules for replacement of the less-important page in
CollUrls with the more-important page. The URL for this new page is placed
on the top of CollUrls, so that the UpdateModule can crawl the page
immediately. Also, the RankingModule discards the less-important page from
the Collection to make space for the new page."

Importance is measured with PageRank over the link structure captured in the
collection (or HITS authority scores); candidate URLs that are not yet
collected are ranked through the links pointing at them (footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.allurls import AllUrls
from repro.core.collurls import CollUrls
from repro.core.crawl_module import CrawlModule
from repro.ranking.hits import hits
from repro.ranking.pagerank import pagerank
from repro.storage.collection import Collection


@dataclass(frozen=True)
class RankingModuleConfig:
    """Configuration of the RankingModule.

    Attributes:
        importance_metric: ``"pagerank"`` or ``"hits"`` (authority scores).
        max_replacements_per_scan: Cap on how many collection pages a single
            refinement scan may replace; keeps the scan's effect incremental.
        replacement_margin: A candidate must beat the worst collected page's
            importance by this relative margin to trigger a replacement;
            avoids thrashing between near-equal pages.
        damping: PageRank damping factor.
    """

    importance_metric: str = "pagerank"
    max_replacements_per_scan: int = 10
    replacement_margin: float = 0.10
    damping: float = 0.85

    def __post_init__(self) -> None:
        if self.importance_metric not in ("pagerank", "hits"):
            raise ValueError('importance_metric must be "pagerank" or "hits"')
        if self.max_replacements_per_scan < 0:
            raise ValueError("max_replacements_per_scan must be non-negative")
        if self.replacement_margin < 0:
            raise ValueError("replacement_margin must be non-negative")
        if not 0.0 <= self.damping <= 1.0:
            raise ValueError("damping must be within [0, 1]")


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of one refinement scan.

    Attributes:
        importance: Importance score of every ranked URL (collected pages
            and candidates).
        replacements: ``(discarded_url, admitted_url)`` pairs applied.
        admitted: URLs newly admitted without displacing anything (possible
            while the collection is below capacity).
    """

    importance: Dict[str, float]
    replacements: Tuple[Tuple[str, str], ...]
    admitted: Tuple[str, ...]


class RankingModule:
    """Scans AllUrls and the Collection and applies the refinement decision.

    Args:
        allurls: Registry of discovered URLs.
        collurls: The collection URL priority queue.
        collection: The collection being refined.
        crawl_module: Used to discard replaced pages from the collection.
        config: Module configuration.
        capacity: Target number of pages in the collection; when ``None``
            the collection's own capacity is used.
    """

    def __init__(
        self,
        allurls: AllUrls,
        collurls: CollUrls,
        collection: Collection,
        crawl_module: CrawlModule,
        config: Optional[RankingModuleConfig] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self._allurls = allurls
        self._collurls = collurls
        self._collection = collection
        self._crawl_module = crawl_module
        self._config = config if config is not None else RankingModuleConfig()
        self._capacity = capacity if capacity is not None else collection.capacity
        self.scans_completed = 0
        self.pages_replaced = 0
        self.pages_admitted = 0

    # ------------------------------------------------------------------ #
    # Refinement scan
    # ------------------------------------------------------------------ #
    def refine(self, at: float) -> RefinementResult:
        """Run one refinement scan at virtual time ``at``.

        Computes importance over the collection's link structure, updates
        the stored importance of collected pages, admits candidate URLs
        while capacity remains, and replaces the least important collected
        pages with clearly more important candidates.
        """
        importance = self._compute_importance()
        self._store_importance(importance)

        collected_or_queued = set(self._collurls.urls())
        for record in self._collection.working_records():
            collected_or_queued.add(record.url)
        candidates = self._allurls.candidates(exclude=collected_or_queued)
        candidate_scores = sorted(
            ((importance.get(info.url, 0.0), info.url) for info in candidates),
            reverse=True,
        )

        admitted: List[str] = []
        replacements: List[Tuple[str, str]] = []
        for score, url in candidate_scores:
            if len(replacements) >= self._config.max_replacements_per_scan:
                break
            if not self._at_capacity():
                self._collurls.schedule_front(url, at)
                admitted.append(url)
                self.pages_admitted += 1
                continue
            victim = self._least_important_collected(importance)
            if victim is None:
                break
            victim_url, victim_score = victim
            if score <= victim_score * (1.0 + self._config.replacement_margin):
                break
            self._replace(victim_url, url, at)
            replacements.append((victim_url, url))
            self.pages_replaced += 1

        self.scans_completed += 1
        return RefinementResult(
            importance=importance,
            replacements=tuple(replacements),
            admitted=tuple(admitted),
        )

    def importance_of_collection(self) -> Dict[str, float]:
        """Latest stored importance of the collected pages."""
        return {
            record.url: record.importance
            for record in self._collection.working_records()
        }

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serializable module counters (all other state is derived)."""
        return {
            "scans_completed": self.scans_completed,
            "pages_replaced": self.pages_replaced,
            "pages_admitted": self.pages_admitted,
        }

    def restore_snapshot(self, state: dict) -> None:
        """Restore the counters captured by :meth:`snapshot`."""
        self.scans_completed = int(state["scans_completed"])
        self.pages_replaced = int(state["pages_replaced"])
        self.pages_admitted = int(state["pages_admitted"])

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _compute_importance(self) -> Dict[str, float]:
        graph = {
            record.url: tuple(record.outlinks)
            for record in self._collection.working_records()
        }
        if not graph:
            return {}
        if self._config.importance_metric == "hits":
            _hubs, authorities = hits(graph)
            return authorities
        return pagerank(graph, damping=self._config.damping)

    def _store_importance(self, importance: Dict[str, float]) -> None:
        for record in self._collection.working_records():
            score = importance.get(record.url, 0.0)
            self._collection.store(record.with_importance(score))

    def _at_capacity(self) -> bool:
        if self._capacity is None:
            return False
        in_collection = {record.url for record in self._collection.working_records()}
        in_collection.update(self._collurls.urls())
        return len(in_collection) >= self._capacity

    def _least_important_collected(
        self, importance: Dict[str, float]
    ) -> Optional[Tuple[str, float]]:
        records = self._collection.working_records()
        if not records:
            return None
        worst = min(records, key=lambda r: (importance.get(r.url, 0.0), r.url))
        return worst.url, importance.get(worst.url, 0.0)

    def _replace(self, victim_url: str, new_url: str, at: float) -> None:
        self._crawl_module.discard(victim_url)
        self._collurls.remove(victim_url)
        self._collurls.schedule_front(new_url, at)
