"""RankingModule: keep the collection high-quality (the refinement decision).

Figure 12: "The RankingModule constantly scans through AllUrls and the
Collection to make the refinement decision. ... When a page not in CollUrls
turns out to be more important than a page within CollUrls, the
RankingModule schedules for replacement of the less-important page in
CollUrls with the more-important page. The URL for this new page is placed
on the top of CollUrls, so that the UpdateModule can crawl the page
immediately. Also, the RankingModule discards the less-important page from
the Collection to make space for the new page."

Importance is measured with PageRank over the link structure captured in the
collection (or HITS authority scores); candidate URLs that are not yet
collected are ranked through the links pointing at them (footnote 2).

Ranking is *incremental*: the module keeps one
:class:`repro.ranking.sparse.LinkGraph` alive across refinement scans,
applies only the out-link deltas the crawler produced since the previous
scan (new pages, changed pages, refinement discards), and warm-starts the
sparse power iteration from the previous score vector — so the steady-state
cost of a scan is a delta sync plus a handful of spmv iterations, not a
from-scratch recompute. The retired dense path is pinned as
:meth:`RankingModule._compute_importance_reference`; the parity suite holds
the refinement decisions of both paths identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allurls import AllUrls
from repro.core.collurls import CollUrls
from repro.core.crawl_module import CrawlModule
from repro.ranking.hits import hits_reference
from repro.ranking.pagerank import pagerank_reference
from repro.ranking.sparse import LinkGraph, hits_scores, pagerank_scores
from repro.storage.collection import Collection
from repro.storage.records import PageRecord


@dataclass(frozen=True)
class RankingModuleConfig:
    """Configuration of the RankingModule.

    Attributes:
        importance_metric: ``"pagerank"`` or ``"hits"`` (authority scores).
        max_replacements_per_scan: Cap on how many collection pages a single
            refinement scan may replace; keeps the scan's effect incremental.
        replacement_margin: A candidate must beat the worst collected page's
            importance by this relative margin to trigger a replacement;
            avoids thrashing between near-equal pages.
        damping: PageRank damping factor.
    """

    importance_metric: str = "pagerank"
    max_replacements_per_scan: int = 10
    replacement_margin: float = 0.10
    damping: float = 0.85

    def __post_init__(self) -> None:
        if self.importance_metric not in ("pagerank", "hits"):
            raise ValueError('importance_metric must be "pagerank" or "hits"')
        if self.max_replacements_per_scan < 0:
            raise ValueError("max_replacements_per_scan must be non-negative")
        if self.replacement_margin < 0:
            raise ValueError("replacement_margin must be non-negative")
        if not 0.0 <= self.damping <= 1.0:
            raise ValueError("damping must be within [0, 1]")


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of one refinement scan.

    Attributes:
        importance: Importance score of every ranked URL (collected pages
            and candidates).
        replacements: ``(discarded_url, admitted_url)`` pairs applied.
        admitted: URLs newly admitted without displacing anything (possible
            while the collection is below capacity).
    """

    importance: Dict[str, float]
    replacements: Tuple[Tuple[str, str], ...]
    admitted: Tuple[str, ...]


class RankingModule:
    """Scans AllUrls and the Collection and applies the refinement decision.

    Args:
        allurls: Registry of discovered URLs.
        collurls: The collection URL priority queue.
        collection: The collection being refined.
        crawl_module: Used to discard replaced pages from the collection.
        config: Module configuration.
        capacity: Target number of pages in the collection; when ``None``
            the collection's own capacity is used.
    """

    def __init__(
        self,
        allurls: AllUrls,
        collurls: CollUrls,
        collection: Collection,
        crawl_module: CrawlModule,
        config: Optional[RankingModuleConfig] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self._allurls = allurls
        self._collurls = collurls
        self._collection = collection
        self._crawl_module = crawl_module
        self._config = config if config is not None else RankingModuleConfig()
        self._capacity = capacity if capacity is not None else collection.capacity
        self.scans_completed = 0
        self.pages_replaced = 0
        self.pages_admitted = 0
        # The live link graph and its sync state: ``_graph_outlinks`` holds
        # the out-link tuple last pushed into the graph per collected URL,
        # so a scan only touches pages whose links actually changed.
        self._graph = LinkGraph()
        self._graph_outlinks: Dict[str, Tuple[str, ...]] = {}
        # Warm-start vectors, indexed by interned node id (grown lazily;
        # NaN marks nodes never scored). Feeding the previous fixed point
        # back into power iteration is what makes steady-state scans cheap.
        self._warm_pagerank: Optional[np.ndarray] = None
        self._warm_hubs: Optional[np.ndarray] = None
        self._warm_authorities: Optional[np.ndarray] = None

    @property
    def graph(self) -> LinkGraph:
        """The live link graph (kept in sync with the collection)."""
        return self._graph

    # ------------------------------------------------------------------ #
    # Refinement scan
    # ------------------------------------------------------------------ #
    def refine(self, at: float) -> RefinementResult:
        """Run one refinement scan at virtual time ``at``.

        Computes importance over the collection's link structure, updates
        the stored importance of collected pages, admits candidate URLs
        while capacity remains, and replaces the least important collected
        pages with clearly more important candidates.
        """
        importance = _clamp_residue(self._compute_importance())
        working = self._collection.working_records()
        self._store_importance(importance, working)

        collected_or_queued = set(self._collurls.urls())
        for record in working:
            collected_or_queued.add(record.url)
        candidates = self._allurls.candidates(exclude=collected_or_queued)
        candidate_scores = sorted(
            ((importance.get(info.url, 0.0), info.url) for info in candidates),
            reverse=True,
        )

        # Hoisted capacity state: the collected-or-queued set is built once
        # and its cardinality maintained across admissions/replacements
        # (an admission adds one tracked URL; a replacement removes the
        # victim and adds the newcomer, net zero).
        tracked = len(collected_or_queued)
        at_capacity = self._capacity is not None

        # One ascending argsort of collected importance per scan, consumed
        # as a cursor: each replacement takes the next victim instead of
        # re-scanning the collection for the minimum.
        victims = sorted(
            ((importance.get(record.url, 0.0), record.url) for record in working)
        )
        victim_cursor = 0

        admitted: List[str] = []
        replacements: List[Tuple[str, str]] = []
        for score, url in candidate_scores:
            if len(replacements) >= self._config.max_replacements_per_scan:
                break
            if not (at_capacity and tracked >= self._capacity):
                self._collurls.schedule_front(url, at)
                tracked += 1
                admitted.append(url)
                self.pages_admitted += 1
                continue
            if victim_cursor >= len(victims):
                break
            victim_score, victim_url = victims[victim_cursor]
            if score <= victim_score * (1.0 + self._config.replacement_margin):
                break
            victim_cursor += 1
            self._replace(victim_url, url, at)
            replacements.append((victim_url, url))
            self.pages_replaced += 1

        self.scans_completed += 1
        return RefinementResult(
            importance=importance,
            replacements=tuple(replacements),
            admitted=tuple(admitted),
        )

    def importance_of_collection(self) -> Dict[str, float]:
        """Latest stored importance of the collected pages."""
        return {
            record.url: record.importance
            for record in self._collection.working_records()
        }

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serializable module state.

        Beyond the counters this carries the live link graph (interning
        order, edge buffers) and the warm-start vectors: a resumed run must
        feed power iteration the exact same starting vector over the exact
        same CSR as the uninterrupted run, or the converged floats — and
        with them the stored importance values — would drift at the ulp
        level and break bit-identical resume.
        """
        return {
            "scans_completed": self.scans_completed,
            "pages_replaced": self.pages_replaced,
            "pages_admitted": self.pages_admitted,
            "graph": self._graph.snapshot(),
            "graph_outlinks": {
                url: list(links) for url, links in self._graph_outlinks.items()
            },
            "warm": {
                "pagerank": _encode_vector(self._warm_pagerank),
                "hubs": _encode_vector(self._warm_hubs),
                "authorities": _encode_vector(self._warm_authorities),
            },
        }

    def restore_snapshot(self, state: dict) -> None:
        """Restore the state captured by :meth:`snapshot`."""
        self.scans_completed = int(state["scans_completed"])
        self.pages_replaced = int(state["pages_replaced"])
        self.pages_admitted = int(state["pages_admitted"])
        graph_state = state.get("graph")
        self._graph = LinkGraph()
        if graph_state is not None:
            self._graph.restore_snapshot(graph_state)
        self._graph_outlinks = {
            str(url): tuple(links)
            for url, links in state.get("graph_outlinks", {}).items()
        }
        warm = state.get("warm", {})
        self._warm_pagerank = _decode_vector(warm.get("pagerank"))
        self._warm_hubs = _decode_vector(warm.get("hubs"))
        self._warm_authorities = _decode_vector(warm.get("authorities"))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _sync_graph(self, records: Sequence[PageRecord]) -> None:
        """Apply the collection's out-link deltas to the live graph.

        One pass over the working records: pages whose out-links changed
        since the last scan (new pages, changed re-fetches) restate their
        edges; pages that left the collection drop theirs. Unchanged pages
        cost a dict lookup and a tuple compare.
        """
        synced = self._graph_outlinks
        graph = self._graph
        present = set()
        for record in records:
            url = record.url
            present.add(url)
            outlinks = tuple(record.outlinks)
            if synced.get(url) != outlinks:
                graph.set_outlinks(url, outlinks)
                synced[url] = outlinks
        if len(present) != len(synced):
            for url in [url for url in synced if url not in present]:
                graph.remove_page(url)
                del synced[url]

    def _compute_importance(self) -> Dict[str, float]:
        records = self._collection.working_records()
        self._sync_graph(records)
        graph = self._graph
        active_ids = graph.active_ids()
        if len(active_ids) == 0:
            return {}
        if self._config.importance_metric == "hits":
            ids, hubs, authorities = hits_scores(
                graph,
                hubs0=_project_warm(self._warm_hubs, active_ids),
                authorities0=_project_warm(self._warm_authorities, active_ids),
            )
            self._warm_hubs = _absorb_warm(
                self._warm_hubs, ids, hubs, graph.node_count
            )
            self._warm_authorities = _absorb_warm(
                self._warm_authorities, ids, authorities, graph.node_count
            )
            scores = authorities
        else:
            ids, scores = pagerank_scores(
                graph,
                damping=self._config.damping,
                x0=_project_warm(self._warm_pagerank, active_ids),
            )
            self._warm_pagerank = _absorb_warm(
                self._warm_pagerank, ids, scores, graph.node_count
            )
        url_of = graph.url_of
        return {
            url_of(node): score
            for node, score in zip(ids.tolist(), scores.tolist())
        }

    def _compute_importance_reference(self) -> Dict[str, float]:
        """The retired dense path: rebuild the dict graph, cold iteration.

        Pinned for the parity suite — refinement decisions driven by this
        path and by the sparse incremental path must be identical.
        """
        graph = {
            record.url: tuple(record.outlinks)
            for record in self._collection.working_records()
        }
        if not graph:
            return {}
        if self._config.importance_metric == "hits":
            _hubs, authorities = hits_reference(graph)
            return authorities
        return pagerank_reference(graph, damping=self._config.damping)

    def _store_importance(
        self, importance: Dict[str, float], records: Sequence[PageRecord]
    ) -> None:
        store = self._collection.store
        for record in records:
            score = importance.get(record.url, 0.0)
            # Skip no-op stores: steady-state scans leave most importance
            # values untouched, and re-storing them would churn the journal
            # and any write-behind backend for nothing.
            if record.importance != score:
                store(record.with_importance(score))

    def _replace(self, victim_url: str, new_url: str, at: float) -> None:
        self._crawl_module.discard(victim_url)
        self._collurls.remove(victim_url)
        self._collurls.schedule_front(new_url, at)


def _clamp_residue(importance: Dict[str, float]) -> Dict[str, float]:
    """Zero out sub-epsilon numerical residue before ranking decisions.

    HITS power iteration leaves geometric-decay dust (1e-38 and below) on
    nodes whose exact authority is zero; its magnitude depends on iteration
    count and summation order, so ordering candidates by it is ordering by
    implementation noise. Scores below a relative epsilon of the maximum
    are exactly zero for decision purposes, which makes the refinement
    decisions insensitive to which importance path produced the scores
    (PageRank's teleport term floors every score far above the epsilon, so
    this is a no-op there).
    """
    if not importance:
        return importance
    floor = max(importance.values()) * 1e-12
    return {
        url: (0.0 if score < floor else score)
        for url, score in importance.items()
    }


# ---------------------------------------------------------------------- #
# Warm-start plumbing
# ---------------------------------------------------------------------- #
def _project_warm(
    warm: Optional[np.ndarray], active_ids: np.ndarray
) -> Optional[np.ndarray]:
    """Previous scores for the active nodes (NaN where never scored)."""
    if warm is None:
        return None
    x0 = np.full(len(active_ids), np.nan)
    known = active_ids < len(warm)
    x0[known] = warm[active_ids[known]]
    return x0


def _absorb_warm(
    warm: Optional[np.ndarray],
    active_ids: np.ndarray,
    scores: np.ndarray,
    node_count: int,
) -> np.ndarray:
    """Scatter fresh scores back into the node-id-indexed warm vector."""
    if warm is None or len(warm) < node_count:
        grown = np.full(max(node_count, 1), np.nan)
        if warm is not None:
            grown[: len(warm)] = warm
        warm = grown
    warm[active_ids] = scores
    return warm


def _encode_vector(vector: Optional[np.ndarray]) -> Optional[list]:
    """JSON-safe warm vector: NaN travels as ``None``."""
    if vector is None:
        return None
    return [None if np.isnan(value) else value for value in vector.tolist()]


def _decode_vector(payload: Optional[list]) -> Optional[np.ndarray]:
    if payload is None:
        return None
    return np.array(
        [np.nan if value is None else float(value) for value in payload]
    )
