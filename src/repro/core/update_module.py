"""UpdateModule: keep the collection fresh (the update decision).

Figure 12: "the UpdateModule maintains the Collection fresh (update
decision). It constantly extracts the top entry from CollUrls, requests the
CrawlModule to crawl the page, and puts the crawled URL back into CollUrls.
The position of the crawled URL within CollUrls is determined by the page's
estimated change frequency."

Change frequencies are estimated from checksum-comparison histories with
either the EP (Poisson) or EB (Bayesian class) estimator of Section 5.3, and
the revisit schedule is produced by a pluggable
:class:`~repro.freshness.policies.RevisitPolicy`, optionally weighted by
page importance (the paper notes that highly important pages may deserve
more frequent visits than their change rate alone would justify).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api.registry import ESTIMATORS
from repro.core.collurls import CollUrls
from repro.core.crawl_module import BatchCrawlOutcome, CrawlModule, CrawlOutcome
from repro.estimation.change_history import ChangeHistory
from repro.estimation.rate_estimators import ChangeRateEstimator, build_rate_estimator
from repro.faults import (
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_RATE_LIMITED,
    STATUS_SOFT_404,
    STATUS_TIMEOUT,
    TRANSIENT_CODES,
    FailureTracker,
)
from repro.fetch.fetcher import STATUS_TO_CODE, FetchStatus
from repro.freshness.policies import RevisitPolicy, UniformRevisitPolicy

#: FetchStatus members that are *no observation* of the page (see
#: repro.faults.TRANSIENT_CODES): the fetch failed, the page may be fine.
_TRANSIENT_STATUSES = (
    FetchStatus.TIMEOUT,
    FetchStatus.SERVER_ERROR,
    FetchStatus.RATE_LIMITED,
    FetchStatus.SOFT_404,
)


@dataclass(frozen=True)
class UpdateModuleConfig:
    """Configuration of the UpdateModule.

    Attributes:
        crawl_budget_per_day: Total pages the crawler may fetch per day; the
            revisit policy spreads this budget over the collection.
        estimator: Name of a registered change-rate estimator — ``"ep"``
            (Poisson rate estimator) or ``"eb"`` (Bayesian frequency
            classes) out of the box; resolved through
            :data:`repro.api.registry.ESTIMATORS`.
        default_interval_days: Revisit interval assumed for a page before
            any change history exists.
        reallocation_interval_days: How often the revisit intervals are
            recomputed from the latest rate estimates.
        history_window_days: Trailing window of change history kept per page
            (the paper suggests roughly six months).
        use_importance: Whether the revisit policy may weight pages by their
            importance score.
    """

    crawl_budget_per_day: float = 1000.0
    estimator: str = "ep"
    default_interval_days: float = 7.0
    reallocation_interval_days: float = 1.0
    history_window_days: Optional[float] = 180.0
    use_importance: bool = False

    def __post_init__(self) -> None:
        if self.crawl_budget_per_day <= 0:
            raise ValueError("crawl_budget_per_day must be positive")
        ESTIMATORS.validate(self.estimator)
        if self.default_interval_days <= 0:
            raise ValueError("default_interval_days must be positive")
        if self.reallocation_interval_days <= 0:
            raise ValueError("reallocation_interval_days must be positive")


class UpdateModule:
    """Schedules revisits and maintains per-page change statistics.

    Args:
        collurls: The collection URL priority queue.
        crawl_module: The CrawlModule used to fetch pages.
        config: Module configuration.
        revisit_policy: Policy mapping estimated rates to revisit intervals;
            defaults to the uniform (fixed-frequency) policy.
        failure_tracker: Optional retry/circuit-breaker state for
            failure-aware crawling. ``None`` (the default) keeps every code
            path byte-identical to the fault-free engine.
    """

    def __init__(
        self,
        collurls: CollUrls,
        crawl_module: CrawlModule,
        config: UpdateModuleConfig,
        revisit_policy: Optional[RevisitPolicy] = None,
        failure_tracker: Optional[FailureTracker] = None,
    ) -> None:
        self._collurls = collurls
        self._crawl_module = crawl_module
        self._config = config
        self._policy = revisit_policy if revisit_policy is not None else UniformRevisitPolicy()
        self.failure_tracker = failure_tracker
        self._histories: Dict[str, ChangeHistory] = {}
        self._estimator: ChangeRateEstimator = build_rate_estimator(config.estimator)
        self._rate_estimates: Dict[str, float] = {}
        self._intervals: Dict[str, float] = {}
        self._importance: Dict[str, float] = {}
        self._last_reallocation: Optional[float] = None
        self._existence_cache: Optional[tuple] = None
        self.pages_processed = 0
        self.changes_detected = 0

    # ------------------------------------------------------------------ #
    # Main loop step
    # ------------------------------------------------------------------ #
    def process_next(self, at: float) -> Optional[CrawlOutcome]:
        """Pop the head of CollUrls, crawl it and reschedule it.

        Args:
            at: Current virtual time.

        Returns:
            The :class:`CrawlOutcome`, or ``None`` when CollUrls is empty.
        """
        head = self._collurls.pop()
        if head is None:
            return None
        url, _scheduled = head
        tracker = self.failure_tracker
        site: Optional[str] = None
        if tracker is not None:
            site = self._crawl_module.site_of(url)
            if tracker.quarantined(site, at):
                # Circuit breaker: the slot is spent but nothing is fetched;
                # the URL is deferred to the quarantine's probe time.
                self._collurls.schedule(url, tracker.defer(url, site, at))
                return None
        outcome = self._crawl_module.crawl(url, at)
        self.pages_processed += 1
        completed = outcome.completed_at

        if tracker is not None and outcome.fetch.status in _TRANSIENT_STATUSES:
            # Transient failure: no observation of the page was made, so the
            # change history and rate estimate stay untouched. The retry
            # policy decides whether the URL goes back into the queue.
            retry_at = tracker.on_failure(
                url,
                site,
                STATUS_TO_CODE[outcome.fetch.status],
                completed,
                outcome.fetch.retry_after,
            )
            if retry_at is not None:
                self._collurls.schedule(url, retry_at)
            else:
                # Retries exhausted: drop the page from the schedule (the
                # RankingModule will admit a replacement) but leave AllUrls
                # alone — the page was never observed to be gone.
                self._forget(url)
                self._crawl_module.discard(url)
            journal = self._crawl_module.journal
            if journal is not None:
                journal.on_outcome(outcome, self._crawl_module.collection)
            return outcome

        if not outcome.stored:
            # The page has disappeared (or is excluded): drop its statistics
            # and do not reschedule it; the RankingModule will admit a
            # replacement page on its next scan.
            self._forget(url)
            self._crawl_module.discard(url)
            journal = self._crawl_module.journal
            if journal is not None:
                journal.on_outcome(outcome, self._crawl_module.collection)
            return outcome

        if tracker is not None:
            tracker.on_success(url, site)
        self._observe(url, completed, outcome)
        self._maybe_reallocate(completed)
        next_visit = completed + self._interval_for(url)
        self._collurls.schedule(url, next_visit)
        journal = self._crawl_module.journal
        if journal is not None:
            journal.on_outcome(outcome, self._crawl_module.collection)
        return outcome

    # ------------------------------------------------------------------ #
    # Batched loop steps
    # ------------------------------------------------------------------ #
    def process_slots(self, slot_times: Sequence[float]) -> int:
        """Drain CollUrls through a whole window of crawl slots at once.

        Exactly equivalent to calling :meth:`process_next` once per slot
        time, in order — including the subtle cases: a page rescheduled
        early enough to be popped *again* within the same window, the head
        of the queue changing between slots, and a revisit-interval
        reallocation falling due mid-window.

        The trick is that the *queue dynamics* of a window are decidable
        without fetching anything: whether a fetch succeeds is an oracle
        existence test, and a successful fetch reschedules its page at
        ``completed + interval`` where the interval table is frozen between
        reallocations. So the window is driven in two phases. Phase one
        replays the pop/reschedule sequence against the real queue in bulk
        rounds — :meth:`~repro.core.collurls.CollUrls.pop_due` pops a run,
        a scan cuts it at the first entry that an earlier reschedule would
        overtake (ties go to the older sequence number), the tail is
        :meth:`~repro.core.collurls.CollUrls.restore`-d untouched, and the
        round's reschedules land through one
        :meth:`~repro.core.collurls.CollUrls.schedule_many` call, giving
        every entry the exact sequence number the per-event engine would
        have assigned. Phase two hands the accumulated ``(url, slot)``
        assignments — typically a whole tick window — to one
        :meth:`process_batch` call for the batched fetch/observe/estimate
        pipeline. Reallocation boundaries interrupt both phases: the
        triggering entry runs as a single-entry batch because the
        reallocation must see exactly the observations made before it and
        its reschedule uses the post-reallocation intervals.

        Args:
            slot_times: Virtual times of the crawl slots, ascending.

        Returns:
            Number of pages processed (slots with an empty queue are idle,
            exactly like ``process_next`` returning ``None``).
        """
        if self.failure_tracker is not None:
            # The failure-aware path is only needed when faults can actually
            # fire: without active status or latency models no transient
            # status and no breaker state can ever arise, so the plain (or
            # polite) engine is bit-identical — and pays nothing for the
            # armed tracker. This is what keeps a zero-rate fault layer
            # byte-for-byte equal to no fault layer at all.
            faults = self._crawl_module.fetcher.faults
            if faults is not None and (
                faults.has_status_models or faults.has_latency_models
            ):
                return self._process_slots_faulty(slot_times, self.failure_tracker)
        politeness = self._crawl_module.fetcher.politeness
        if politeness is not None:
            return self._process_slots_polite(slot_times, politeness)
        fetcher = self._crawl_module.fetcher
        latency = fetcher.latency_days
        web = fetcher.web
        horizon = web.horizon_days
        realloc_interval = self._config.reallocation_interval_days
        arrays = web.oracle_arrays()
        page_index = arrays.index
        # Plain lists: element access on NumPy arrays boxes a scalar per
        # read, which adds up over hundreds of thousands of slots. The
        # conversion is cached per OracleArrays instance (rebuilt with it
        # when the web mutates) instead of per tick window.
        cache = self._existence_cache
        if cache is None or cache[0] is not arrays:
            cache = (arrays, arrays.created.tolist(), arrays.deleted.tolist())
            self._existence_cache = cache
        created = cache[1]
        deleted = cache[2]

        pending_urls: List[str] = []
        pending_times: List[float] = []

        def flush() -> None:
            if pending_urls:
                self.process_batch(pending_urls, pending_times, reschedule=False)
                pending_urls.clear()
                pending_times.clear()

        default_interval = self._config.default_interval_days
        processed = 0
        slot_index = 0
        n_slots = len(slot_times)
        queue_empty = False
        while slot_index < n_slots and not queue_empty:
            last = self._last_reallocation
            # Re-read after every region: a reallocation rebinds the dict.
            intervals = self._intervals
            if last is None:
                boundary = slot_index
            else:
                # First slot whose completion would trigger a reallocation;
                # scanned once per reallocation region (linear overall).
                threshold = last + realloc_interval
                boundary = slot_index
                while (
                    boundary < n_slots
                    and min(slot_times[boundary] + latency, horizon) < threshold
                ):
                    boundary += 1
            if boundary == slot_index:
                # Reallocation due: flush the window so far (the trigger
                # must observe those visits' rate estimates), then process
                # the triggering entry on its own.
                flush()
                head = self._collurls.pop()
                if head is None:
                    break
                self.process_batch([head[0]], [slot_times[slot_index]])
                processed += 1
                slot_index += 1
                continue
            index_get = page_index.get
            intervals_get = intervals.get
            append_url = pending_urls.append
            append_time = pending_times.append
            pop_due = self._collurls.pop_due
            while slot_index < boundary:
                # Serve the head unconditionally (a crawl slot crawls the
                # earliest entry even when it is scheduled in the future),
                # then extend the run with pops bounded by the earliest
                # reschedule produced so far: an entry scheduled later than
                # that would be overtaken in the queue, ending the run.
                entries = pop_due(max_n=1)
                if not entries:
                    # Empty queue: every remaining slot is a no-op (only
                    # processing pushes entries back, and none is running).
                    queue_empty = True
                    break
                cut = 0
                earliest_reschedule = float("inf")
                reschedule_urls: List[str] = []
                reschedule_times: List[float] = []
                j = 0
                while True:
                    scheduled_time = entries[j][0]
                    if scheduled_time > earliest_reschedule:
                        # An earlier reschedule overtakes this entry (ties
                        # go to the older sequence number): end the run and
                        # put the tail back untouched.
                        self._collurls.restore(entries[j:])
                        break
                    url = entries[j][2]
                    slot_j = slot_times[slot_index + j]
                    page_id = index_get(url, -1)
                    snapshot_time = slot_j if slot_j < horizon else horizon
                    if (
                        page_id >= 0
                        and created[page_id] <= snapshot_time < deleted[page_id]
                    ):
                        # The fetch will succeed: its reschedule is frozen
                        # arithmetic. Failed fetches reschedule nothing, so
                        # they never tighten the run bound.
                        completed_j = slot_j + latency
                        if completed_j > horizon:
                            completed_j = horizon
                        interval = intervals_get(url)
                        if interval is None or interval <= 0:
                            interval = default_interval
                        next_visit = completed_j + interval
                        reschedule_urls.append(url)
                        reschedule_times.append(next_visit)
                        if next_visit < earliest_reschedule:
                            earliest_reschedule = next_visit
                    append_url(url)
                    append_time(slot_j)
                    cut = j = j + 1
                    if j == len(entries):
                        remaining = boundary - slot_index - j
                        if remaining <= 0:
                            break
                        more = pop_due(until=earliest_reschedule, max_n=remaining)
                        if not more:
                            break
                        entries.extend(more)
                self._collurls.schedule_many(reschedule_urls, reschedule_times)
                processed += cut
                slot_index += cut
        flush()
        return processed

    def _process_slots_faulty(
        self, slot_times: Sequence[float], tracker: FailureTracker
    ) -> int:
        """Failure-aware variant of :meth:`process_slots`.

        With a :class:`~repro.faults.FailureTracker` configured the queue
        dynamics depend on stateful per-fetch decisions (retry backoff,
        circuit breakers), so phase one runs fully scalar: each slot pops
        the queue head, predicts the fetch's status — faults are pure
        functions of ``(url, site, slot_time, seed)`` and success is an
        oracle existence test, so the prediction equals what the batched
        fetch will resolve — mutates the tracker exactly once, and commits
        its reschedule (next visit, retry backoff or breaker probe)
        immediately. That consumes CollUrls sequence numbers in exact fetch
        order, so the queue is reference-like at every pop and no overtake
        machinery is needed. Phase two still resolves the accumulated
        fetches through one :meth:`process_batch` call per region; the
        frozen per-entry decisions ride along so the tracker is never
        consulted twice.

        Reallocation boundaries match :meth:`process_next`: only a
        *successful* fetch can trigger one, the trigger flushes the pending
        batch first (the reallocation must see those observations), and the
        triggering entry runs as a single-entry batch so its reschedule
        uses the post-reallocation intervals.
        """
        fetcher = self._crawl_module.fetcher
        politeness = fetcher.politeness
        faults = fetcher.faults
        latency = fetcher.latency_days
        web = fetcher.web
        horizon = web.horizon_days
        realloc_interval = self._config.reallocation_interval_days
        arrays = web.oracle_arrays()
        page_index = arrays.index
        site_table = arrays.site_ids
        cache = self._existence_cache
        if cache is None or cache[0] is not arrays:
            cache = (arrays, arrays.created.tolist(), arrays.deleted.tolist())
            self._existence_cache = cache
        created = cache[1]
        deleted = cache[2]
        default_interval = self._config.default_interval_days
        has_status = faults is not None and faults.has_status_models
        has_latency = faults is not None and faults.has_latency_models
        use_starts = politeness is not None

        pending_urls: List[str] = []
        pending_times: List[float] = []
        pending_starts: List[float] = []
        pending_decisions: List[tuple] = []

        def flush() -> None:
            if pending_urls:
                self.process_batch(
                    pending_urls,
                    pending_times,
                    reschedule=False,
                    resolved_at=pending_starts if use_starts else None,
                    failure_decisions=pending_decisions,
                )
                pending_urls.clear()
                pending_times.clear()
                pending_starts.clear()
                pending_decisions.clear()

        processed = 0
        slot_index = 0
        n_slots = len(slot_times)
        while slot_index < n_slots:
            at = slot_times[slot_index]
            head = self._collurls.pop()
            if head is None:
                # Empty queue: every remaining slot is a no-op.
                break
            url = head[0]
            page_id = page_index.get(url, -1)
            site = site_table[page_id] if page_id >= 0 else None
            if tracker.quarantined(site, at):
                self._collurls.schedule(url, tracker.defer(url, site, at))
                slot_index += 1
                continue
            if politeness is not None and site is not None:
                start = politeness.earliest_allowed(site, at)
                politeness.record_request(site, start)
            else:
                start = at
            slot_latency = latency
            if has_latency:
                slot_latency = latency * faults.latency_factor_one(at)
            completed = start + slot_latency
            if completed > horizon:
                completed = horizon
            code = STATUS_OK
            retry_after = 0.0
            if has_status and page_id >= 0:
                code, retry_after = faults.resolve_one(url, site, at)
            if STATUS_TIMEOUT <= code <= STATUS_RATE_LIMITED:
                status = code
            else:
                snapshot_time = start if start < horizon else horizon
                alive = (
                    page_id >= 0
                    and created[page_id] <= snapshot_time < deleted[page_id]
                )
                if not alive:
                    status = STATUS_NOT_FOUND
                elif code == STATUS_SOFT_404:
                    status = STATUS_SOFT_404
                else:
                    status = STATUS_OK
            if status == STATUS_OK:
                tracker.on_success(url, site)
                last = self._last_reallocation
                if last is None or completed - last >= realloc_interval:
                    # Reallocation boundary (only successful fetches can
                    # trigger one, like process_next's early return).
                    flush()
                    self.process_batch(
                        [url],
                        [at],
                        resolved_at=[start] if use_starts else None,
                        failure_decisions=[("ok",)],
                    )
                    processed += 1
                    slot_index += 1
                    continue
                interval = self._intervals.get(url)
                if interval is None or interval <= 0:
                    interval = default_interval
                self._collurls.schedule(url, completed + interval)
                decision = ("ok",)
            elif status == STATUS_NOT_FOUND:
                decision = ("gone",)
            else:
                retry_at = tracker.on_failure(
                    url, site, status, completed, retry_after
                )
                if retry_at is not None:
                    self._collurls.schedule(url, retry_at)
                    decision = ("retry", retry_at)
                else:
                    decision = ("drop",)
            pending_urls.append(url)
            pending_times.append(at)
            pending_starts.append(start)
            pending_decisions.append(decision)
            processed += 1
            slot_index += 1
        flush()
        return processed

    def _process_slots_polite(self, slot_times: Sequence[float], politeness) -> int:
        """Politeness-aware variant of :meth:`process_slots`.

        Politeness shifts every fetch instant by per-site state, which
        breaks the plain engine's core shortcut: completion times are no
        longer monotone in pop order (a night-window snap can push one
        fetch days past its slot), so reallocation boundaries cannot be
        located by scanning slot times up front. Instead each round pops an
        optimistic candidate run, resolves the whole run's politeness in
        one batched peek (:meth:`PolitenessPolicy.earliest_allowed_many`,
        bit-identical to the sequential recurrence), predicts per-entry
        completions and reschedules with the frozen interval table, and
        cuts the run at the first entry that either

        * would be overtaken in the queue by an earlier reschedule of this
          round (ties go to the older sequence number, as in the plain
          engine), or
        * completes past the reallocation threshold — failed fetches never
          trigger a reallocation, matching :meth:`process_next`'s early
          return.

        The accepted prefix commits its politeness state
        (:meth:`PolitenessPolicy.record_requests`) and its reschedules, and
        joins the pending fetch batch with its resolved start instants; the
        tail is :meth:`~repro.core.collurls.CollUrls.restore`-d untouched
        and re-popped next round. A reallocation trigger flushes the
        pending batch and runs the triggering entry alone, exactly like the
        plain engine. Failed fetches still advance the per-site politeness
        state — the scalar fetch path records the request before it learns
        the page is gone.

        Like the plain engine, each round serves the queue head
        unconditionally and then extends with pops bounded by the earliest
        reschedule produced so far (``pop_due(until=...)``), so entries
        that an earlier reschedule would overtake are mostly never popped
        at all; the batched politeness peek runs once per extension chunk,
        not per entry.
        """
        fetcher = self._crawl_module.fetcher
        latency = fetcher.latency_days
        web = fetcher.web
        horizon = web.horizon_days
        realloc_interval = self._config.reallocation_interval_days
        arrays = web.oracle_arrays()
        page_index = arrays.index
        site_table = arrays.site_ids
        site_index_table = arrays.site_index
        site_names = arrays.site_names
        created = arrays.created
        deleted = arrays.deleted
        # Plain-list existence columns for the scalar single-entry path
        # (shared with the plain engine's cache; see process_slots).
        cache = self._existence_cache
        if cache is None or cache[0] is not arrays:
            cache = (arrays, arrays.created.tolist(), arrays.deleted.tolist())
            self._existence_cache = cache
        created_list = cache[1]
        deleted_list = cache[2]
        default_interval = self._config.default_interval_days

        pending_urls: List[str] = []
        pending_times: List[float] = []
        pending_starts: List[float] = []

        def flush() -> None:
            if pending_urls:
                self.process_batch(
                    pending_urls,
                    pending_times,
                    reschedule=False,
                    resolved_at=pending_starts,
                )
                pending_urls.clear()
                pending_times.clear()
                pending_starts.clear()

        processed = 0
        slot_index = 0
        n_slots = len(slot_times)
        while slot_index < n_slots:
            if self._last_reallocation is None:
                # The first stored completion reallocates, whatever it is:
                # single-step with the scalar politeness resolution until
                # the first region boundary exists.
                flush()
                head = self._collurls.pop()
                if head is None:
                    break
                url = head[0]
                at = slot_times[slot_index]
                page_id = page_index.get(url, -1)
                if page_id >= 0:
                    site_id = site_table[page_id]
                    start = politeness.earliest_allowed(site_id, at)
                    politeness.record_request(site_id, start)
                else:
                    start = at
                self.process_batch([url], [at], resolved_at=[start])
                processed += 1
                slot_index += 1
                continue
            # One round: serve the queue head unconditionally (a crawl slot
            # crawls the earliest entry even when scheduled in the future),
            # then extend with chunks bounded by the earliest reschedule.
            chunk = self._collurls.pop_due(max_n=1)
            if not chunk:
                # Empty queue: every remaining slot is a no-op.
                break
            earliest_reschedule = float("inf")
            intervals_get = self._intervals.get
            while chunk:
                m = len(chunk)
                if m == 1:
                    # Scalar fast path: every round starts with a
                    # single-entry head pop, and one entry has no
                    # intra-chunk politeness dependencies, so the scalar
                    # resolution (the identical float operations) applies
                    # directly and the NumPy fixed costs are skipped.
                    entry = chunk[0]
                    url = entry[2]
                    slot = slot_times[slot_index]
                    page_id = page_index.get(url, -1)
                    if page_id >= 0:
                        site_id = site_table[page_id]
                        start = politeness.earliest_allowed(site_id, slot)
                    else:
                        site_id = None
                        start = slot
                    if entry[0] > earliest_reschedule:
                        self._collurls.restore(chunk)
                        break
                    snapshot_time = start if start < horizon else horizon
                    ok_head = (
                        page_id >= 0
                        and created_list[page_id]
                        <= snapshot_time
                        < deleted_list[page_id]
                    )
                    completed_head = start + latency
                    if completed_head > horizon:
                        completed_head = horizon
                    if site_id is not None:
                        politeness.record_request(site_id, start)
                    if ok_head and not (
                        completed_head - self._last_reallocation < realloc_interval
                    ):
                        # Reallocation boundary.
                        flush()
                        self.process_batch([url], [slot], resolved_at=[start])
                        processed += 1
                        slot_index += 1
                        break
                    if ok_head:
                        interval = intervals_get(url)
                        if interval is None or interval <= 0:
                            interval = default_interval
                        next_visit_head = completed_head + interval
                        self._collurls.schedule(url, next_visit_head)
                        if next_visit_head < earliest_reschedule:
                            earliest_reschedule = next_visit_head
                    pending_urls.append(url)
                    pending_times.append(slot)
                    pending_starts.append(start)
                    processed += 1
                    slot_index += 1
                    remaining = n_slots - slot_index
                    if remaining <= 0:
                        break
                    chunk = self._collurls.pop_due(
                        until=earliest_reschedule, max_n=remaining
                    )
                    continue
                urls = [entry[2] for entry in chunk]
                ids_arr = np.fromiter(
                    (page_index.get(url, -1) for url in urls), dtype=np.int64, count=m
                )
                site_idx = np.where(
                    ids_arr >= 0, site_index_table[np.maximum(ids_arr, 0)], -1
                )
                slots = slot_times[slot_index : slot_index + m]
                starts = politeness.earliest_allowed_many_indexed(
                    site_idx, site_names, slots
                )
                snapshot_times = np.minimum(starts, horizon)
                ok = ids_arr >= 0
                known_pos = np.nonzero(ok)[0]
                if known_pos.size:
                    known_ids = ids_arr[known_pos]
                    known_snaps = snapshot_times[known_pos]
                    ok[known_pos] = (created[known_ids] <= known_snaps) & (
                        known_snaps < deleted[known_ids]
                    )
                completed = np.minimum(starts + latency, horizon)
                # Predicted reschedules under the frozen intervals; failed
                # fetches reschedule nothing and never trigger anything.
                ok_list = ok.tolist()
                completed_list = completed.tolist()
                next_visit = np.full(m, np.inf)
                for j, ok_j in enumerate(ok_list):
                    if ok_j:
                        interval = intervals_get(urls[j])
                        if interval is None or interval <= 0:
                            interval = default_interval
                        next_visit[j] = completed_list[j] + interval
                trigger = ok & (
                    (completed - self._last_reallocation) >= realloc_interval
                )
                # An entry is still the next pop only if no reschedule
                # produced before it (in this round) lands earlier; ties go
                # to the older sequence number, hence the strict >.
                bound = np.empty(m)
                bound[0] = earliest_reschedule
                if m > 1:
                    np.minimum.accumulate(
                        np.minimum(next_visit[:-1], earliest_reschedule),
                        out=bound[1:],
                    )
                scheduled = np.fromiter(
                    (entry[0] for entry in chunk), dtype=float, count=m
                )
                overtake = scheduled > bound
                cut_overtake = int(np.argmax(overtake)) if overtake.any() else m
                cut_realloc = int(np.argmax(trigger)) if trigger.any() else m
                cut = cut_overtake if cut_overtake < cut_realloc else cut_realloc
                if cut > 0:
                    politeness.record_requests_indexed(site_idx[:cut], starts[:cut])
                    reschedule_urls = [
                        url for url, ok_j in zip(urls[:cut], ok_list[:cut]) if ok_j
                    ]
                    reschedule_times = [
                        t
                        for t, ok_j in zip(next_visit[:cut].tolist(), ok_list[:cut])
                        if ok_j
                    ]
                    self._collurls.schedule_many(reschedule_urls, reschedule_times)
                    pending_urls.extend(urls[:cut])
                    pending_times.extend(slots[:cut])
                    pending_starts.extend(starts[:cut].tolist())
                    processed += cut
                    slot_index += cut
                    if reschedule_times:
                        chunk_min = min(reschedule_times)
                        if chunk_min < earliest_reschedule:
                            earliest_reschedule = chunk_min
                if cut < m:
                    if cut_overtake <= cut_realloc:
                        # Overtaken: the queue head changed; end the round
                        # and re-pop. An entry both overtaken and past the
                        # reallocation threshold is not actually the next
                        # pop, so overtake wins the tie.
                        self._collurls.restore(chunk[cut:])
                        break
                    # Reallocation boundary at entry `cut`: everything
                    # observed so far must fold into the estimates first,
                    # the rest of the chunk must be back in the queue when
                    # the reallocation snapshots it, and the triggering
                    # entry runs as a single-entry batch so its reschedule
                    # uses the post-reallocation intervals.
                    politeness.record_requests_indexed(
                        site_idx[cut : cut + 1], starts[cut : cut + 1]
                    )
                    self._collurls.restore(chunk[cut + 1 :])
                    flush()
                    self.process_batch(
                        [urls[cut]], [slots[cut]], resolved_at=[float(starts[cut])]
                    )
                    processed += 1
                    slot_index += 1
                    break
                remaining = n_slots - slot_index
                if remaining <= 0:
                    break
                chunk = self._collurls.pop_due(
                    until=earliest_reschedule, max_n=remaining
                )
        flush()
        return processed

    def process_batch(
        self,
        urls: Sequence[str],
        times: Sequence[float],
        reschedule: bool = True,
        resolved_at: Optional[Sequence[float]] = None,
        failure_decisions: Optional[Sequence[tuple]] = None,
    ) -> BatchCrawlOutcome:
        """Crawl a batch of URLs and fold the outcomes into the statistics.

        The batched counterpart of :meth:`process_next` minus the queue
        pop: fetches resolve through one
        :meth:`~repro.core.crawl_module.CrawlModule.crawl_many` call
        (batched oracle + vectorized change detection), change histories
        are appended in bulk, and rates are re-estimated through the
        estimator's
        :meth:`~repro.estimation.rate_estimators.ChangeRateEstimator.update_batch`.

        A URL may appear several times in one batch (a hot page revisited
        within a tick window); occurrences are folded in order. Estimator
        updates are chunked at URL repeats so strategies that consume one
        observation per call (EB) see each observation exactly once, in
        visit order. Callers must ensure batches do not straddle a
        reallocation boundary (see :meth:`process_slots`).

        Args:
            urls: URLs popped from CollUrls, in pop order.
            times: The crawl slot time of each URL.
            reschedule: Push each stored page's next visit back into
                CollUrls. :meth:`process_slots` passes ``False`` because it
                already replayed the reschedules while simulating the queue.
            resolved_at: Optional politeness-resolved start instant per URL
                (already recorded against the policy state), forwarded to
                the fetch layer.
            failure_decisions: Per-URL frozen failure decisions from
                :meth:`_process_slots_faulty` — ``("ok",)``, ``("gone",)``,
                ``("retry", retry_at)`` or ``("drop",)``. When given, the
                failure tracker has already been mutated (once per fetch,
                in fetch order) and is not consulted again here; when
                ``None`` with a tracker configured, the tracker is
                consulted inline per entry.

        Returns:
            The :class:`BatchCrawlOutcome` from the CrawlModule.
        """
        outcome = self._crawl_module.crawl_many(urls, times, resolved_at=resolved_at)
        self.pages_processed += len(urls)
        stored = outcome.stored
        changed = outcome.changed
        was_new = outcome.was_new
        completed = outcome.completed_at.tolist()

        chunk_urls: List[str] = []
        chunk_histories: List[ChangeHistory] = []
        chunk_members: set = set()
        reschedule_urls: List[str] = []
        reschedule_completed: List[float] = []
        first_completed: Optional[float] = None

        def flush_estimates() -> None:
            if not chunk_urls:
                return
            rates = self._estimator.update_batch(chunk_urls, chunk_histories)
            rate_estimates = self._rate_estimates
            for chunk_url, rate in zip(chunk_urls, rates):
                rate_estimates[chunk_url] = rate
            chunk_urls.clear()
            chunk_histories.clear()
            chunk_members.clear()

        histories = self._histories
        window_days = self._config.history_window_days
        tracker = self.failure_tracker
        if tracker is not None and failure_decisions is None:
            faults = self._crawl_module.fetcher.faults
            if faults is None or not (
                faults.has_status_models or faults.has_latency_models
            ):
                # No active fault weather: transient statuses cannot arise
                # and the tracker holds no per-site state, so the per-page
                # on_success/on_failure consults are guaranteed no-ops.
                tracker = None
        statuses = outcome.statuses
        retry_after = outcome.retry_after
        for i, (url, stored_i, changed_i, was_new_i, completed_i) in enumerate(
            zip(outcome.urls, stored, changed, was_new, completed)
        ):
            if not stored_i:
                transient = statuses is not None and statuses[i] in TRANSIENT_CODES
                if failure_decisions is not None:
                    retry = failure_decisions[i][0] == "retry"
                elif tracker is not None and transient:
                    # Inline tracker consult (direct process_batch callers):
                    # same decision the failure-aware engine would freeze.
                    retry_at = tracker.on_failure(
                        url,
                        self._crawl_module.site_of(url),
                        statuses[i],
                        completed_i,
                        0.0 if retry_after is None else retry_after[i],
                    )
                    retry = retry_at is not None
                    if retry and reschedule:
                        self._collurls.schedule(url, retry_at)
                else:
                    retry = False
                if retry:
                    # Transient failure with a retry scheduled: no
                    # observation was made, so the page's statistics and
                    # queue entry survive untouched. Terminal transient
                    # drops fall through to the forget path below.
                    continue
                # The page has disappeared (or is excluded), or its retries
                # are exhausted: drop its statistics and do not reschedule
                # it; the RankingModule will admit a replacement page on its
                # next scan. If an earlier visit of this page is awaiting
                # its estimator update, fold it first — its rate is set and
                # then forgotten, exactly as the per-URL order would have it.
                if url in chunk_members:
                    flush_estimates()
                self._forget(url)
                self._crawl_module.discard(url)
                continue
            if tracker is not None and failure_decisions is None:
                tracker.on_success(url, self._crawl_module.site_of(url))
            if first_completed is None:
                first_completed = completed_i
            if reschedule:
                reschedule_urls.append(url)
                reschedule_completed.append(completed_i)
            history = histories.get(url)
            if history is None or was_new_i:
                histories[url] = ChangeHistory(
                    first_visit=completed_i,
                    window_days=window_days,
                )
                self._estimator.reset_page(url)
                continue
            if url in chunk_members:
                # Second visit of the same page within the batch: the
                # estimator must fold the first observation before the
                # next one is recorded.
                flush_estimates()
            history.record_visit(completed_i, changed_i)
            if changed_i:
                self.changes_detected += 1
            chunk_urls.append(url)
            chunk_histories.append(history)
            chunk_members.add(url)

        flush_estimates()
        if first_completed is not None:
            self._maybe_reallocate(first_completed)
        if reschedule_urls:
            self._collurls.schedule_many(
                reschedule_urls,
                [
                    completed_i + self._interval_for(url)
                    for url, completed_i in zip(reschedule_urls, reschedule_completed)
                ],
            )
        journal = self._crawl_module.journal
        if journal is not None:
            journal.on_batch(outcome, self._crawl_module.collection)
        return outcome

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def estimated_rate(self, url: str) -> Optional[float]:
        """Latest change-rate estimate for ``url`` (changes/day)."""
        return self._rate_estimates.get(url)

    def estimated_rates(self) -> Dict[str, float]:
        """All current change-rate estimates."""
        return dict(self._rate_estimates)

    def set_importance(self, importance: Dict[str, float]) -> None:
        """Receive the latest importance scores from the RankingModule."""
        self._importance = dict(importance)

    def forget(self, url: str) -> None:
        """Drop all statistics for a page removed from the collection."""
        self._forget(url)

    def history(self, url: str) -> Optional[ChangeHistory]:
        """The change history of ``url`` (``None`` before its first visit)."""
        return self._histories.get(url)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _observe(self, url: str, at: float, outcome: CrawlOutcome) -> None:
        history = self._histories.get(url)
        if history is None or outcome.was_new:
            self._histories[url] = ChangeHistory(
                first_visit=at, window_days=self._config.history_window_days
            )
            self._estimator.reset_page(url)
            return
        history.record_visit(at, outcome.changed)
        if outcome.changed:
            self.changes_detected += 1
        self._rate_estimates[url] = self._estimator.update(url, history)

    def _maybe_reallocate(self, at: float) -> None:
        if (
            self._last_reallocation is not None
            and at - self._last_reallocation < self._config.reallocation_interval_days
        ):
            return
        self._last_reallocation = at
        # Queue order, not dict-insertion order: the allocation below sums
        # the rates, and float summation order matters at the ulp level.
        # Dict-insertion order depends on the operational path (the batched
        # engine's pop/restore round trips move entries to the dict end),
        # while (time, sequence) queue order is a pure function of the
        # queue contents both engines agree on bit-for-bit.
        urls = self._collurls.urls_in_queue_order() + list(
            self._rate_estimates.keys()
        )
        urls = list(dict.fromkeys(urls))
        if not urls:
            return
        # Scheduling rates with priors for unknown pages: a page with no
        # history yet is assumed to change about once per default revisit
        # interval; a page never seen to change gets a small floor rate
        # rather than exactly zero, so the optimal allocation keeps
        # re-checking it occasionally and the estimator can recover from an
        # initial "this page never changes" conclusion. Built inline — the
        # dict spans the whole collection at every reallocation.
        estimates = self._rate_estimates
        default_rate = 1.0 / self._config.default_interval_days
        floor_rate = 0.5 / (self._config.history_window_days or 180.0)
        rates = {}
        for url in urls:
            estimate = estimates.get(url)
            if estimate is None:
                rates[url] = default_rate
            else:
                rates[url] = estimate if estimate > floor_rate else floor_rate
        importance = self._importance if self._config.use_importance else None
        self._intervals = self._policy.intervals(
            rates, self._config.crawl_budget_per_day, importance
        )

    def _interval_for(self, url: str) -> float:
        interval = self._intervals.get(url)
        if interval is None or interval <= 0:
            return self._config.default_interval_days
        return interval

    def _forget(self, url: str) -> None:
        self._histories.pop(url, None)
        self._estimator.forget(url)
        self._rate_estimates.pop(url, None)
        self._intervals.pop(url, None)

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serializable module state.

        Dict key order is semantic and survives the JSON round trip (both
        ``json.dumps`` and ``json.loads`` preserve object member order):
        ``rate_estimates`` insertion order feeds :meth:`_maybe_reallocate`'s
        float reductions, which are ulp-sensitive to summation order.
        """
        state = {
            "histories": {
                url: history.state_dict()
                for url, history in self._histories.items()
            },
            "rate_estimates": dict(self._rate_estimates),
            "intervals": dict(self._intervals),
            "importance": dict(self._importance),
            "last_reallocation": self._last_reallocation,
            "estimator": self._estimator.state_dict(),
            "pages_processed": self.pages_processed,
            "changes_detected": self.changes_detected,
        }
        if self.failure_tracker is not None:
            # Key present only for failure-aware runs: fault-free snapshots
            # stay byte-identical to the pre-fault format.
            state["failures"] = self.failure_tracker.snapshot()
        return state

    @classmethod
    def merge_snapshots(cls, snapshots: Sequence[dict]) -> dict:
        """Combine per-shard :meth:`snapshot` payloads into one document.

        Shards own disjoint URL universes (site-affine partitioning), so
        the URL-keyed tables union without collisions; the union iterates
        ``snapshots`` in order, which makes the merged document a pure
        function of the (deterministically ordered) shard results. The
        module-level counters sum. Per-estimator internals are *not*
        blended into one estimator state — each shard's estimator observed
        only its own pages, so blending would fabricate a history no
        crawler ever had; instead the merged document keeps every shard's
        estimator state verbatim under ``"shards"`` and the scalar tables
        a consumer actually reads (rates, intervals, importance) merged.

        A single-shard merge returns that snapshot unchanged — this is
        what makes ``shards=1`` bit-identical to the unsharded engine.
        """
        snapshots = list(snapshots)
        if not snapshots:
            raise ValueError("merge_snapshots needs at least one snapshot")
        if len(snapshots) == 1:
            return snapshots[0]
        merged = {
            "histories": {},
            "rate_estimates": {},
            "intervals": {},
            "importance": {},
            "last_reallocation": None,
            "estimator": None,
            "pages_processed": 0,
            "changes_detected": 0,
            "shards": [],
        }
        for snapshot in snapshots:
            for table in ("histories", "rate_estimates", "intervals"):
                for url, value in snapshot[table].items():
                    if url in merged[table]:
                        raise ValueError(
                            f"URL {url!r} appears in more than one shard "
                            "snapshot; shard universes must be disjoint"
                        )
                    merged[table][url] = value
            # Importance is *derived* data — the ranking scan scores every
            # link-graph node, including foreign-site link targets a shard
            # discovered but never crawled, so scores for a foreign root can
            # legitimately appear in several shards. First shard wins
            # (shard-index order), which keeps the merge deterministic; the
            # crawled-page tables above stay strictly disjoint.
            for url, value in snapshot["importance"].items():
                merged["importance"].setdefault(url, value)
            last = snapshot["last_reallocation"]
            if last is not None and (
                merged["last_reallocation"] is None
                or last > merged["last_reallocation"]
            ):
                merged["last_reallocation"] = last
            merged["pages_processed"] += int(snapshot["pages_processed"])
            merged["changes_detected"] += int(snapshot["changes_detected"])
            merged["shards"].append(snapshot["estimator"])
        failure_states = [s["failures"] for s in snapshots if "failures" in s]
        if failure_states:
            merged["failures"] = FailureTracker.merge_snapshots(failure_states)
        return merged

    def restore_snapshot(self, state: dict) -> None:
        """Rebuild module state exactly as captured by :meth:`snapshot`."""
        self._histories = {
            str(url): ChangeHistory.from_state(history_state)
            for url, history_state in state["histories"].items()
        }
        self._rate_estimates = {
            str(url): float(rate) for url, rate in state["rate_estimates"].items()
        }
        self._intervals = {
            str(url): float(interval)
            for url, interval in state["intervals"].items()
        }
        self._importance = {
            str(url): float(score) for url, score in state["importance"].items()
        }
        last = state["last_reallocation"]
        self._last_reallocation = None if last is None else float(last)
        self._estimator.load_state(state["estimator"])
        # Rebuildable cache over the web's oracle arrays; drop it so the
        # restored module lazily rebinds to the current web.
        self._existence_cache = None
        self.pages_processed = int(state["pages_processed"])
        self.changes_detected = int(state["changes_detected"])
        if self.failure_tracker is not None and "failures" in state:
            self.failure_tracker.restore_snapshot(state["failures"])
