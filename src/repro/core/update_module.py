"""UpdateModule: keep the collection fresh (the update decision).

Figure 12: "the UpdateModule maintains the Collection fresh (update
decision). It constantly extracts the top entry from CollUrls, requests the
CrawlModule to crawl the page, and puts the crawled URL back into CollUrls.
The position of the crawled URL within CollUrls is determined by the page's
estimated change frequency."

Change frequencies are estimated from checksum-comparison histories with
either the EP (Poisson) or EB (Bayesian class) estimator of Section 5.3, and
the revisit schedule is produced by a pluggable
:class:`~repro.freshness.policies.RevisitPolicy`, optionally weighted by
page importance (the paper notes that highly important pages may deserve
more frequent visits than their change rate alone would justify).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.api.registry import ESTIMATORS
from repro.core.collurls import CollUrls
from repro.core.crawl_module import CrawlModule, CrawlOutcome
from repro.estimation.change_history import ChangeHistory
from repro.estimation.rate_estimators import ChangeRateEstimator, build_rate_estimator
from repro.freshness.policies import RevisitPolicy, UniformRevisitPolicy


@dataclass(frozen=True)
class UpdateModuleConfig:
    """Configuration of the UpdateModule.

    Attributes:
        crawl_budget_per_day: Total pages the crawler may fetch per day; the
            revisit policy spreads this budget over the collection.
        estimator: Name of a registered change-rate estimator — ``"ep"``
            (Poisson rate estimator) or ``"eb"`` (Bayesian frequency
            classes) out of the box; resolved through
            :data:`repro.api.registry.ESTIMATORS`.
        default_interval_days: Revisit interval assumed for a page before
            any change history exists.
        reallocation_interval_days: How often the revisit intervals are
            recomputed from the latest rate estimates.
        history_window_days: Trailing window of change history kept per page
            (the paper suggests roughly six months).
        use_importance: Whether the revisit policy may weight pages by their
            importance score.
    """

    crawl_budget_per_day: float = 1000.0
    estimator: str = "ep"
    default_interval_days: float = 7.0
    reallocation_interval_days: float = 1.0
    history_window_days: Optional[float] = 180.0
    use_importance: bool = False

    def __post_init__(self) -> None:
        if self.crawl_budget_per_day <= 0:
            raise ValueError("crawl_budget_per_day must be positive")
        ESTIMATORS.validate(self.estimator)
        if self.default_interval_days <= 0:
            raise ValueError("default_interval_days must be positive")
        if self.reallocation_interval_days <= 0:
            raise ValueError("reallocation_interval_days must be positive")


class UpdateModule:
    """Schedules revisits and maintains per-page change statistics.

    Args:
        collurls: The collection URL priority queue.
        crawl_module: The CrawlModule used to fetch pages.
        config: Module configuration.
        revisit_policy: Policy mapping estimated rates to revisit intervals;
            defaults to the uniform (fixed-frequency) policy.
    """

    def __init__(
        self,
        collurls: CollUrls,
        crawl_module: CrawlModule,
        config: UpdateModuleConfig,
        revisit_policy: Optional[RevisitPolicy] = None,
    ) -> None:
        self._collurls = collurls
        self._crawl_module = crawl_module
        self._config = config
        self._policy = revisit_policy if revisit_policy is not None else UniformRevisitPolicy()
        self._histories: Dict[str, ChangeHistory] = {}
        self._estimator: ChangeRateEstimator = build_rate_estimator(config.estimator)
        self._rate_estimates: Dict[str, float] = {}
        self._intervals: Dict[str, float] = {}
        self._importance: Dict[str, float] = {}
        self._last_reallocation: Optional[float] = None
        self.pages_processed = 0
        self.changes_detected = 0

    # ------------------------------------------------------------------ #
    # Main loop step
    # ------------------------------------------------------------------ #
    def process_next(self, at: float) -> Optional[CrawlOutcome]:
        """Pop the head of CollUrls, crawl it and reschedule it.

        Args:
            at: Current virtual time.

        Returns:
            The :class:`CrawlOutcome`, or ``None`` when CollUrls is empty.
        """
        head = self._collurls.pop()
        if head is None:
            return None
        url, _scheduled = head
        outcome = self._crawl_module.crawl(url, at)
        self.pages_processed += 1
        completed = outcome.completed_at

        if not outcome.stored:
            # The page has disappeared (or is excluded): drop its statistics
            # and do not reschedule it; the RankingModule will admit a
            # replacement page on its next scan.
            self._forget(url)
            self._crawl_module.discard(url)
            return outcome

        self._observe(url, completed, outcome)
        self._maybe_reallocate(completed)
        next_visit = completed + self._interval_for(url)
        self._collurls.schedule(url, next_visit)
        return outcome

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def estimated_rate(self, url: str) -> Optional[float]:
        """Latest change-rate estimate for ``url`` (changes/day)."""
        return self._rate_estimates.get(url)

    def estimated_rates(self) -> Dict[str, float]:
        """All current change-rate estimates."""
        return dict(self._rate_estimates)

    def set_importance(self, importance: Dict[str, float]) -> None:
        """Receive the latest importance scores from the RankingModule."""
        self._importance = dict(importance)

    def forget(self, url: str) -> None:
        """Drop all statistics for a page removed from the collection."""
        self._forget(url)

    def history(self, url: str) -> Optional[ChangeHistory]:
        """The change history of ``url`` (``None`` before its first visit)."""
        return self._histories.get(url)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _observe(self, url: str, at: float, outcome: CrawlOutcome) -> None:
        history = self._histories.get(url)
        if history is None or outcome.was_new:
            self._histories[url] = ChangeHistory(
                first_visit=at, window_days=self._config.history_window_days
            )
            self._estimator.reset_page(url)
            return
        history.record_visit(at, outcome.changed)
        if outcome.changed:
            self.changes_detected += 1
        self._rate_estimates[url] = self._estimator.update(url, history)

    def _maybe_reallocate(self, at: float) -> None:
        if (
            self._last_reallocation is not None
            and at - self._last_reallocation < self._config.reallocation_interval_days
        ):
            return
        self._last_reallocation = at
        urls = self._collurls.urls() + list(self._rate_estimates.keys())
        urls = list(dict.fromkeys(urls))
        if not urls:
            return
        rates = {url: self._scheduling_rate(url) for url in urls}
        importance = self._importance if self._config.use_importance else None
        self._intervals = self._policy.intervals(
            rates, self._config.crawl_budget_per_day, importance
        )

    def _scheduling_rate(self, url: str) -> float:
        """Change rate used for scheduling, with priors for unknown pages.

        A page with no history yet is assumed to change about once per
        default revisit interval; a page that has never been seen to change
        is given a small floor rate rather than exactly zero, so that the
        optimal allocation keeps re-checking it occasionally and the
        estimator can recover from an initial "this page never changes"
        conclusion.
        """
        estimate = self._rate_estimates.get(url)
        if estimate is None:
            return 1.0 / self._config.default_interval_days
        floor_window = self._config.history_window_days or 180.0
        return max(estimate, 0.5 / floor_window)

    def _interval_for(self, url: str) -> float:
        interval = self._intervals.get(url)
        if interval is None or interval <= 0:
            return self._config.default_interval_days
        return interval

    def _forget(self, url: str) -> None:
        self._histories.pop(url, None)
        self._estimator.forget(url)
        self._rate_estimates.pop(url, None)
        self._intervals.pop(url, None)
