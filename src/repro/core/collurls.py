"""CollUrls: the priority queue of collection URLs.

Figure 12: "CollUrls is implemented as a priority-queue, where the URLs to
be crawled early are placed in the front." The UpdateModule pops the head,
crawls it and pushes it back with its next scheduled visit time; the
RankingModule pushes newly admitted URLs to the very front so they are
crawled immediately, and removes URLs it decides to drop from the
collection.

The implementation is a binary heap keyed by ``(scheduled_time, sequence)``
with lazy deletion, so pushes, pops and removals are all logarithmic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple


class CollUrls:
    """Priority queue of URLs ordered by their scheduled visit time."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, str]] = []
        self._scheduled: Dict[str, Tuple[float, int]] = {}
        self._counter = itertools.count()

    def __contains__(self, url: str) -> bool:
        return url in self._scheduled

    def __len__(self) -> int:
        return len(self._scheduled)

    def schedule(self, url: str, visit_time: float) -> None:
        """Insert ``url`` with the given visit time (rescheduling if present).

        Rescheduling replaces the previous entry; the old heap entry is
        invalidated lazily.
        """
        sequence = next(self._counter)
        self._scheduled[url] = (visit_time, sequence)
        heapq.heappush(self._heap, (visit_time, sequence, url))

    def schedule_front(self, url: str, now: float) -> None:
        """Place ``url`` at the very front of the queue.

        The RankingModule uses this for newly admitted pages: "The URL for
        this new page is placed on the top of CollUrls, so that the
        UpdateModule can crawl the page immediately."
        """
        head_time = self.peek_time()
        front_time = now if head_time is None else min(now, head_time)
        self.schedule(url, front_time - 1e-9)

    def pop(self) -> Optional[Tuple[str, float]]:
        """Remove and return ``(url, scheduled_time)`` of the earliest entry.

        Returns ``None`` when the queue is empty.
        """
        while self._heap:
            visit_time, sequence, url = heapq.heappop(self._heap)
            current = self._scheduled.get(url)
            if current is None or current != (visit_time, sequence):
                continue
            del self._scheduled[url]
            return url, visit_time
        return None

    def peek(self) -> Optional[Tuple[str, float]]:
        """The earliest ``(url, scheduled_time)`` without removing it."""
        while self._heap:
            visit_time, sequence, url = self._heap[0]
            current = self._scheduled.get(url)
            if current is None or current != (visit_time, sequence):
                heapq.heappop(self._heap)
                continue
            return url, visit_time
        return None

    def peek_time(self) -> Optional[float]:
        """Scheduled time of the earliest entry (``None`` when empty)."""
        head = self.peek()
        return None if head is None else head[1]

    def remove(self, url: str) -> bool:
        """Drop ``url`` from the queue; returns False when it was not queued."""
        if url not in self._scheduled:
            return False
        del self._scheduled[url]
        return True

    def scheduled_time(self, url: str) -> Optional[float]:
        """The currently scheduled visit time of ``url`` (``None`` if absent)."""
        entry = self._scheduled.get(url)
        return None if entry is None else entry[0]

    def urls(self) -> List[str]:
        """All queued URLs (unordered)."""
        return list(self._scheduled.keys())
