"""CollUrls: the priority queue of collection URLs.

Figure 12: "CollUrls is implemented as a priority-queue, where the URLs to
be crawled early are placed in the front." The UpdateModule pops the head,
crawls it and pushes it back with its next scheduled visit time; the
RankingModule pushes newly admitted URLs to the very front so they are
crawled immediately, and removes URLs it decides to drop from the
collection.

The implementation is a binary heap keyed by ``(scheduled_time, sequence)``
with lazy deletion, so pushes, pops and removals are all logarithmic.
Ordering among entries that share a scheduled time is resolved purely by
the sequence number — front-of-queue placement uses a *negative* sequence
counter instead of nudging times by epsilons, which keeps bulk scheduling
collision-safe: identical times never collide ambiguously and no float
granularity games are needed.

Besides the scalar operations there is a bulk interface —
:meth:`pop_due` / :meth:`schedule_many` / :meth:`restore` — used by the
batched crawl engine to drain and refill all crawl slots of a tick window
in a handful of calls instead of one heap round-trip per fetched page.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

#: A queue entry as returned by :meth:`CollUrls.pop_due`:
#: ``(scheduled_time, sequence, url)`` — the heap's native key layout, so
#: bulk pops hand entries over without re-packing, and the sequence makes an
#: entry restorable at its exact original queue position.
QueueEntry = Tuple[float, int, str]


class CollUrls:
    """Priority queue of URLs ordered by ``(scheduled_time, sequence)``.

    The URL-to-entry map stores the *same tuple object* that sits in the
    heap, so staleness checks during lazy deletion are identity comparisons
    rather than tuple comparisons.
    """

    def __init__(self) -> None:
        self._heap: List[QueueEntry] = []
        self._scheduled: Dict[str, QueueEntry] = {}
        # Plain-int counters (not itertools.count) so the queue can be
        # snapshotted and restored exactly for checkpoint/resume.
        self._counter = 0
        # Front-of-queue entries take sequence numbers from a *decreasing*
        # negative counter: the most recently admitted page is crawled first
        # (the paper's "placed on the top of CollUrls"), deterministically
        # and without perturbing any scheduled time.
        self._front_counter = -1

    def __contains__(self, url: str) -> bool:
        return url in self._scheduled

    def __len__(self) -> int:
        return len(self._scheduled)

    def schedule(self, url: str, visit_time: float) -> None:
        """Insert ``url`` with the given visit time (rescheduling if present).

        Rescheduling replaces the previous entry; the old heap entry is
        invalidated lazily. Entries scheduled at the same time keep their
        scheduling order (sequence numbers are the tie-break).
        """
        entry = (visit_time, self._counter, url)
        self._counter += 1
        self._scheduled[url] = entry
        heapq.heappush(self._heap, entry)

    def schedule_many(self, urls: Sequence[str], visit_times: Sequence[float]) -> None:
        """Bulk :meth:`schedule`: one call for a whole batch of reschedules.

        Equivalent to calling :meth:`schedule` once per ``(url, time)`` pair
        in order — including the sequence-number assignment, so ties between
        equal times resolve identically.
        """
        if len(urls) != len(visit_times):
            raise ValueError("urls and visit_times must have the same length")
        counter = self._counter
        scheduled = self._scheduled
        heap = self._heap
        if len(urls) * 8 > len(heap):
            for url, visit_time in zip(urls, visit_times):
                entry = (visit_time, counter, url)
                counter += 1
                scheduled[url] = entry
                heap.append(entry)
            heapq.heapify(heap)
        else:
            for url, visit_time in zip(urls, visit_times):
                entry = (visit_time, counter, url)
                counter += 1
                scheduled[url] = entry
                heapq.heappush(heap, entry)
        self._counter = counter

    def schedule_front(self, url: str, now: float) -> None:
        """Place ``url`` at the very front of the queue.

        The RankingModule uses this for newly admitted pages: "The URL for
        this new page is placed on the top of CollUrls, so that the
        UpdateModule can crawl the page immediately." Front entries share
        the current head's scheduled time and win the tie through a negative
        sequence number (later admissions first), so repeated admissions
        never rely on float-epsilon nudges that could collide.
        """
        head_time = self.peek_time()
        front_time = now if head_time is None else min(now, head_time)
        entry = (front_time, self._front_counter, url)
        self._front_counter -= 1
        self._scheduled[url] = entry
        heapq.heappush(self._heap, entry)

    def pop(self) -> Optional[Tuple[str, float]]:
        """Remove and return ``(url, scheduled_time)`` of the earliest entry.

        Returns ``None`` when the queue is empty.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            url = entry[2]
            if self._scheduled.get(url) is not entry:
                continue
            del self._scheduled[url]
            return url, entry[0]
        return None

    def pop_due(
        self, until: float = math.inf, max_n: Optional[int] = None
    ) -> List[QueueEntry]:
        """Pop up to ``max_n`` entries scheduled at or before ``until``.

        Entries come out in exact queue order — ``(scheduled_time,
        sequence)`` ascending — i.e. the same sequence of URLs that repeated
        :meth:`pop` calls would produce. The batched crawl engine drains a
        whole tick window with one call and puts any unconsumed tail back
        with :meth:`restore`.

        Args:
            until: Only entries with ``scheduled_time <= until`` are popped
                (the default pops regardless of time, matching :meth:`pop`,
                which serves the head to every crawl slot even when it is
                scheduled in the future).
            max_n: Cap on the number of entries popped (``None`` = no cap).

        Returns:
            ``(scheduled_time, sequence, url)`` tuples, earliest first.
        """
        popped: List[QueueEntry] = []
        append = popped.append
        limit = len(self._scheduled) if max_n is None else max_n
        heap = self._heap
        scheduled = self._scheduled
        heappop = heapq.heappop
        while heap and len(popped) < limit:
            entry = heap[0]
            url = entry[2]
            if scheduled.get(url) is not entry:
                heappop(heap)
                continue
            if entry[0] > until:
                break
            heappop(heap)
            del scheduled[url]
            append(entry)
        return popped

    def restore(self, entries: Sequence[QueueEntry]) -> None:
        """Reinsert entries popped by :meth:`pop_due` at their exact positions.

        The original ``(scheduled_time, sequence)`` key is preserved, so the
        restored entries resume the exact queue order they had before being
        popped. Only valid for entries whose URLs have not been rescheduled
        since they were popped.
        """
        for entry in entries:
            url = entry[2]
            if url in self._scheduled:
                raise ValueError(
                    f"cannot restore {url!r}: it has been rescheduled since"
                )
            self._scheduled[url] = entry
            heapq.heappush(self._heap, entry)

    def peek(self) -> Optional[Tuple[str, float]]:
        """The earliest ``(url, scheduled_time)`` without removing it."""
        while self._heap:
            entry = self._heap[0]
            url = entry[2]
            if self._scheduled.get(url) is not entry:
                heapq.heappop(self._heap)
                continue
            return url, entry[0]
        return None

    def peek_time(self) -> Optional[float]:
        """Scheduled time of the earliest entry (``None`` when empty)."""
        head = self.peek()
        return None if head is None else head[1]

    def remove(self, url: str) -> bool:
        """Drop ``url`` from the queue; returns False when it was not queued."""
        if url not in self._scheduled:
            return False
        del self._scheduled[url]
        return True

    def scheduled_time(self, url: str) -> Optional[float]:
        """The currently scheduled visit time of ``url`` (``None`` if absent)."""
        entry = self._scheduled.get(url)
        return None if entry is None else entry[0]

    def entry_for(self, url: str) -> Optional[QueueEntry]:
        """The live ``(scheduled_time, sequence, url)`` entry (``None`` if absent)."""
        return self._scheduled.get(url)

    def urls(self) -> List[str]:
        """All queued URLs (unordered)."""
        return list(self._scheduled.keys())

    def urls_in_queue_order(self) -> List[str]:
        """All queued URLs in exact queue order — ``(time, sequence)``.

        Unlike :meth:`urls`, whose order reflects dict-insertion history
        and therefore the *operational* path taken (a
        :meth:`pop_due`/:meth:`restore` round trip moves entries to the
        end even though their queue positions are unchanged), this order
        is a pure function of the queue contents. Order-sensitive
        consumers — anything that feeds a float reduction, where
        summation order shifts results at the ulp level — must use this
        so that engines taking different operational paths over the same
        queue state see the same sequence.
        """
        entries = sorted(self._scheduled.values())
        return [entry[2] for entry in entries]

    def partition(self, owner_of, n: int) -> List["CollUrls"]:
        """Split the queue into ``n`` disjoint queues by an ownership map.

        The live-resharding seam: ``owner_of(url)`` names the destination
        queue (an index in ``[0, n)``) of each entry. Entries keep their
        exact ``(scheduled_time, sequence)`` keys — relative order among
        entries landing in the same partition is untouched — and every
        partition inherits both counters, so new scheduling activity in any
        partition continues the original sequence space without colliding
        with preserved keys. Entries are distributed in canonical queue
        order, making the result a pure function of the queue contents.

        Args:
            owner_of: Maps a URL to its partition index.
            n: Number of partitions.

        Returns:
            ``n`` fresh queues; this queue is not modified.
        """
        if n < 1:
            raise ValueError("n must be at least 1")
        parts = [CollUrls() for _ in range(n)]
        for part in parts:
            part._counter = self._counter
            part._front_counter = self._front_counter
        for entry in sorted(self._scheduled.values()):
            index = owner_of(entry[2])
            if not 0 <= index < n:
                raise ValueError(
                    f"owner_of({entry[2]!r}) returned {index}, outside [0, {n})"
                )
            part = parts[index]
            part._scheduled[entry[2]] = entry
            part._heap.append(entry)
        for part in parts:
            heapq.heapify(part._heap)
        return parts

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serializable queue state: live entries + both counters.

        Entries are emitted in canonical ``(time, sequence)`` order (not
        dict-insertion order) so the snapshot is a pure function of the
        queue contents, independent of the operational path taken.
        """
        return {
            "entries": [list(entry) for entry in sorted(self._scheduled.values())],
            "next_sequence": self._counter,
            "next_front_sequence": self._front_counter,
        }

    def restore_snapshot(self, state: dict) -> None:
        """Rebuild the queue exactly as captured by :meth:`snapshot`.

        Each entry tuple is built once and shared between the heap and the
        URL map, preserving the identity-based lazy-deletion invariant.
        """
        heap: List[QueueEntry] = []
        scheduled: Dict[str, QueueEntry] = {}
        for time, sequence, url in state["entries"]:
            entry = (float(time), int(sequence), str(url))
            scheduled[entry[2]] = entry
            heap.append(entry)
        heapq.heapify(heap)
        self._heap = heap
        self._scheduled = scheduled
        self._counter = int(state["next_sequence"])
        self._front_counter = int(state["next_front_sequence"])
