"""The incremental-crawler architecture (Section 5, Figures 11 and 12).

The architecture has three modules and three data structures:

* :class:`~repro.core.allurls.AllUrls` — every URL the crawler has ever
  discovered, with the in-link evidence needed to estimate the importance of
  pages that are not yet collected;
* :class:`~repro.core.collurls.CollUrls` — the URLs that are (or will be) in
  the collection, kept in a priority queue ordered by scheduled visit time;
* the ``Collection`` (from :mod:`repro.storage`) — the stored page copies;
* :class:`~repro.core.crawl_module.CrawlModule` — fetches a page, stores it
  in the collection and forwards extracted URLs to AllUrls;
* :class:`~repro.core.update_module.UpdateModule` — keeps the collection
  fresh: pops the next URL from CollUrls, requests a crawl, detects changes
  by checksum comparison, re-estimates the page's change frequency (EP or
  EB) and pushes the URL back with its next visit time;
* :class:`~repro.core.ranking_module.RankingModule` — keeps the collection
  high-quality: recomputes importance (PageRank / HITS), and replaces the
  least important collected page with a more important uncollected one (the
  refinement decision).

:class:`~repro.core.incremental_crawler.IncrementalCrawler` wires everything
together on a virtual clock; :class:`~repro.core.periodic_crawler.PeriodicCrawler`
is the baseline the paper contrasts it with (batch crawls into a shadow
collection, swapped at the end of each cycle).
"""

from repro.core.allurls import AllUrls, UrlInfo
from repro.core.collurls import CollUrls
from repro.core.crawl_module import CrawlModule, CrawlOutcome
from repro.core.update_module import UpdateModule, UpdateModuleConfig
from repro.core.ranking_module import RankingModule, RankingModuleConfig
from repro.core.incremental_crawler import (
    CrawlRunResult,
    IncrementalCrawler,
    IncrementalCrawlerConfig,
)
from repro.core.periodic_crawler import PeriodicCrawler, PeriodicCrawlerConfig
from repro.core.quality import collection_quality, true_page_importance

__all__ = [
    "AllUrls",
    "UrlInfo",
    "CollUrls",
    "CrawlModule",
    "CrawlOutcome",
    "UpdateModule",
    "UpdateModuleConfig",
    "RankingModule",
    "RankingModuleConfig",
    "IncrementalCrawler",
    "IncrementalCrawlerConfig",
    "CrawlRunResult",
    "PeriodicCrawler",
    "PeriodicCrawlerConfig",
    "collection_quality",
    "true_page_importance",
]
