"""Collection quality metrics.

The second goal of the incremental crawler (Section 5.1) is to "improve
quality of the local collection by replacing less-important pages with more
important ones". To evaluate that goal in the simulation, we compute a
ground-truth importance for every page — PageRank over the *entire*
synthetic web, which the crawler never sees — and score a collection by how
much of the best attainable importance mass it captures.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.ranking.pagerank import pagerank
from repro.simweb.linkgraph import page_link_graph
from repro.simweb.web import SimulatedWeb


def true_page_importance(web: SimulatedWeb, damping: float = 0.85) -> Dict[str, float]:
    """Ground-truth importance: PageRank over the whole synthetic web.

    Args:
        web: The synthetic web.
        damping: PageRank damping factor.

    Returns:
        Mapping from URL to its true importance score.
    """
    graph = page_link_graph(list(web.pages()))
    return pagerank(graph, damping=damping)


class CollectionQualityCache:
    """Repeated quality sampling against a fixed ground truth, made cheap.

    :func:`collection_quality` re-sorts the full-web importance table on
    every call to find the attainable mass — fine for a one-off report,
    wasteful inside a crawler's measurement event that fires hundreds of
    times per run. This cache computes the ground-truth PageRank and the
    best-``capacity`` attainable mass once; each sample is then a single
    pass of dictionary lookups over the collection's URLs.

    Args:
        web: The synthetic web (ground truth).
        capacity: Collection capacity the denominator is computed for.
        damping: PageRank damping factor.
        subset: Optional URL universe the denominator is restricted to —
            a site-affine crawl shard can only ever collect pages of the
            sites it owns, so its attainable mass is the best ``capacity``
            pages *within that subset*. Importance itself stays the
            whole-web ground truth. ``None`` keeps the full-web denominator.
    """

    def __init__(
        self,
        web: SimulatedWeb,
        capacity: int,
        damping: float = 0.85,
        subset: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._importance = true_page_importance(web, damping=damping)
        if subset is None:
            scores = list(self._importance.values())
        else:
            scores = [self._importance.get(url, 0.0) for url in subset]
        best_scores = sorted(scores, reverse=True)[:capacity]
        self._attainable = sum(best_scores)

    @property
    def importance(self) -> Dict[str, float]:
        """The ground-truth importance table (shared, do not mutate)."""
        return self._importance

    @property
    def attainable_mass(self) -> float:
        """The denominator: best-``capacity`` importance mass attainable."""
        return self._attainable

    def quality(self, collected_urls: Iterable[str]) -> float:
        """Quality of a collection given its current URLs.

        Matches :func:`collection_quality` exactly (same fold order, same
        clamping) for the capacity the cache was built with.
        """
        urls = list(collected_urls)
        if not urls:
            return 0.0
        achieved = sum(self._importance.get(url, 0.0) for url in urls)
        if self._attainable <= 0:
            return 0.0
        return min(1.0, achieved / self._attainable)


def collection_quality(
    collected_urls: Iterable[str],
    importance: Dict[str, float],
    capacity: Optional[int] = None,
) -> float:
    """How much of the attainable importance mass a collection captures.

    Args:
        collected_urls: URLs currently stored in the collection.
        importance: Ground-truth importance of every URL (from
            :func:`true_page_importance`).
        capacity: Collection capacity; the denominator is the importance of
            the best ``capacity`` pages. Defaults to the number of collected
            URLs.

    Returns:
        A value in [0, 1]; 1 means the collection holds exactly the most
        important pages it could hold.
    """
    urls = list(collected_urls)
    if not urls:
        return 0.0
    if capacity is None:
        capacity = len(urls)
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    achieved = sum(importance.get(url, 0.0) for url in urls)
    best_scores = sorted(importance.values(), reverse=True)[:capacity]
    attainable = sum(best_scores)
    if attainable <= 0:
        return 0.0
    return min(1.0, achieved / attainable)
