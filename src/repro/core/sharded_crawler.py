"""Multi-process sharded crawls: site-affine workers, deterministic merge.

Section 5.2's architecture is explicitly designed so that "multiple
CrawlModules may run in parallel". This module scales the *whole* crawler
that way: the URL space is partitioned site-affinely into
:class:`~repro.core.sharding.ShardView` slices, each slice runs the exact
batched engine (:class:`~repro.core.sharding.ShardEngine`) in a worker
process against a shared-memory copy of the web
(:mod:`repro.simweb.shared`), and the coordinator merges the per-shard
results deterministically.

Determinism contract:

* ``shards=1`` never spawns a process — it degenerates to the plain
  :class:`~repro.core.incremental_crawler.IncrementalCrawler`, so the
  result is bit-identical to the batched engine (series, counters,
  estimator state, per-record fetch timestamps).
* For ``shards=N`` the run is a pure function of ``(web, config, shards)``:
  each shard's sub-crawl is sequential and self-contained (politeness
  state, link discovery and quality denominators never cross the
  site-affine boundary), and the merge folds shard results in shard-index
  order regardless of which worker finished first. Re-running with any
  ``workers`` count reproduces the same result bit for bit.

Per-shard persistence lives in sibling stores (``{path}.shard00``, ...)
with namespaced state keys, so a SIGKILLed sharded run resumes cleanly:
completed shards short-circuit from their stored result, interrupted ones
resume from their checkpoints.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_module
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.api.registry import STORAGE_BACKENDS
from repro.core.incremental_crawler import (
    CrawlRunResult,
    IncrementalCrawler,
    IncrementalCrawlerConfig,
)
from repro.core.sharding import ShardView
from repro.core.update_module import UpdateModule
from repro.simulation.freshness_tracker import FreshnessTimeSeries
from repro.simweb.shared import SharedWeb, SharedWebPayload, install_parent_death_signal
from repro.simweb.web import SimulatedWeb
from repro.storage.checkpoint import (
    RESULT_STATE_KEY,
    CollectionJournal,
    CrawlCheckpointer,
    namespaced_state_key,
)
from repro.storage.records import record_to_dict


def shard_namespace(index: int) -> str:
    """State-key namespace of shard ``index`` (also its store suffix)."""
    return f"shard{index:02d}"


def shard_store_path(base: Optional[str], index: int) -> Optional[str]:
    """Sibling store path of shard ``index`` (``None`` stays volatile)."""
    if base is None:
        return None
    return f"{base}.{shard_namespace(index)}"


@dataclass(frozen=True)
class ShardRunSpec:
    """Everything one worker needs to run its shard, picklable.

    The web itself is *not* here — only the :class:`SharedWebPayload`
    naming the shared-memory blocks all workers attach to.
    """

    payload: Optional[SharedWebPayload]
    view: ShardView
    config: IncrementalCrawlerConfig
    duration_days: float
    start_time: float
    storage: Optional[str]
    store_path: Optional[str]
    checkpoint_every: Optional[float]
    spec_hash: Optional[str]
    resume: bool


@dataclass
class ShardedCrawlResult(CrawlRunResult):
    """A merged sharded run: the usual series/counters plus shard extras.

    Attributes:
        records: Final collection records of every shard (as dicts, in
            shard-index order, each shard's records in its collection
            order) — the merged collection image.
        estimator_state: Merged :meth:`UpdateModule.snapshot` document
            (see :meth:`UpdateModule.merge_snapshots`); for a single-shard
            run this is the crawler's snapshot verbatim.
        shards: Number of non-empty shards that ran.
        workers: Worker-process cap the run was launched with.
        per_shard: One summary dict per shard, in shard-index order.
    """

    records: List[dict] = field(default_factory=list)
    estimator_state: Optional[dict] = None
    shards: int = 1
    workers: int = 1
    per_shard: List[dict] = field(default_factory=list)
    #: Failure counters by class summed across shards (``None`` when the
    #: run had no failure tracker, i.e. neither faults nor retry).
    failures: Optional[Dict[str, int]] = None


def _run_shard(
    job: ShardRunSpec,
    web: SimulatedWeb,
    on_measure: Optional[Callable[[float, float, Optional[float]], None]] = None,
) -> dict:
    """Run one shard's sub-crawl to completion and package the outcome.

    Shared by the worker processes and (with ``shards=1``) the inline
    path; everything shard-specific — store path, namespace, resume —
    comes from the job.
    """
    namespace = shard_namespace(job.view.index)
    backend = None
    journal = None
    checkpointer = None
    resume_state = None
    result_key = namespaced_state_key(namespace, RESULT_STATE_KEY)
    try:
        if job.storage is not None:
            backend = STORAGE_BACKENDS.create(job.storage, path=job.store_path)
            journal = CollectionJournal(backend)
            if job.checkpoint_every is not None:
                checkpointer = CrawlCheckpointer(
                    backend,
                    job.checkpoint_every,
                    spec_hash=job.spec_hash,
                    namespace=namespace,
                )
        if job.resume:
            if backend is None or checkpointer is None:
                raise ValueError(
                    "shard resume requires a persistent store and "
                    "checkpoint_every"
                )
            saved = backend.load_state(result_key)
            if saved is not None:
                if job.spec_hash is not None and saved.get("spec_hash") != job.spec_hash:
                    raise ValueError(
                        f"shard {job.view.index} store holds a result for a "
                        "different spec"
                    )
                if saved.get("n_shards") != job.view.n_shards:
                    raise ValueError(
                        f"shard {job.view.index} store was written by a "
                        f"{saved.get('n_shards')}-shard run, resuming a "
                        f"{job.view.n_shards}-shard one"
                    )
                return saved
            resume_state = checkpointer.load()
            # A shard killed before its first checkpoint starts over —
            # exactly what the unsharded resume path would require too.

        if job.view.is_total:
            # Total view: the plain crawler, seeds carried through the view
            # (they are exactly what an unsharded run would use).
            crawler = IncrementalCrawler(
                web, job.config, seed_urls=list(job.view.seed_urls)
            )
        else:
            crawler = IncrementalCrawler(web, job.config, shard_view=job.view)
        crawler.on_measure = on_measure
        outcome = crawler.run(
            job.duration_days,
            start_time=job.start_time,
            journal=journal,
            checkpointer=checkpointer,
            resume_state=resume_state,
        )
        payload = {
            "shard_index": job.view.index,
            "n_shards": job.view.n_shards,
            "spec_hash": job.spec_hash,
            "capacity": job.view.capacity,
            "budget_per_day": job.view.budget_per_day,
            "freshness": {
                "times": [float(t) for t in outcome.freshness.times],
                "freshness": [float(f) for f in outcome.freshness.freshness],
                "age": [float(a) for a in outcome.freshness.age],
            },
            "quality": {
                "times": [float(t) for t in outcome.quality_times],
                "values": [float(q) for q in outcome.quality],
            },
            "counters": {
                "pages_crawled": outcome.pages_crawled,
                "pages_failed": outcome.pages_failed,
                "changes_detected": outcome.changes_detected,
                "pages_replaced": outcome.pages_replaced,
            },
            "update": crawler.update_module.snapshot(),
            "records": [
                record_to_dict(record)
                for record in crawler.collection.working_records()
            ],
            "attainable": crawler.quality_attainable(),
            "fetch_count": crawler._fetcher.fetch_count,
            "failures": crawler.failure_counters(),
        }
        if backend is not None:
            backend.save_state(result_key, payload)
            backend.flush()
        return payload
    finally:
        if backend is not None:
            backend.close()


def _shard_worker(job: ShardRunSpec, results: "multiprocessing.Queue") -> None:
    """Worker-process entry point: attach the shared web, run, report.

    Every message is ``(kind, shard_index, *rest)``; the coordinator
    treats ``"error"`` as fatal. Workers die with the coordinator
    (PDEATHSIG), so a SIGKILLed parent never leaves orphans racing a
    resumed run for the shard stores.
    """
    install_parent_death_signal()
    try:
        web = job.payload.materialise()
        shard = job.view.index

        def stream_window(at, freshness, quality):
            results.put(("window", shard, at, freshness, quality))

        payload = _run_shard(job, web, on_measure=stream_window)
        results.put(("result", shard, payload))
    except BaseException:
        try:
            results.put(("error", job.view.index, traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already broken
            pass


class ShardedCrawler:
    """Coordinator: split, fan out to worker processes, merge deterministically.

    Args:
        web: The synthetic web to crawl.
        config: Crawler configuration for the *whole* crawl (its capacity
            and budget are split across shards; its ``engine`` must be
            ``"batched"`` — every shard runs the batched tick-window
            engine).
        seed_urls: Starting URLs; defaults to every site's root page.
        shards: Number of site-affine shards to partition into. ``1``
            degenerates to the plain in-process crawler, bit-identically.
        workers: Maximum worker processes alive at once. The result is
            independent of this knob — it only controls parallelism.
        storage: Optional registered backend name for per-shard journals,
            checkpoints and results.
        store_path: Optional base store path; shard ``k`` persists to
            ``{store_path}.shardNN``. ``None`` keeps shard stores volatile.
        checkpoint_every: Optional per-shard checkpoint cadence (days).
        spec_hash: Optional spec hash stamped into shard checkpoints and
            results, so a resume refuses foreign state.
        worker_retries: How many times a crashed or killed shard worker is
            re-run before the coordinator gives up and raises (with the
            worker's traceback or exit code). Recovery requires per-shard
            persistence (``storage``, ``store_path`` and
            ``checkpoint_every``): the respawned worker resumes from the
            shard's last checkpoint — or short-circuits from its stored
            result if the crash hit after completion — so the merged
            result stays bit-identical to an uninterrupted run. Without
            persistence a worker failure is immediately fatal, exactly the
            pre-retry behaviour.
    """

    #: Upper bound on a worker join before escalating to terminate/kill;
    #: generous, because a healthy worker exits within milliseconds of
    #: reporting its result.
    JOIN_TIMEOUT_SECONDS: float = 30.0

    def __init__(
        self,
        web: SimulatedWeb,
        config: Optional[IncrementalCrawlerConfig] = None,
        seed_urls: Optional[Sequence[str]] = None,
        *,
        shards: int = 1,
        workers: int = 1,
        storage: Optional[str] = None,
        store_path: Optional[str] = None,
        checkpoint_every: Optional[float] = None,
        spec_hash: Optional[str] = None,
        worker_retries: int = 2,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if worker_retries < 0:
            raise ValueError("worker_retries must be non-negative")
        self._web = web
        self._config = config if config is not None else IncrementalCrawlerConfig()
        if self._config.engine != "batched":
            raise ValueError(
                "sharded crawls drive the batched engine in every worker; "
                f"got engine={self._config.engine!r}"
            )
        self._seeds = seed_urls
        self.shards = shards
        self.workers = workers
        self._storage = storage
        self._store_path = store_path
        self._checkpoint_every = checkpoint_every
        self._spec_hash = spec_hash
        self.worker_retries = worker_retries
        #: Optional live-progress hook ``(shard_index, at, freshness,
        #: quality)`` invoked as per-window messages arrive. Arrival order
        #: across shards depends on worker scheduling — consumers must not
        #: derive results from it (the merge never does).
        self.on_window: Optional[Callable[[int, float, float, Optional[float]], None]] = None

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(
        self,
        duration_days: float,
        start_time: float = 0.0,
        *,
        resume: bool = False,
    ) -> ShardedCrawlResult:
        """Run every shard to completion and merge the results.

        Args:
            duration_days: How long to run (virtual days).
            start_time: Virtual time at which the run starts.
            resume: Continue a killed sharded run from the per-shard
                stores (requires ``storage``, ``store_path`` and
                ``checkpoint_every``). Completed shards short-circuit from
                their stored results; interrupted ones resume from their
                checkpoints. The merged result is bit-identical to an
                uninterrupted run.

        Returns:
            The merged :class:`ShardedCrawlResult`.
        """
        if resume and (
            self._storage is None
            or self._store_path is None
            or self._checkpoint_every is None
        ):
            raise ValueError(
                "resume requires storage, store_path and checkpoint_every"
            )
        views = ShardView.split(
            self._web,
            self.shards,
            capacity=self._config.collection_capacity,
            budget_per_day=self._config.crawl_budget_per_day,
            seed_urls=self._seeds,
        )
        jobs = [
            ShardRunSpec(
                payload=None,  # installed per execution mode below
                view=view,
                config=dataclasses.replace(
                    self._config,
                    collection_capacity=view.capacity,
                    crawl_budget_per_day=view.budget_per_day,
                ),
                duration_days=duration_days,
                start_time=start_time,
                storage=self._storage,
                store_path=shard_store_path(self._store_path, view.index),
                checkpoint_every=self._checkpoint_every,
                spec_hash=self._spec_hash,
                resume=resume,
            )
            for view in views
        ]

        if len(jobs) == 1:
            # Single shard: no processes, no shared memory — the plain
            # batched crawler, run inline. This is the bit-identity anchor.
            payloads = [self._run_inline(jobs[0])]
        else:
            payloads = self._run_workers(jobs)
        return self._merge(payloads, duration_days)

    def _run_inline(self, job: ShardRunSpec) -> dict:
        on_measure = None
        if self.on_window is not None:
            shard = job.view.index
            on_window = self.on_window

            def on_measure(at, freshness, quality):
                on_window(shard, at, freshness, quality)

        return _run_shard(job, self._web, on_measure=on_measure)

    def _can_recover_workers(self) -> bool:
        """Whether a crashed worker can be re-run from its shard's store."""
        return (
            self.worker_retries > 0
            and self._storage is not None
            and self._store_path is not None
            and self._checkpoint_every is not None
        )

    def _reap(self, process: multiprocessing.Process) -> None:
        """Join a worker with a bounded wait, escalating to terminate/kill.

        An indefinite ``join()`` would hang the coordinator forever on a
        worker stuck in un-interruptible state; every join in this class
        goes through here so a wedged worker costs at most a few bounded
        waits before being killed.
        """
        process.join(timeout=self.JOIN_TIMEOUT_SECONDS)
        if process.is_alive():
            process.terminate()
            process.join(timeout=self.JOIN_TIMEOUT_SECONDS)
        if process.is_alive():  # pragma: no cover - needs an unkillable worker
            process.kill()
            process.join(timeout=self.JOIN_TIMEOUT_SECONDS)

    def _handle_worker_failure(
        self,
        shard: int,
        detail: str,
        pending: List[ShardRunSpec],
        attempts: Dict[int, int],
        by_shard: Dict[int, ShardRunSpec],
    ) -> None:
        """Requeue a failed shard with resume, or raise once retries run out.

        The respawned job resumes from the shard's last checkpoint (or
        short-circuits from its stored result when the worker died after
        finishing but before reporting), so recovery never replays work
        differently — the merged result is bit-identical either way.
        """
        attempts[shard] += 1
        if self._can_recover_workers() and attempts[shard] <= self.worker_retries:
            job = dataclasses.replace(by_shard[shard], resume=True)
            by_shard[shard] = job
            pending.append(job)
            return
        raise RuntimeError(
            f"shard {shard} worker failed "
            f"(attempt {attempts[shard]}, retries exhausted):\n{detail}"
        )

    def _run_workers(self, jobs: List[ShardRunSpec]) -> List[dict]:
        """Fan shard jobs out to at most ``workers`` processes at a time.

        A worker that reports an error or dies silently (killed, OOMed,
        or exiting cleanly without a result) is re-run up to
        ``worker_retries`` times when per-shard persistence is configured
        — resuming from the shard checkpoint — before the failure is
        raised with the worker's traceback or exit code.
        """
        ctx = multiprocessing.get_context("spawn")
        results_queue = ctx.Queue()
        payloads: Dict[int, dict] = {}
        running: Dict[int, multiprocessing.Process] = {}
        attempts: Dict[int, int] = {job.view.index: 0 for job in jobs}
        with SharedWeb(self._web) as shared:
            by_shard = {
                job.view.index: dataclasses.replace(job, payload=shared.payload)
                for job in jobs
            }
            pending = list(by_shard.values())
            pending.reverse()  # pop() serves shards in shard-index order
            try:
                while pending or running:
                    while pending and len(running) < self.workers:
                        job = pending.pop()
                        process = ctx.Process(
                            target=_shard_worker,
                            args=(job, results_queue),
                            daemon=True,
                        )
                        process.start()
                        running[job.view.index] = process
                    try:
                        message = results_queue.get(timeout=1.0)
                    except queue_module.Empty:
                        self._check_workers(
                            running, payloads, pending, attempts, by_shard
                        )
                        continue
                    kind = message[0]
                    if kind == "window":
                        _, shard, at, freshness, quality = message
                        if self.on_window is not None:
                            self.on_window(shard, at, freshness, quality)
                    elif kind == "result":
                        _, shard, payload = message
                        payloads[shard] = payload
                        process = running.pop(shard, None)
                        if process is not None:
                            self._reap(process)
                    else:  # "error"
                        _, shard, trace = message
                        process = running.pop(shard, None)
                        if process is not None:
                            self._reap(process)
                        self._handle_worker_failure(
                            shard, trace, pending, attempts, by_shard
                        )
            finally:
                for process in running.values():
                    if process.is_alive():
                        process.terminate()
                    self._reap(process)
                results_queue.close()
        return [payloads[job.view.index] for job in jobs]

    def _check_workers(
        self,
        running: Dict[int, multiprocessing.Process],
        payloads: Dict[int, dict],
        pending: List[ShardRunSpec],
        attempts: Dict[int, int],
        by_shard: Dict[int, ShardRunSpec],
    ) -> None:
        """Detect workers that died without reporting (e.g. SIGKILL/OOM).

        A clean exit (code 0) without a result is just as fatal as a
        signal death — the shard has no payload and nobody will deliver
        one — so both feed the same retry-or-raise path.
        """
        for shard, process in list(running.items()):
            if shard in payloads or process.is_alive():
                continue
            running.pop(shard)
            self._reap(process)
            self._handle_worker_failure(
                shard,
                f"worker process exited with code {process.exitcode} "
                "without reporting a result",
                pending,
                attempts,
                by_shard,
            )

    # ------------------------------------------------------------------ #
    # Merge
    # ------------------------------------------------------------------ #
    def _merge(
        self, payloads: List[dict], duration_days: float
    ) -> ShardedCrawlResult:
        """Fold per-shard payloads into one result, in shard-index order.

        The fold is a pure function of the payload list (which is ordered
        by shard index, not by completion): every float reduction iterates
        shards in the same order on every run, so N-shard results are
        reproducible for fixed ``(web, config, shards)`` regardless of
        worker scheduling.
        """
        payloads = sorted(payloads, key=lambda p: p["shard_index"])
        total_capacity = sum(p["capacity"] for p in payloads)

        series = FreshnessTimeSeries()
        base_times = payloads[0]["freshness"]["times"]
        for p in payloads[1:]:
            if p["freshness"]["times"] != base_times:
                raise RuntimeError(
                    "shards sampled freshness at different instants; "
                    "measurement cadences must match across shards"
                )
        for i, at in enumerate(base_times):
            fresh = 0.0
            age = 0.0
            for p in payloads:
                weight = p["capacity"]
                fresh += p["freshness"]["freshness"][i] * weight
                age += p["freshness"]["age"][i] * weight
            series.add(
                float(at),
                min(1.0, fresh / total_capacity),
                age / total_capacity,
            )

        quality: List[float] = []
        quality_times: List[float] = []
        if all(p["quality"]["values"] for p in payloads):
            base_q_times = payloads[0]["quality"]["times"]
            for p in payloads[1:]:
                if p["quality"]["times"] != base_q_times:
                    raise RuntimeError(
                        "shards sampled quality at different instants"
                    )
            # Each shard's quality is achieved/attainable *within its
            # sites*; the global collection achieves the sum of achieved
            # masses against the sum of attainable masses, so the
            # attainable masses are the exact merge weights.
            weights = [
                p["attainable"] if p["attainable"] is not None else 0.0
                for p in payloads
            ]
            total_weight = sum(weights)
            for i, at in enumerate(base_q_times):
                achieved = 0.0
                for p, weight in zip(payloads, weights):
                    achieved += p["quality"]["values"][i] * weight
                quality_times.append(float(at))
                quality.append(
                    min(1.0, achieved / total_weight) if total_weight > 0 else 0.0
                )

        result = ShardedCrawlResult(
            freshness=series,
            quality=quality,
            quality_times=quality_times,
            duration_days=duration_days,
            shards=len(payloads),
            workers=self.workers,
        )
        for p in payloads:
            counters = p["counters"]
            result.pages_crawled += int(counters["pages_crawled"])
            result.pages_failed += int(counters["pages_failed"])
            result.changes_detected += int(counters["changes_detected"])
            result.pages_replaced += int(counters["pages_replaced"])
            result.records.extend(p["records"])
            per_shard = {
                "shard": p["shard_index"],
                "capacity": p["capacity"],
                "budget_per_day": p["budget_per_day"],
                "attainable": p["attainable"],
                "fetch_count": p["fetch_count"],
                **{key: int(value) for key, value in counters.items()},
            }
            failures = p.get("failures")
            if failures is not None:
                per_shard["failures"] = dict(failures)
                if result.failures is None:
                    result.failures = {}
                for key, value in failures.items():
                    result.failures[key] = result.failures.get(key, 0) + int(value)
            result.per_shard.append(per_shard)
        result.estimator_state = UpdateModule.merge_snapshots(
            [p["update"] for p in payloads]
        )
        return result
