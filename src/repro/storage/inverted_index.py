"""A small inverted index over the collection.

The paper notes that the crawled collection typically feeds an indexer and
that with shadowing "the current collection can still handle users' requests
during this period" while the new index is built. This module provides the
indexing substrate so that examples can demonstrate both disciplines
end-to-end: in-place indexing (documents added and removed incrementally)
and rebuild-from-scratch indexing (as a shadowing deployment would do at the
end of each cycle).
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lower-case alphanumeric tokens of ``text``."""
    return _TOKEN_PATTERN.findall(text.lower())


class InvertedIndex:
    """Term -> postings index with incremental add/remove and TF ranking."""

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[str, int]] = defaultdict(dict)
        self._doc_lengths: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def add_document(self, doc_id: str, text: str) -> None:
        """Index (or re-index) a document.

        Re-indexing an existing document first removes its old postings, so
        the index always reflects exactly one version of each document —
        this is what in-place updates require.
        """
        if doc_id in self._doc_lengths:
            self.remove_document(doc_id)
        tokens = tokenize(text)
        counts = Counter(tokens)
        for term, count in counts.items():
            self._postings[term][doc_id] = count
        self._doc_lengths[doc_id] = len(tokens)

    def remove_document(self, doc_id: str) -> bool:
        """Remove a document; returns False when it was not indexed."""
        if doc_id not in self._doc_lengths:
            return False
        del self._doc_lengths[doc_id]
        empty_terms = []
        for term, postings in self._postings.items():
            postings.pop(doc_id, None)
            if not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]
        return True

    def clear(self) -> None:
        """Drop every document (used when rebuilding from scratch)."""
        self._postings.clear()
        self._doc_lengths.clear()

    @classmethod
    def build(cls, documents: Iterable[Tuple[str, str]]) -> "InvertedIndex":
        """Build a fresh index from ``(doc_id, text)`` pairs.

        This is the batch path a shadowing deployment uses at the end of each
        crawl cycle.
        """
        index = cls()
        for doc_id, text in documents:
            index.add_document(doc_id, text)
        return index

    def rebuild_from(self, collection) -> int:
        """Drop the index and re-index every record of ``collection``.

        Accepts anything that yields :class:`~repro.storage.records.PageRecord`
        objects through ``current_records()`` (a live
        :class:`~repro.storage.collection.Collection`) or ``scan_records()``
        (a :class:`~repro.storage.backends.StorageBackend`), so an index can
        be rebuilt directly from a persisted store after a crawl — the
        shadowing cycle's end-of-cycle rebuild, pointed at durable state.

        Returns:
            The number of documents indexed.
        """
        if hasattr(collection, "current_records"):
            records = collection.current_records()
        elif hasattr(collection, "scan_records"):
            records = collection.scan_records()
        else:
            raise TypeError(
                "rebuild_from needs a Collection (current_records) or a "
                f"StorageBackend (scan_records); got {type(collection).__name__}"
            )
        self.clear()
        count = 0
        for record in records:
            self.add_document(record.url, record.content)
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def n_documents(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    @property
    def n_terms(self) -> int:
        """Number of distinct terms."""
        return len(self._postings)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term.lower(), {}))

    def search(self, query: str, limit: Optional[int] = 10) -> List[Tuple[str, float]]:
        """Rank documents for ``query`` by length-normalised term frequency.

        Args:
            query: Free-text query.
            limit: Maximum number of results, or ``None`` for all matches.

        Returns:
            ``(doc_id, score)`` pairs sorted by descending score (ties broken
            by document id for determinism).
        """
        terms = tokenize(query)
        if not terms:
            return []
        scores: Dict[str, float] = defaultdict(float)
        for term in terms:
            for doc_id, count in self._postings.get(term, {}).items():
                length = self._doc_lengths.get(doc_id, 1)
                scores[doc_id] += count / max(1, length)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        if limit is None:
            return ranked
        return ranked[:limit]
