"""Pluggable collection storage backends.

The paper's WebBase crawler maintains a *long-lived* collection; until this
module existed, every crawl's records, change-history events and estimator
state lived in Python dicts and died with the process. A
:class:`StorageBackend` persists three kinds of data:

* **crawl records** — the collection's :class:`~repro.storage.records.PageRecord`
  rows (put/get/scan/delete, mirroring the repository);
* **change-history events** — an append-only log of per-fetch observations
  ``(url, time, changed, stored)``, the durable form of what feeds the
  frequency estimators;
* **named state blobs** — JSON documents holding checkpointed crawler state
  (queue order, estimator running sums, politeness last-request map — see
  :mod:`repro.storage.checkpoint`).

Backends are selected by name through the ``STORAGE_BACKENDS`` registry
(``repro.api.registry``), exactly like revisit policies and estimators:

* ``memory`` — plain dicts/lists; the default, no persistence, bit-identical
  to pre-backend behaviour;
* ``sqlite`` — a WAL-mode SQLite database written with batched
  ``executemany`` calls, sized so persistence piggybacks on the batched
  engine's ``process_batch`` boundaries;
* ``columnar`` — NumPy record columns with append-chunking, so hot
  oracle/freshness-style consumers can read ``fetched_at``/``importance``
  columns without materialising per-record Python objects.

All scans return live records in **first-put order** (re-putting an existing
URL keeps its position; deleting and re-putting moves it to the end), which
every backend implements identically so callers can rely on one contract.
"""

from __future__ import annotations

import json
import sqlite3
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_storage_backend
from repro.storage.records import PageRecord

#: One change-history event: (url, virtual time, change detected, page stored).
ChangeEvent = Tuple[str, float, bool, bool]


class StorageBackend(ABC):
    """Abstract interface every collection store implements.

    The interface is deliberately batch-first: ``put_records`` and
    ``append_events`` take sequences because the batched crawl engine
    produces whole tick windows of outcomes at once.
    """

    #: Whether this backend *can* keep data across processes (when given a
    #: path); :attr:`persistent` reports whether this instance actually does.
    can_persist: bool = False

    # ------------------------------------------------------------------ #
    # Crawl records
    # ------------------------------------------------------------------ #
    @abstractmethod
    def put_records(self, records: Iterable[PageRecord]) -> None:
        """Insert or replace the given records (keyed by URL)."""

    @abstractmethod
    def get_record(self, url: str) -> Optional[PageRecord]:
        """The stored record for ``url``, or ``None``."""

    @abstractmethod
    def delete_record(self, url: str) -> bool:
        """Remove ``url``; returns ``False`` when it was not stored."""

    @abstractmethod
    def scan_records(self) -> List[PageRecord]:
        """All stored records, in first-put order."""

    @abstractmethod
    def record_count(self) -> int:
        """Number of stored records."""

    def replace_records(self, records: Iterable[PageRecord]) -> None:
        """Atomically swap the whole record set (clear + put)."""
        self.clear_records()
        self.put_records(records)

    @abstractmethod
    def clear_records(self) -> None:
        """Remove every stored record."""

    # ------------------------------------------------------------------ #
    # Change-history events
    # ------------------------------------------------------------------ #
    @abstractmethod
    def append_events(self, events: Sequence[ChangeEvent]) -> None:
        """Append observations to the change-history log."""

    @abstractmethod
    def scan_events(self) -> List[ChangeEvent]:
        """The full event log, in append order."""

    @abstractmethod
    def event_count(self) -> int:
        """Number of logged events."""

    @abstractmethod
    def truncate_events(self, count: int) -> None:
        """Keep only the first ``count`` events (drop the tail).

        Used on resume to discard events a killed run appended after the
        checkpoint being restored.
        """

    # ------------------------------------------------------------------ #
    # Named state blobs
    # ------------------------------------------------------------------ #
    @abstractmethod
    def save_state(self, key: str, payload: dict) -> None:
        """Persist a JSON-serializable state document under ``key``."""

    @abstractmethod
    def load_state(self, key: str) -> Optional[dict]:
        """The state document stored under ``key``, or ``None``."""

    @abstractmethod
    def delete_state(self, key: str) -> bool:
        """Drop the state document under ``key``; False when absent."""

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Make pending writes durable (no-op for volatile backends)."""

    def close(self) -> None:
        """Release held resources; the backend is unusable afterwards."""

    @property
    def persistent(self) -> bool:
        """True when the data survives this process."""
        return False


@register_storage_backend("memory")
class MemoryBackend(StorageBackend):
    """Dict/list-backed store — the pre-backend behaviour, made explicit.

    Records are held by reference (not copied), so a record mutated in place
    by the crawler is immediately current here; ``scan_records`` therefore
    reflects live crawler state exactly, which keeps the ``memory`` backend
    bit-identical to running without any backend at all.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        # ``path`` is accepted (and ignored) so every backend shares one
        # construction signature through the registry.
        self._records: Dict[str, PageRecord] = {}
        self._events: List[ChangeEvent] = []
        self._state: Dict[str, dict] = {}

    def put_records(self, records: Iterable[PageRecord]) -> None:
        for record in records:
            self._records[record.url] = record

    def get_record(self, url: str) -> Optional[PageRecord]:
        return self._records.get(url)

    def delete_record(self, url: str) -> bool:
        return self._records.pop(url, None) is not None

    def scan_records(self) -> List[PageRecord]:
        return list(self._records.values())

    def record_count(self) -> int:
        return len(self._records)

    def clear_records(self) -> None:
        self._records.clear()

    def append_events(self, events: Sequence[ChangeEvent]) -> None:
        self._events.extend(
            (str(url), float(time), bool(changed), bool(stored))
            for url, time, changed, stored in events
        )

    def scan_events(self) -> List[ChangeEvent]:
        return list(self._events)

    def event_count(self) -> int:
        return len(self._events)

    def truncate_events(self, count: int) -> None:
        del self._events[max(0, count):]

    def save_state(self, key: str, payload: dict) -> None:
        # Round-trip through JSON so volatile and persistent backends hand
        # back structurally identical documents (tuples become lists, keys
        # become strings) and non-serializable payloads fail loudly here.
        self._state[key] = json.loads(json.dumps(payload))

    def load_state(self, key: str) -> Optional[dict]:
        return self._state.get(key)

    def delete_state(self, key: str) -> bool:
        return self._state.pop(key, None) is not None


@register_storage_backend("sqlite")
class SqliteBackend(StorageBackend):
    """SQLite-backed store (WAL mode when file-backed).

    Writes are batched ``executemany`` statements with one commit per call,
    sized to the batched engine's ``process_batch`` windows. ``path=None``
    opens an in-memory database (useful for tests and benchmarks); a file
    path makes the store durable and enables WAL journaling so a killed
    crawler never corrupts the database.

    The only durable backend in the box: ``can_persist`` is ``True``.

    SQLite ``REAL`` columns are IEEE-754 doubles, so fetch timestamps and
    importance scores round-trip bit-exactly — the resume parity guarantee
    depends on this.
    """

    can_persist = True

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS records (
        url TEXT PRIMARY KEY,
        content TEXT NOT NULL,
        checksum TEXT NOT NULL,
        fetched_at REAL NOT NULL,
        first_fetched_at REAL NOT NULL,
        outlinks TEXT NOT NULL,
        importance REAL NOT NULL,
        visit_count INTEGER NOT NULL,
        change_count INTEGER NOT NULL
    );
    CREATE TABLE IF NOT EXISTS events (
        seq INTEGER PRIMARY KEY,
        url TEXT NOT NULL,
        time REAL NOT NULL,
        changed INTEGER NOT NULL,
        stored INTEGER NOT NULL
    );
    CREATE TABLE IF NOT EXISTS state (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL
    );
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = path
        self._conn = sqlite3.connect(path if path is not None else ":memory:")
        if path is not None:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(self._SCHEMA)
        self._conn.commit()

    @property
    def path(self) -> Optional[str]:
        """The database file path (``None`` for in-memory)."""
        return self._path

    def put_records(self, records: Iterable[PageRecord]) -> None:
        rows = [
            (
                record.url,
                record.content,
                record.checksum,
                record.fetched_at,
                record.first_fetched_at,
                json.dumps(list(record.outlinks)),
                record.importance,
                record.visit_count,
                record.change_count,
            )
            for record in records
        ]
        if not rows:
            return
        # Upsert (rather than INSERT OR REPLACE) keeps the original rowid,
        # preserving first-put scan order across re-fetch updates.
        self._conn.executemany(
            """
            INSERT INTO records
                (url, content, checksum, fetched_at, first_fetched_at,
                 outlinks, importance, visit_count, change_count)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
            ON CONFLICT(url) DO UPDATE SET
                content=excluded.content,
                checksum=excluded.checksum,
                fetched_at=excluded.fetched_at,
                first_fetched_at=excluded.first_fetched_at,
                outlinks=excluded.outlinks,
                importance=excluded.importance,
                visit_count=excluded.visit_count,
                change_count=excluded.change_count
            """,
            rows,
        )
        self._conn.commit()

    def get_record(self, url: str) -> Optional[PageRecord]:
        row = self._conn.execute(
            "SELECT url, content, checksum, fetched_at, first_fetched_at,"
            " outlinks, importance, visit_count, change_count"
            " FROM records WHERE url = ?",
            (url,),
        ).fetchone()
        if row is None:
            return None
        return self._row_to_record(row)

    def delete_record(self, url: str) -> bool:
        cursor = self._conn.execute("DELETE FROM records WHERE url = ?", (url,))
        self._conn.commit()
        return cursor.rowcount > 0

    def scan_records(self) -> List[PageRecord]:
        rows = self._conn.execute(
            "SELECT url, content, checksum, fetched_at, first_fetched_at,"
            " outlinks, importance, visit_count, change_count"
            " FROM records ORDER BY rowid"
        ).fetchall()
        return [self._row_to_record(row) for row in rows]

    def record_count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM records").fetchone()[0]

    def clear_records(self) -> None:
        self._conn.execute("DELETE FROM records")
        self._conn.commit()

    def append_events(self, events: Sequence[ChangeEvent]) -> None:
        if not events:
            return
        self._conn.executemany(
            "INSERT INTO events (url, time, changed, stored) VALUES (?, ?, ?, ?)",
            [
                (str(url), float(time), int(bool(changed)), int(bool(stored)))
                for url, time, changed, stored in events
            ],
        )
        self._conn.commit()

    def scan_events(self) -> List[ChangeEvent]:
        rows = self._conn.execute(
            "SELECT url, time, changed, stored FROM events ORDER BY seq"
        ).fetchall()
        return [(url, time, bool(changed), bool(stored)) for url, time, changed, stored in rows]

    def event_count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM events").fetchone()[0]

    def truncate_events(self, count: int) -> None:
        self._conn.execute(
            "DELETE FROM events WHERE seq NOT IN"
            " (SELECT seq FROM events ORDER BY seq LIMIT ?)",
            (max(0, count),),
        )
        self._conn.commit()

    def save_state(self, key: str, payload: dict) -> None:
        self._conn.execute(
            "INSERT INTO state (key, value) VALUES (?, ?)"
            " ON CONFLICT(key) DO UPDATE SET value=excluded.value",
            (key, json.dumps(payload)),
        )
        self._conn.commit()

    def load_state(self, key: str) -> Optional[dict]:
        row = self._conn.execute(
            "SELECT value FROM state WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def delete_state(self, key: str) -> bool:
        cursor = self._conn.execute("DELETE FROM state WHERE key = ?", (key,))
        self._conn.commit()
        return cursor.rowcount > 0

    def flush(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    @property
    def persistent(self) -> bool:
        return self._path is not None

    @staticmethod
    def _row_to_record(row: Tuple) -> PageRecord:
        (url, content, checksum, fetched_at, first_fetched_at,
         outlinks, importance, visit_count, change_count) = row
        return PageRecord(
            url=url,
            content=content,
            checksum=checksum,
            fetched_at=fetched_at,
            first_fetched_at=first_fetched_at,
            outlinks=tuple(json.loads(outlinks)),
            importance=importance,
            visit_count=visit_count,
            change_count=change_count,
        )


_INITIAL_CAPACITY = 1024


@register_storage_backend("columnar")
class ColumnarBackend(StorageBackend):
    """NumPy-columned store with append-chunking.

    Numeric per-record fields live in flat arrays that double in capacity as
    rows append, with a boolean liveness mask for deletes; string fields ride
    in parallel Python lists. The point is :meth:`numeric_columns`: hot
    consumers (freshness sampling over fetch times, importance aggregation)
    can read whole columns as arrays without building one ``PageRecord``
    per row.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        # ``path`` is accepted for signature uniformity; this backend is
        # in-process only.
        self._row: Dict[str, int] = {}
        self._n = 0
        self._cap = _INITIAL_CAPACITY
        self._fetched_at = np.zeros(self._cap)
        self._first_fetched_at = np.zeros(self._cap)
        self._importance = np.zeros(self._cap)
        self._visit_count = np.zeros(self._cap, dtype=np.int64)
        self._change_count = np.zeros(self._cap, dtype=np.int64)
        self._live = np.zeros(self._cap, dtype=bool)
        self._url: List[str] = []
        self._content: List[str] = []
        self._checksum: List[str] = []
        self._outlinks: List[Tuple[str, ...]] = []
        self._event_n = 0
        self._event_cap = _INITIAL_CAPACITY
        self._event_time = np.zeros(self._event_cap)
        self._event_changed = np.zeros(self._event_cap, dtype=bool)
        self._event_stored = np.zeros(self._event_cap, dtype=bool)
        self._event_url: List[str] = []
        self._state: Dict[str, dict] = {}

    # ------------------------------------------------------------------ #
    # Growth
    # ------------------------------------------------------------------ #
    def _grow_records(self, needed: int) -> None:
        if needed <= self._cap:
            return
        new_cap = self._cap
        while new_cap < needed:
            new_cap *= 2
        for name in ("_fetched_at", "_first_fetched_at", "_importance",
                     "_visit_count", "_change_count", "_live"):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)
        self._cap = new_cap

    def _grow_events(self, needed: int) -> None:
        if needed <= self._event_cap:
            return
        new_cap = self._event_cap
        while new_cap < needed:
            new_cap *= 2
        for name in ("_event_time", "_event_changed", "_event_stored"):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=old.dtype)
            grown[: self._event_n] = old[: self._event_n]
            setattr(self, name, grown)
        self._event_cap = new_cap

    # ------------------------------------------------------------------ #
    # Records
    # ------------------------------------------------------------------ #
    def put_records(self, records: Iterable[PageRecord]) -> None:
        for record in records:
            row = self._row.get(record.url)
            if row is None:
                row = self._n
                self._grow_records(self._n + 1)
                self._n += 1
                self._row[record.url] = row
                self._url.append(record.url)
                self._content.append(record.content)
                self._checksum.append(record.checksum)
                self._outlinks.append(tuple(record.outlinks))
            else:
                self._content[row] = record.content
                self._checksum[row] = record.checksum
                self._outlinks[row] = tuple(record.outlinks)
            self._fetched_at[row] = record.fetched_at
            self._first_fetched_at[row] = record.first_fetched_at
            self._importance[row] = record.importance
            self._visit_count[row] = record.visit_count
            self._change_count[row] = record.change_count
            self._live[row] = True

    def get_record(self, url: str) -> Optional[PageRecord]:
        row = self._row.get(url)
        if row is None:
            return None
        return self._record_at(row)

    def delete_record(self, url: str) -> bool:
        row = self._row.pop(url, None)
        if row is None:
            return False
        self._live[row] = False
        return True

    def scan_records(self) -> List[PageRecord]:
        return [
            self._record_at(row)
            for row in range(self._n)
            if self._live[row]
        ]

    def record_count(self) -> int:
        return len(self._row)

    def clear_records(self) -> None:
        self._row.clear()
        self._live[: self._n] = False
        self._n = 0
        self._url.clear()
        self._content.clear()
        self._checksum.clear()
        self._outlinks.clear()

    def numeric_columns(self) -> Dict[str, np.ndarray]:
        """Live numeric columns as arrays (copies), keyed by field name.

        Rows align with :meth:`live_urls`; this is the zero-object path for
        freshness/oracle-style aggregation over the stored collection.
        """
        mask = self._live[: self._n]
        return {
            "fetched_at": self._fetched_at[: self._n][mask].copy(),
            "first_fetched_at": self._first_fetched_at[: self._n][mask].copy(),
            "importance": self._importance[: self._n][mask].copy(),
            "visit_count": self._visit_count[: self._n][mask].copy(),
            "change_count": self._change_count[: self._n][mask].copy(),
        }

    def live_urls(self) -> List[str]:
        """URLs of live rows, aligned with :meth:`numeric_columns`."""
        mask = self._live[: self._n]
        return [url for row, url in enumerate(self._url) if mask[row]]

    def _record_at(self, row: int) -> PageRecord:
        return PageRecord(
            url=self._url[row],
            content=self._content[row],
            checksum=self._checksum[row],
            fetched_at=float(self._fetched_at[row]),
            first_fetched_at=float(self._first_fetched_at[row]),
            outlinks=self._outlinks[row],
            importance=float(self._importance[row]),
            visit_count=int(self._visit_count[row]),
            change_count=int(self._change_count[row]),
        )

    # ------------------------------------------------------------------ #
    # Events
    # ------------------------------------------------------------------ #
    def append_events(self, events: Sequence[ChangeEvent]) -> None:
        if not events:
            return
        start = self._event_n
        self._grow_events(start + len(events))
        for offset, (url, time, changed, stored) in enumerate(events):
            row = start + offset
            self._event_time[row] = time
            self._event_changed[row] = bool(changed)
            self._event_stored[row] = bool(stored)
            self._event_url.append(str(url))
        self._event_n = start + len(events)

    def scan_events(self) -> List[ChangeEvent]:
        return [
            (
                self._event_url[row],
                float(self._event_time[row]),
                bool(self._event_changed[row]),
                bool(self._event_stored[row]),
            )
            for row in range(self._event_n)
        ]

    def event_count(self) -> int:
        return self._event_n

    def truncate_events(self, count: int) -> None:
        count = max(0, min(count, self._event_n))
        self._event_n = count
        del self._event_url[count:]

    def event_columns(self) -> Dict[str, np.ndarray]:
        """The event log's numeric columns as arrays (copies)."""
        return {
            "time": self._event_time[: self._event_n].copy(),
            "changed": self._event_changed[: self._event_n].copy(),
            "stored": self._event_stored[: self._event_n].copy(),
        }

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    def save_state(self, key: str, payload: dict) -> None:
        self._state[key] = json.loads(json.dumps(payload))

    def load_state(self, key: str) -> Optional[dict]:
        return self._state.get(key)

    def delete_state(self, key: str) -> bool:
        return self._state.pop(key, None) is not None
