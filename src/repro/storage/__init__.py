"""Repository substrate: the crawler's local collection.

The paper's WebBase repository stores the crawled copies of pages; the
crawler either updates pages *in place* or builds a *shadow* collection that
replaces the current one when a crawl cycle completes (Section 4, item 2).

This package provides:

* :class:`PageRecord` — the stored copy of one page (content, checksum,
  fetch time, importance, change history);
* :class:`Repository` — a bounded key-value store of page records;
* :class:`InPlaceCollection` and :class:`ShadowCollection` — the two update
  disciplines the paper compares, behind a common :class:`Collection`
  interface (what users/queries see is ``current_records``);
* :class:`InvertedIndex` — a small text index over the current collection,
  standing in for the indexer the paper mentions alongside the repository;
* :class:`StorageBackend` and its implementations (:class:`MemoryBackend`,
  :class:`SqliteBackend`, :class:`ColumnarBackend`) — pluggable persistent
  stores for crawl records, change events and checkpoint state, selected
  through :data:`repro.api.registry.STORAGE_BACKENDS`;
* :class:`CollectionJournal` and :class:`CrawlCheckpointer` — the
  write-behind mirror and the resumable-state snapshotter that connect a
  running crawl to a backend.
"""

from repro.storage.records import PageRecord, record_from_dict, record_to_dict
from repro.storage.repository import Repository
from repro.storage.collection import Collection, InPlaceCollection, ShadowCollection
from repro.storage.inverted_index import InvertedIndex
from repro.storage.backends import (
    ColumnarBackend,
    MemoryBackend,
    SqliteBackend,
    StorageBackend,
)
from repro.storage.checkpoint import CollectionJournal, CrawlCheckpointer

__all__ = [
    "PageRecord",
    "record_from_dict",
    "record_to_dict",
    "Repository",
    "Collection",
    "InPlaceCollection",
    "ShadowCollection",
    "InvertedIndex",
    "StorageBackend",
    "MemoryBackend",
    "SqliteBackend",
    "ColumnarBackend",
    "CollectionJournal",
    "CrawlCheckpointer",
]
