"""In-place and shadowing collections.

Section 4 (design choice 2) contrasts two ways a crawler can install newly
fetched pages:

* **in-place update** — the fetched copy immediately replaces the old copy
  in the collection users query;
* **shadowing** — fetched copies accumulate in a separate *crawler's
  collection*; when the crawl cycle completes, the *current collection* is
  atomically replaced by the crawler's collection.

Both disciplines implement the same :class:`Collection` interface so that
crawlers and metrics are agnostic of the choice. The freshness of what users
actually see is always computed over :meth:`Collection.current_records`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional

from repro.storage.records import PageRecord
from repro.storage.repository import Repository


class Collection(ABC):
    """Common interface of the two update disciplines."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity

    @abstractmethod
    def store(self, record: PageRecord) -> None:
        """Install a fetched page copy (new page or re-fetch)."""

    @abstractmethod
    def discard(self, url: str) -> Optional[PageRecord]:
        """Remove a page from the crawler's working collection."""

    @abstractmethod
    def current_records(self) -> List[PageRecord]:
        """Records visible to users/queries right now."""

    def current_urls(self) -> List[str]:
        """URLs visible to users/queries right now.

        Cheaper than :meth:`current_records` for callers (quality sampling)
        that only need the key set, not the record objects.
        """
        return [record.url for record in self.current_records()]

    @abstractmethod
    def working_records(self) -> List[PageRecord]:
        """Records in the crawler's working collection (same as current for
        in-place updates; the shadow space for a shadowing collection)."""

    @abstractmethod
    def get_working(self, url: str) -> Optional[PageRecord]:
        """Working-collection record for ``url`` (None when absent)."""

    @abstractmethod
    def complete_cycle(self, at: float) -> None:
        """Signal that a crawl cycle finished at virtual time ``at``."""

    def current_size(self) -> int:
        """Number of records users can currently query."""
        return len(self.current_records())


class InPlaceCollection(Collection):
    """A collection whose pages are updated in place.

    New and re-fetched pages become visible to users immediately; there is a
    single repository that both the crawler and queries see.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        super().__init__(capacity)
        self._repository = Repository(capacity)

    @property
    def repository(self) -> Repository:
        """The single underlying repository."""
        return self._repository

    def store(self, record: PageRecord) -> None:
        if record.url in self._repository:
            self._repository.update(record)
        else:
            self._repository.save(record)

    def discard(self, url: str) -> Optional[PageRecord]:
        if url not in self._repository:
            return None
        return self._repository.discard(url)

    def current_records(self) -> List[PageRecord]:
        return self._repository.records()

    def current_urls(self) -> List[str]:
        return list(self._repository.urls())

    def working_records(self) -> List[PageRecord]:
        return self._repository.records()

    def get_working(self, url: str) -> Optional[PageRecord]:
        return self._repository.get(url)

    def complete_cycle(self, at: float) -> None:
        """In-place collections have no cycle boundary; this is a no-op."""


class ShadowCollection(Collection):
    """A collection maintained by shadowing.

    The crawler writes into the *shadow* repository. Queries read the
    *current* repository, which is only replaced when :meth:`complete_cycle`
    is called — that is the instant the paper's Figure 8 marks with dotted
    lines, where the freshness of the current collection jumps to the
    freshness of the crawler's collection.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        super().__init__(capacity)
        self._shadow = Repository(capacity)
        self._current = Repository(capacity)
        self._swap_times: List[float] = []

    @property
    def shadow_repository(self) -> Repository:
        """The crawler's (shadow) repository."""
        return self._shadow

    @property
    def current_repository(self) -> Repository:
        """The repository users currently query."""
        return self._current

    @property
    def swap_times(self) -> List[float]:
        """Virtual times at which the current collection was replaced."""
        return list(self._swap_times)

    def store(self, record: PageRecord) -> None:
        if record.url in self._shadow:
            self._shadow.update(record)
        else:
            self._shadow.save(record)

    def discard(self, url: str) -> Optional[PageRecord]:
        if url not in self._shadow:
            return None
        return self._shadow.discard(url)

    def current_records(self) -> List[PageRecord]:
        return self._current.records()

    def current_urls(self) -> List[str]:
        return list(self._current.urls())

    def working_records(self) -> List[PageRecord]:
        return self._shadow.records()

    def get_working(self, url: str) -> Optional[PageRecord]:
        return self._shadow.get(url)

    def complete_cycle(self, at: float) -> None:
        """Atomically replace the current collection with the shadow one.

        The shadow space is cleared afterwards: the next cycle collects a
        brand new set of pages from scratch, as described in Section 4.
        """
        replacement = Repository(self.capacity)
        for record in self._shadow.records():
            replacement.save(record)
        self._current = replacement
        self._shadow = Repository(self.capacity)
        self._swap_times.append(at)
