"""Durable crawl provenance: the collection journal and the checkpointer.

Two cooperating pieces sit between the crawler and a
:class:`~repro.storage.backends.StorageBackend`:

* :class:`CollectionJournal` mirrors the live collection into the backend as
  the crawl proceeds — stored records are (re-)put and per-fetch change
  events appended at ``process_batch`` boundaries, discards delete rows —
  so the backend always holds a queryable copy of the collection without
  the crawler ever reading through it (the hot path stays in memory).
* :class:`CrawlCheckpointer` periodically persists a full crawler state
  snapshot (queue order, estimator sums, politeness map — assembled by
  ``IncrementalCrawler``) as a named state blob, from which a killed run
  resumes bit-identically.

On resume, the journal's event counter is restored from the checkpoint and
the backend's event log truncated to it, dropping whatever the killed run
appended after the snapshot; records are resynced wholesale from the
checkpoint's collection image.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, List, Mapping, Optional, Tuple, TYPE_CHECKING

from repro.storage.backends import ChangeEvent, StorageBackend
from repro.storage.records import PageRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports storage)
    from repro.core.crawl_module import BatchCrawlOutcome, CrawlOutcome
    from repro.storage.collection import Collection

#: Backend state key under which crawl checkpoints are stored.
CHECKPOINT_STATE_KEY = "checkpoint"
#: Backend state key holding the *previous* good checkpoint. Kept one save
#: behind the current one so a corrupted latest snapshot (detected by its
#: integrity checksum) still leaves a verified state to resume from.
CHECKPOINT_PREV_STATE_KEY = "checkpoint_prev"
#: Backend state key under which a completed run's result is stored.
RESULT_STATE_KEY = "result"
#: Version stamp of the checkpoint document layout. Format 2 added the
#: RankingModule's link-graph and warm-start state (sparse incremental
#: ranking); format-1 checkpoints predate it and cannot resume here.
CHECKPOINT_FORMAT = 2


def namespaced_state_key(namespace: Optional[str], key: str) -> str:
    """Qualify a backend state key with an optional namespace.

    A sharded crawl stores several independent state streams (one per
    shard) and must never let them collide with each other or with a
    plain run's keys; ``namespaced_state_key("shard00", "checkpoint")``
    yields ``"shard00/checkpoint"``. ``None`` returns ``key`` unchanged,
    which is what keeps single-crawler storage layouts byte-identical to
    the pre-shard format.
    """
    if namespace is None:
        return key
    if "/" in namespace:
        raise ValueError(f"namespace {namespace!r} must not contain '/'")
    return f"{namespace}/{key}"


def checkpoint_integrity(state: Mapping) -> str:
    """Integrity checksum of a checkpoint document.

    The sha256 of the state's canonical JSON (sorted keys, no whitespace),
    with the ``integrity`` field itself excluded. Doubles survive a JSON
    round trip exactly, so a checkpoint saved and reloaded through any
    backend recomputes to the same digest — any difference means the stored
    bytes were damaged.
    """
    payload = {key: value for key, value in state.items() if key != "integrity"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CollectionJournal:
    """Mirrors crawl outcomes into a storage backend.

    The journal is write-behind: it piggybacks on the batched engine's
    ``process_batch`` boundaries (and the reference engine's per-outcome
    hook), so persistence adds one ``executemany``-sized write per tick
    window rather than one per fetch.

    Args:
        backend: The destination store.
    """

    def __init__(self, backend: StorageBackend) -> None:
        self.backend = backend
        #: Number of events appended through this journal (checkpointed so a
        #: resume can truncate the killed run's post-checkpoint tail).
        self.events_logged = 0

    # ------------------------------------------------------------------ #
    # Crawl hooks
    # ------------------------------------------------------------------ #
    def on_batch(self, outcome: "BatchCrawlOutcome", collection: "Collection") -> None:
        """Mirror one resolved batch: re-put stored records, append events.

        Records are re-read from the live collection (not rebuilt from the
        outcome) because the batched engine refreshes unchanged re-fetches
        *in place*; the collection is the single source of truth.
        """
        completed = outcome.completed_at.tolist()
        records: List[PageRecord] = []
        seen = set()
        events: List[ChangeEvent] = []
        for url, stored, changed, completed_at in zip(
            outcome.urls, outcome.stored, outcome.changed, completed
        ):
            events.append((url, completed_at, bool(changed), bool(stored)))
            if stored and url not in seen:
                record = collection.get_working(url)
                if record is not None:
                    records.append(record)
                    seen.add(url)
        self.backend.put_records(records)
        self.backend.append_events(events)
        self.events_logged += len(events)

    def on_outcome(self, outcome: "CrawlOutcome", collection: "Collection") -> None:
        """Scalar variant of :meth:`on_batch` (reference engine path)."""
        if outcome.stored:
            record = collection.get_working(outcome.url)
            if record is not None:
                self.backend.put_records([record])
        self.backend.append_events(
            [(outcome.url, outcome.completed_at, outcome.changed, outcome.stored)]
        )
        self.events_logged += 1

    def on_discard(self, url: str) -> None:
        """A page left the working collection (refinement or failure)."""
        self.backend.delete_record(url)

    def refresh_records(self, records: List[PageRecord]) -> None:
        """Re-put many records (after a ranking scan rewrites importance)."""
        self.backend.put_records(records)

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """The journal's own state (folded into the crawl checkpoint)."""
        return {"events_logged": self.events_logged}

    def restore_snapshot(self, state: dict) -> None:
        """Resume the journal at a checkpoint: truncate the event tail.

        Events the killed run appended after the checkpoint describe fetches
        the resumed run will re-execute; keeping them would double-count.
        """
        self.events_logged = int(state["events_logged"])
        self.backend.truncate_events(self.events_logged)


class CrawlCheckpointer:
    """Periodically persists full crawler snapshots to a backend.

    Args:
        backend: The destination store.
        every_days: Minimum virtual-time spacing between checkpoints; the
            crawler offers a save opportunity at each event boundary and the
            checkpointer accepts when this much time has passed.
        spec_hash: When given, stamped into every checkpoint so a resume can
            refuse state written by a different experiment spec.
        namespace: Optional state-key namespace (see
            :func:`namespaced_state_key`); a sharded run gives each shard
            its own so per-shard checkpoints never collide.
    """

    def __init__(
        self,
        backend: StorageBackend,
        every_days: float,
        spec_hash: Optional[str] = None,
        namespace: Optional[str] = None,
    ) -> None:
        if every_days <= 0:
            raise ValueError("every_days must be positive")
        self.backend = backend
        self.every_days = every_days
        self.spec_hash = spec_hash
        self._state_key = namespaced_state_key(namespace, CHECKPOINT_STATE_KEY)
        self._prev_key = namespaced_state_key(namespace, CHECKPOINT_PREV_STATE_KEY)
        self.saves = 0
        self._last_saved: Optional[float] = None
        # The last state this checkpointer saved or loaded; demoted to the
        # previous-good slot on the next save.
        self._last_state: Optional[dict] = None
        #: Optional test/observer hook called with each saved state dict.
        self.on_save: Optional[Callable[[dict], None]] = None

    def start(self, at: float) -> None:
        """Anchor the checkpoint clock at the run (or resume) start."""
        self._last_saved = at

    def due(self, at: float) -> bool:
        """Whether a checkpoint should be taken at virtual time ``at``."""
        return self._last_saved is None or at - self._last_saved >= self.every_days

    def save(self, state: dict, at: float) -> None:
        """Persist ``state`` as the current checkpoint (overwrites prior).

        The save is read-only with respect to the crawler: the state dict
        was assembled from snapshots, and flushing the backend has no effect
        on in-memory crawl structures — which is why checkpointing cannot
        perturb the run.
        """
        if self.spec_hash is not None:
            state["spec_hash"] = self.spec_hash
        state["integrity"] = checkpoint_integrity(state)
        if self._last_state is not None:
            # Demote the last good snapshot before overwriting the current
            # slot: whatever instant a crash hits, at least one of the two
            # slots holds a complete, verified checkpoint.
            self.backend.save_state(self._prev_key, self._last_state)
        self.backend.save_state(self._state_key, state)
        self.backend.flush()
        self._last_state = state
        self._last_saved = at
        self.saves += 1
        if self.on_save is not None:
            self.on_save(state)

    def _load_verified(self, key: str) -> Tuple[Optional[dict], Optional[str]]:
        """Load one checkpoint slot and verify its integrity checksum.

        Returns ``(state, None)`` for a good checkpoint, ``(None, None)``
        for an empty slot, and ``(None, reason)`` for a corrupt one
        (unreadable bytes or checksum mismatch). Checkpoints written before
        the checksum existed carry no ``integrity`` field and are accepted
        as-is.
        """
        try:
            state = self.backend.load_state(key)
        except Exception as error:
            return None, f"unreadable checkpoint state: {error}"
        if state is None:
            return None, None
        expected = state.get("integrity")
        if expected is not None and checkpoint_integrity(state) != expected:
            return None, "integrity checksum mismatch"
        return state, None

    def load(self) -> Optional[dict]:
        """The most recent *good* checkpoint, or ``None`` when none exists.

        The current slot is verified against its integrity checksum; on
        corruption the load falls back to the previous good snapshot
        (resuming from it is bit-identical to having crashed one
        checkpoint earlier). Only when both slots are corrupt does the
        load raise.
        """
        state, error = self._load_verified(self._state_key)
        if state is None and error is not None:
            fallback, fallback_error = self._load_verified(self._prev_key)
            if fallback is None:
                detail = f"; previous snapshot: {fallback_error}" if fallback_error \
                    else "; no previous snapshot is available"
                raise ValueError(
                    f"checkpoint is corrupt ({error}){detail}"
                )
            state = fallback
        if state is None:
            return None
        if self.spec_hash is not None:
            stored_hash = state.get("spec_hash")
            if stored_hash is not None and stored_hash != self.spec_hash:
                raise ValueError(
                    "checkpoint was written by a different spec "
                    f"(stored {stored_hash[:12]}..., expected {self.spec_hash[:12]}...)"
                )
        self._last_state = state
        return state
