"""A bounded store of page records.

The paper's conceptual model (Algorithm 5.1) assumes "the local collection
maintains a fixed number of pages" and is at capacity from the beginning.
:class:`Repository` implements that bounded store: saving a page when the
repository is full requires an explicit discard first, which is the
refinement decision the RankingModule makes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.storage.records import PageRecord


class RepositoryFullError(RuntimeError):
    """Raised when saving a new page into a repository that is at capacity."""


class Repository:
    """In-memory bounded store of :class:`PageRecord` objects.

    Args:
        capacity: Maximum number of records; ``None`` means unbounded
            (useful for the monitoring experiment, which stores whatever it
            observes).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be at least 1 when given")
        self.capacity = capacity
        self._records: Dict[str, PageRecord] = {}

    # ------------------------------------------------------------------ #
    # Basic mapping behaviour
    # ------------------------------------------------------------------ #
    def __contains__(self, url: str) -> bool:
        return url in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PageRecord]:
        return iter(self._records.values())

    def get(self, url: str) -> Optional[PageRecord]:
        """The record for ``url`` or ``None`` if it is not stored."""
        return self._records.get(url)

    def require(self, url: str) -> PageRecord:
        """The record for ``url``; raises ``KeyError`` when missing."""
        return self._records[url]

    def urls(self) -> Iterable[str]:
        """All stored URLs."""
        return self._records.keys()

    def records(self) -> List[PageRecord]:
        """All stored records as a list (a snapshot, safe to mutate)."""
        return list(self._records.values())

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    @property
    def is_full(self) -> bool:
        """True when the repository holds ``capacity`` records."""
        return self.capacity is not None and len(self._records) >= self.capacity

    def save(self, record: PageRecord) -> None:
        """Store a new page record.

        Raises:
            RepositoryFullError: When the repository is at capacity and the
                URL is not already stored. The caller (RankingModule) must
                discard a page first — this mirrors Steps [7]-[9] of
                Algorithm 5.1.
            ValueError: When the URL is already stored; use :meth:`update`.
        """
        if record.url in self._records:
            raise ValueError(
                f"{record.url} is already stored; use update() for re-fetches"
            )
        if self.is_full:
            raise RepositoryFullError(
                f"repository is at capacity ({self.capacity}); discard a page first"
            )
        self._records[record.url] = record

    def update(self, record: PageRecord) -> None:
        """Replace the stored record for an already-stored URL.

        Raises:
            KeyError: When the URL is not currently stored.
        """
        if record.url not in self._records:
            raise KeyError(f"{record.url} is not stored; use save() for new pages")
        self._records[record.url] = record

    def discard(self, url: str) -> PageRecord:
        """Remove and return the record for ``url``.

        Raises:
            KeyError: When the URL is not stored.
        """
        return self._records.pop(url)

    def clear(self) -> None:
        """Remove every record."""
        self._records.clear()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def lowest_importance_url(self) -> Optional[str]:
        """URL of the stored page with the lowest importance score.

        The RankingModule discards this page when a more important candidate
        shows up; ties are broken by URL for determinism.
        """
        if not self._records:
            return None
        return min(self._records.values(), key=lambda r: (r.importance, r.url)).url

    def mean_importance(self) -> float:
        """Average importance of the stored pages (0 for an empty store)."""
        if not self._records:
            return 0.0
        return sum(record.importance for record in self._records.values()) / len(self._records)

    def total_visits(self) -> int:
        """Total number of fetches recorded across all stored pages."""
        return sum(record.visit_count for record in self._records.values())
