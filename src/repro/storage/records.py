"""Stored page records.

A :class:`PageRecord` is the unit the repository stores: the local copy of a
page together with the bookkeeping the incremental crawler needs — when the
copy was fetched, its checksum (for change detection), the page's estimated
importance (for the refinement decision) and the number of times the crawler
has visited and seen the page change (for the frequency estimators).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence


@dataclass
class PageRecord:
    """The repository's copy of one page.

    Attributes:
        url: The page URL.
        content: The stored body.
        checksum: Checksum of ``content`` at the time of the last fetch.
        fetched_at: Virtual time of the last successful fetch.
        first_fetched_at: Virtual time of the first successful fetch.
        outlinks: Out-links extracted at the last fetch.
        importance: Latest importance score assigned by the RankingModule.
        visit_count: Number of times the crawler has fetched this page.
        change_count: Number of visits at which a change was detected.
    """

    url: str
    content: str
    checksum: str
    fetched_at: float
    first_fetched_at: float
    outlinks: Sequence[str] = field(default_factory=tuple)
    importance: float = 0.0
    visit_count: int = 1
    change_count: int = 0

    def __post_init__(self) -> None:
        if self.fetched_at < 0 or self.first_fetched_at < 0:
            raise ValueError("fetch times must be non-negative")
        if self.fetched_at < self.first_fetched_at:
            raise ValueError("fetched_at cannot precede first_fetched_at")
        if self.visit_count < 1:
            raise ValueError("a stored record implies at least one visit")
        if self.change_count < 0 or self.change_count > self.visit_count:
            raise ValueError("change_count must be between 0 and visit_count")

    def refreshed(
        self,
        content: str,
        checksum: str,
        fetched_at: float,
        outlinks: Sequence[str],
    ) -> "PageRecord":
        """Return a new record reflecting a re-fetch of the page.

        The change counter is incremented when the checksum differs from the
        stored one, which is exactly how the UpdateModule detects changes.
        """
        if fetched_at < self.fetched_at:
            raise ValueError("re-fetch time cannot precede the previous fetch")
        changed = checksum != self.checksum
        return replace(
            self,
            content=content,
            checksum=checksum,
            fetched_at=fetched_at,
            outlinks=tuple(outlinks),
            visit_count=self.visit_count + 1,
            change_count=self.change_count + (1 if changed else 0),
        )

    def with_importance(self, importance: float) -> "PageRecord":
        """Return a copy of the record with an updated importance score."""
        return replace(self, importance=importance)

    @property
    def observed_change_fraction(self) -> float:
        """Fraction of visits at which a change was observed."""
        if self.visit_count == 0:
            return 0.0
        return self.change_count / self.visit_count

    def observation_span(self) -> float:
        """Days between the first and the most recent fetch."""
        return self.fetched_at - self.first_fetched_at


def record_to_dict(record: PageRecord) -> dict:
    """A JSON-serializable dict holding every field of ``record``.

    Floats survive a JSON round trip bit-exactly (``json`` serialises with
    ``repr``, the shortest round-tripping form), which the checkpoint/resume
    parity guarantee relies on.
    """
    return {
        "url": record.url,
        "content": record.content,
        "checksum": record.checksum,
        "fetched_at": record.fetched_at,
        "first_fetched_at": record.first_fetched_at,
        "outlinks": list(record.outlinks),
        "importance": record.importance,
        "visit_count": record.visit_count,
        "change_count": record.change_count,
    }


def record_from_dict(payload: dict) -> PageRecord:
    """Rebuild a :class:`PageRecord` from :func:`record_to_dict` output."""
    return PageRecord(
        url=payload["url"],
        content=payload["content"],
        checksum=payload["checksum"],
        fetched_at=payload["fetched_at"],
        first_fetched_at=payload["first_fetched_at"],
        outlinks=tuple(payload["outlinks"]),
        importance=payload["importance"],
        visit_count=payload["visit_count"],
        change_count=payload["change_count"],
    )
