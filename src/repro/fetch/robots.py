"""Robots-style exclusion rules.

The paper contacted webmasters for permission and respected their
constraints; production crawlers additionally honour ``robots.txt``. The
simulation models this as a set of excluded sites and excluded URL path
prefixes. The fetcher refuses excluded URLs with an ``EXCLUDED`` status
instead of fetching them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set


class RobotsRules:
    """Per-site URL exclusion rules.

    Args:
        excluded_sites: Site ids that must not be crawled at all (sites whose
            webmasters did not give permission, in the paper's terms).
        disallowed_prefixes: Mapping from site id to URL path prefixes that
            must not be crawled on that site.
    """

    def __init__(
        self,
        excluded_sites: Iterable[str] = (),
        disallowed_prefixes: Dict[str, Iterable[str]] = None,
    ) -> None:
        self._excluded_sites: Set[str] = set(excluded_sites)
        self._disallowed: Dict[str, List[str]] = {}
        if disallowed_prefixes:
            for site_id, prefixes in disallowed_prefixes.items():
                self._disallowed[site_id] = list(prefixes)

    def exclude_site(self, site_id: str) -> None:
        """Exclude an entire site."""
        self._excluded_sites.add(site_id)

    def disallow(self, site_id: str, prefix: str) -> None:
        """Disallow URLs on ``site_id`` whose path starts with ``prefix``."""
        self._disallowed.setdefault(site_id, []).append(prefix)

    def is_allowed(self, site_id: str, url: str) -> bool:
        """True when a crawler may fetch ``url`` on ``site_id``."""
        if site_id in self._excluded_sites:
            return False
        for prefix in self._disallowed.get(site_id, ()):
            if self._path_of(url).startswith(prefix):
                return False
        return True

    @property
    def excluded_sites(self) -> Set[str]:
        """The set of fully excluded site ids."""
        return set(self._excluded_sites)

    @staticmethod
    def _path_of(url: str) -> str:
        """Extract the path component of a URL (naive but sufficient here)."""
        without_scheme = url.split("://", 1)[-1]
        slash = without_scheme.find("/")
        if slash == -1:
            return "/"
        return without_scheme[slash:]
