"""Content checksums.

Section 5.3: "To estimate how often a particular page changes, the
UpdateModule records the checksum of the page from the last crawl and
compares that checksum with the one from the current crawl."

We use SHA-1 over the page body. Any change to the content (in the
simulation, any increment of the page's version counter) yields a different
checksum with overwhelming probability, and identical content always yields
an identical checksum, which is all the change-detection logic requires.
"""

from __future__ import annotations

import hashlib


def page_checksum(content: str) -> str:
    """Checksum of a page body.

    Args:
        content: The page body as text.

    Returns:
        A hex digest string; equal contents give equal digests.
    """
    return hashlib.sha1(content.encode("utf-8")).hexdigest()


def checksums_differ(old: str, new: str) -> bool:
    """True when two checksums indicate the content has changed."""
    return old != new
