"""The simulated fetcher.

:class:`SimulatedFetcher` is the only way crawler code observes the
synthetic web: it resolves a URL through the
:class:`~repro.simweb.web.SimulatedWeb` oracle at a given virtual time and
returns a :class:`FetchResult` carrying the body, its checksum and the
extracted out-links — exactly what an HTTP fetch plus link extraction gives
a real crawler. Politeness and robots rules are applied here, and each fetch
charges a configurable amount of virtual time, which is how crawl bandwidth
limits enter the simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.faults import (
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_RATE_LIMITED,
    STATUS_SOFT_404,
    STATUS_TIMEOUT,
    FaultLayer,
)
from repro.fetch.checksum import page_checksum
from repro.fetch.politeness import PolitenessPolicy
from repro.fetch.robots import RobotsRules
from repro.simweb.web import SimulatedWeb


class FetchStatus(enum.Enum):
    """Outcome of a simulated fetch.

    ``OK``/``NOT_FOUND``/``EXCLUDED`` are the fair-weather outcomes; the
    rest are injected by a :class:`~repro.faults.FaultLayer` and are
    *transient* — they say nothing about whether the page exists, so the
    engine must not treat them as deletions.
    """

    OK = "ok"
    NOT_FOUND = "not_found"
    EXCLUDED = "excluded"
    TIMEOUT = "timeout"
    SERVER_ERROR = "server_error"
    RATE_LIMITED = "rate_limited"
    SOFT_404 = "soft_404"


#: FetchStatus member per integer wire code (see repro.faults.STATUS_*).
CODE_TO_STATUS = (
    FetchStatus.OK,
    FetchStatus.NOT_FOUND,
    FetchStatus.EXCLUDED,
    FetchStatus.TIMEOUT,
    FetchStatus.SERVER_ERROR,
    FetchStatus.RATE_LIMITED,
    FetchStatus.SOFT_404,
)

#: Integer wire code per FetchStatus member.
STATUS_TO_CODE = {status: code for code, status in enumerate(CODE_TO_STATUS)}


@dataclass(frozen=True)
class FetchResult:
    """Result of fetching one URL.

    Attributes:
        url: The requested URL.
        status: Outcome of the fetch.
        requested_at: Virtual time the fetch was requested.
        completed_at: Virtual time the fetch completed (after politeness
            delays and transfer latency).
        content: Page body (empty for non-OK fetches).
        checksum: Checksum of the body (empty for non-OK fetches).
        outlinks: URLs extracted from the body (empty for non-OK fetches).
        version: Content version of the fetched snapshot (0 for non-OK
            fetches) — the ground truth the body was generated from, at
            the politeness-delayed fetch instant.
        retry_after: Server-suggested retry delay in virtual days
            (``RATE_LIMITED`` fetches only; 0 elsewhere).
    """

    url: str
    status: FetchStatus
    requested_at: float
    completed_at: float
    content: str = ""
    checksum: str = ""
    outlinks: Sequence[str] = ()
    version: int = 0
    retry_after: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the page was fetched successfully."""
        return self.status is FetchStatus.OK


@dataclass
class BatchFetchResult:
    """Result of fetching many URLs in one batched oracle pass.

    The batched path deliberately defers body materialisation: most
    re-fetches see an unchanged page, for which the caller already holds
    the identical stored body, so only the content *version* is resolved
    eagerly (one vectorized binary search for the whole batch). Callers
    that need a body ask :meth:`SimulatedFetcher.content_for` with the
    resolved version.

    Attributes:
        urls: The requested URLs, in request order.
        requested_at: Virtual request time per URL.
        completed_at: Virtual completion time per URL (latency charged,
            clamped to the horizon) — identical to the scalar path.
        ok: Whether each fetch succeeded (page known and alive).
        versions: Content version per URL at fetch time (valid where
            ``ok``; 0 elsewhere).
        statuses: Integer status code per URL (see
            ``repro.faults.STATUS_*``), or ``None`` when no fault layer is
            configured — in that case ``ok`` fully determines the status
            (OK vs NOT_FOUND), exactly as before faults existed.
        retry_after: Retry-after hint per URL in virtual days (``None``
            when no fault layer is configured).
    """

    urls: Sequence[str]
    requested_at: np.ndarray
    completed_at: np.ndarray
    ok: np.ndarray
    versions: np.ndarray
    statuses: Optional[np.ndarray] = None
    retry_after: Optional[np.ndarray] = None


class SimulatedFetcher:
    """Fetches pages from a :class:`SimulatedWeb` at virtual times.

    Args:
        web: The ground-truth synthetic web.
        politeness: Optional per-site politeness policy; when given, fetches
            are delayed until the policy allows them.
        robots: Optional exclusion rules.
        latency_days: Virtual time consumed by a single fetch (download and
            processing). The default corresponds to roughly 2 seconds per
            page, i.e. about 43,000 pages per virtual day for a single
            crawl process.
        faults: Optional fault layer; when given, fetches of known URLs may
            resolve to transient statuses and latency may be inflated, all
            as pure functions of ``(url, site, request_time, seed)``.
    """

    def __init__(
        self,
        web: SimulatedWeb,
        politeness: Optional[PolitenessPolicy] = None,
        robots: Optional[RobotsRules] = None,
        latency_days: float = 2.0 / 86400.0,
        faults: Optional[FaultLayer] = None,
    ) -> None:
        if latency_days < 0:
            raise ValueError("latency_days must be non-negative")
        self._web = web
        self._politeness = politeness
        self._robots = robots
        self._faults = faults
        self.latency_days = latency_days
        self._fetch_count = 0

    @property
    def web(self) -> SimulatedWeb:
        """The underlying synthetic web (exposed for metrics, not crawlers)."""
        return self._web

    @property
    def fetch_count(self) -> int:
        """Number of fetches issued so far."""
        return self._fetch_count

    @fetch_count.setter
    def fetch_count(self, value: int) -> None:
        """Restore the fetch counter (checkpoint/resume)."""
        if value < 0:
            raise ValueError("fetch_count cannot be negative")
        self._fetch_count = int(value)

    @property
    def politeness(self) -> Optional[PolitenessPolicy]:
        """The politeness policy, if one is configured (read-only access
        for the batched crawl engine, which resolves delays in bulk)."""
        return self._politeness

    @property
    def faults(self) -> Optional[FaultLayer]:
        """The fault layer, if one is configured (read-only access for the
        failure-aware crawl engine, which predicts statuses per slot)."""
        return self._faults

    def site_of(self, url: str) -> Optional[str]:
        """The owning site id of ``url`` (``None`` if the web doesn't know it)."""
        return self._site_id_of(url)

    def fetch(self, url: str, at: float) -> FetchResult:
        """Fetch ``url`` at virtual time ``at``.

        The returned result's ``completed_at`` reflects politeness delays and
        transfer latency; callers that simulate a sequential crawler should
        advance their clock to ``completed_at``.

        Args:
            url: URL to fetch.
            at: Virtual time the request is issued.

        Returns:
            A :class:`FetchResult`; ``status`` distinguishes success, a
            missing page and an excluded page.
        """
        site_id = self._site_id_of(url)
        if self._robots is not None and site_id is not None:
            if not self._robots.is_allowed(site_id, url):
                return FetchResult(
                    url=url,
                    status=FetchStatus.EXCLUDED,
                    requested_at=at,
                    completed_at=at,
                )
        start = at
        if self._politeness is not None and site_id is not None:
            start = self._politeness.earliest_allowed(site_id, at)
            self._politeness.record_request(site_id, start)
        latency = self.latency_days
        code = STATUS_OK
        retry_after = 0.0
        if self._faults is not None:
            # Faults are a function of the *request* time, and the scalar
            # path delegates to the vectorized resolution on a batch of one,
            # so scalar and batched fetches agree bit for bit.
            if self._faults.has_latency_models:
                latency = latency * self._faults.latency_factor_one(at)
            if site_id is not None and self._faults.has_status_models:
                code, retry_after = self._faults.resolve_one(url, site_id, at)
        completed = min(start + latency, self._web.horizon_days)
        self._fetch_count += 1
        if STATUS_TIMEOUT <= code <= STATUS_RATE_LIMITED:
            # Hard transient fault: the fetch never reached the page, so the
            # oracle is not consulted — the status says nothing about
            # whether the page exists.
            return FetchResult(
                url=url,
                status=CODE_TO_STATUS[code],
                requested_at=at,
                completed_at=completed,
                retry_after=retry_after,
            )
        snapshot = self._web.snapshot(url, min(start, self._web.horizon_days))
        if snapshot is None:
            return FetchResult(
                url=url,
                status=FetchStatus.NOT_FOUND,
                requested_at=at,
                completed_at=completed,
            )
        if code == STATUS_SOFT_404:
            # The page is alive but served an error body: a false deletion
            # signal, reported distinctly so the engine can ignore it.
            return FetchResult(
                url=url,
                status=FetchStatus.SOFT_404,
                requested_at=at,
                completed_at=completed,
            )
        return FetchResult(
            url=url,
            status=FetchStatus.OK,
            requested_at=at,
            completed_at=completed,
            content=snapshot.content,
            checksum=page_checksum(snapshot.content),
            outlinks=tuple(snapshot.outlinks),
            version=snapshot.version,
        )

    @property
    def supports_batching(self) -> bool:
        """Whether :meth:`fetch_many` can take the vectorized fast path.

        Politeness resolves in bulk through
        :meth:`PolitenessPolicy.earliest_allowed_many` (bit-identical to
        the sequential per-fetch resolution). Robots rules remain a scalar
        concern, so configuring them routes ``fetch_many`` through the
        exact scalar loop instead.
        """
        return self._robots is None

    def fetch_many(
        self,
        urls: Sequence[str],
        times: Sequence[float],
        resolved_at: Optional[Sequence[float]] = None,
    ) -> BatchFetchResult:
        """Fetch many URLs in one call, resolving through the batched oracle.

        Semantically equivalent to one :meth:`fetch` per ``(url, time)``
        pair, in order: the same completion times, the same success
        criteria, the same fetch counting. With a politeness policy
        configured the per-site delays are resolved in one batched pass
        (or accepted pre-resolved via ``resolved_at``); with robots rules
        configured the scalar loop is used verbatim. Otherwise the whole
        batch costs one URL-id lookup, one existence mask and one
        vectorized version search.

        Args:
            urls: URLs to fetch.
            times: Virtual request time per URL (same length as ``urls``).
            resolved_at: Politeness-resolved start instant per URL, when
                the caller already resolved (and recorded) the delays —
                the batched crawl engine does, because it must cut batches
                on queue dynamics. ``None`` resolves them here.

        Returns:
            A :class:`BatchFetchResult`; bodies are materialised on demand
            via :meth:`content_for`.
        """
        if len(urls) != len(times):
            raise ValueError("urls and times must have the same length")
        requested = np.asarray(times, dtype=float)
        if not self.supports_batching:
            return self._fetch_many_scalar(urls, requested)
        horizon = self._web.horizon_days
        arrays = self._web.oracle_arrays()
        ids, known = arrays.lookup(urls)
        faults = self._faults
        with_faults = faults is not None and faults.has_status_models
        sites = None
        if with_faults or (self._politeness is not None and resolved_at is None):
            site_table = arrays.site_ids
            sites = [
                site_table[page_id] if page_id >= 0 else None
                for page_id in ids.tolist()
            ]
        if resolved_at is not None:
            starts = np.asarray(resolved_at, dtype=float)
        elif self._politeness is not None:
            starts = self._politeness.earliest_allowed_many(sites, requested)
            self._politeness.record_requests(sites, starts)
        else:
            starts = requested
        latency = self.latency_days
        if faults is not None and faults.has_latency_models:
            latency = latency * faults.latency_factors(requested)
        snapshot_times = np.minimum(starts, horizon)
        ok = known.copy()
        if known.any():
            ok[known] = arrays.exists(ids[known], snapshot_times[known])
        completed = np.minimum(starts + latency, horizon)
        self._fetch_count += len(urls)
        statuses = None
        retry_after = None
        if with_faults:
            codes, retry_after = faults.resolve(urls, sites, requested)
            codes[~known] = 0
            retry_after[~known] = 0.0
            statuses = np.where(ok, STATUS_OK, STATUS_NOT_FOUND)
            hard = (codes >= STATUS_TIMEOUT) & (codes <= STATUS_RATE_LIMITED)
            statuses[hard] = codes[hard]
            soft = ok & (codes == STATUS_SOFT_404)
            statuses[soft] = STATUS_SOFT_404
            ok = statuses == STATUS_OK
        versions = np.zeros(len(urls), dtype=np.int64)
        if ok.any():
            versions[ok] = arrays.versions(ids[ok], snapshot_times[ok])
        return BatchFetchResult(
            urls=list(urls),
            requested_at=requested,
            completed_at=completed,
            ok=ok,
            versions=versions,
            statuses=statuses,
            retry_after=retry_after,
        )

    def _fetch_many_scalar(
        self, urls: Sequence[str], requested: np.ndarray
    ) -> BatchFetchResult:
        """Exact per-URL fallback for configurations batching cannot honour."""
        n = len(urls)
        completed = np.empty(n, dtype=float)
        ok = np.zeros(n, dtype=bool)
        versions = np.zeros(n, dtype=np.int64)
        statuses = None
        retry_after = None
        if self._faults is not None and self._faults.has_status_models:
            statuses = np.zeros(n, dtype=np.int64)
            retry_after = np.zeros(n, dtype=float)
        for i, (url, at) in enumerate(zip(urls, requested)):
            result = self.fetch(url, float(at))
            completed[i] = result.completed_at
            ok[i] = result.ok
            if statuses is not None:
                statuses[i] = STATUS_TO_CODE[result.status]
                retry_after[i] = result.retry_after
            if result.ok:
                # The snapshot's own version: with politeness configured
                # the fetch happens later than requested, and the version
                # must describe the body that fetch actually returned.
                versions[i] = result.version
        return BatchFetchResult(
            urls=list(urls),
            requested_at=requested,
            completed_at=completed,
            ok=ok,
            versions=versions,
            statuses=statuses,
            retry_after=retry_after,
        )

    def content_for(self, url: str, version: int) -> Tuple[str, str]:
        """Materialise ``(content, checksum)`` for a resolved fetch.

        Args:
            url: A URL the web knows.
            version: The content version resolved by :meth:`fetch_many`.

        Returns:
            The page body at that version and its checksum — identical to
            what a scalar :meth:`fetch` at the same instant returns.
        """
        content = self._web.page(url).content_for_version(int(version))
        return content, page_checksum(content)

    def outlinks_of(self, url: str) -> Sequence[str]:
        """The (constant) out-links of ``url`` as the fetch would report them."""
        return self._web.page(url).outlinks

    def _site_id_of(self, url: str) -> Optional[str]:
        """Map a URL to its owning site id via the oracle (None if unknown)."""
        if url in self._web:
            return self._web.page(url).site_id
        return None
