"""The simulated fetcher.

:class:`SimulatedFetcher` is the only way crawler code observes the
synthetic web: it resolves a URL through the
:class:`~repro.simweb.web.SimulatedWeb` oracle at a given virtual time and
returns a :class:`FetchResult` carrying the body, its checksum and the
extracted out-links — exactly what an HTTP fetch plus link extraction gives
a real crawler. Politeness and robots rules are applied here, and each fetch
charges a configurable amount of virtual time, which is how crawl bandwidth
limits enter the simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.fetch.checksum import page_checksum
from repro.fetch.politeness import PolitenessPolicy
from repro.fetch.robots import RobotsRules
from repro.simweb.web import SimulatedWeb


class FetchStatus(enum.Enum):
    """Outcome of a simulated fetch."""

    OK = "ok"
    NOT_FOUND = "not_found"
    EXCLUDED = "excluded"


@dataclass(frozen=True)
class FetchResult:
    """Result of fetching one URL.

    Attributes:
        url: The requested URL.
        status: Outcome of the fetch.
        requested_at: Virtual time the fetch was requested.
        completed_at: Virtual time the fetch completed (after politeness
            delays and transfer latency).
        content: Page body (empty for non-OK fetches).
        checksum: Checksum of the body (empty for non-OK fetches).
        outlinks: URLs extracted from the body (empty for non-OK fetches).
    """

    url: str
    status: FetchStatus
    requested_at: float
    completed_at: float
    content: str = ""
    checksum: str = ""
    outlinks: Sequence[str] = ()

    @property
    def ok(self) -> bool:
        """True when the page was fetched successfully."""
        return self.status is FetchStatus.OK


class SimulatedFetcher:
    """Fetches pages from a :class:`SimulatedWeb` at virtual times.

    Args:
        web: The ground-truth synthetic web.
        politeness: Optional per-site politeness policy; when given, fetches
            are delayed until the policy allows them.
        robots: Optional exclusion rules.
        latency_days: Virtual time consumed by a single fetch (download and
            processing). The default corresponds to roughly 2 seconds per
            page, i.e. about 43,000 pages per virtual day for a single
            crawl process.
    """

    def __init__(
        self,
        web: SimulatedWeb,
        politeness: Optional[PolitenessPolicy] = None,
        robots: Optional[RobotsRules] = None,
        latency_days: float = 2.0 / 86400.0,
    ) -> None:
        if latency_days < 0:
            raise ValueError("latency_days must be non-negative")
        self._web = web
        self._politeness = politeness
        self._robots = robots
        self.latency_days = latency_days
        self._fetch_count = 0

    @property
    def web(self) -> SimulatedWeb:
        """The underlying synthetic web (exposed for metrics, not crawlers)."""
        return self._web

    @property
    def fetch_count(self) -> int:
        """Number of fetches issued so far."""
        return self._fetch_count

    def fetch(self, url: str, at: float) -> FetchResult:
        """Fetch ``url`` at virtual time ``at``.

        The returned result's ``completed_at`` reflects politeness delays and
        transfer latency; callers that simulate a sequential crawler should
        advance their clock to ``completed_at``.

        Args:
            url: URL to fetch.
            at: Virtual time the request is issued.

        Returns:
            A :class:`FetchResult`; ``status`` distinguishes success, a
            missing page and an excluded page.
        """
        site_id = self._site_id_of(url)
        if self._robots is not None and site_id is not None:
            if not self._robots.is_allowed(site_id, url):
                return FetchResult(
                    url=url,
                    status=FetchStatus.EXCLUDED,
                    requested_at=at,
                    completed_at=at,
                )
        start = at
        if self._politeness is not None and site_id is not None:
            start = self._politeness.earliest_allowed(site_id, at)
            self._politeness.record_request(site_id, start)
        completed = min(start + self.latency_days, self._web.horizon_days)
        self._fetch_count += 1
        snapshot = self._web.snapshot(url, min(start, self._web.horizon_days))
        if snapshot is None:
            return FetchResult(
                url=url,
                status=FetchStatus.NOT_FOUND,
                requested_at=at,
                completed_at=completed,
            )
        return FetchResult(
            url=url,
            status=FetchStatus.OK,
            requested_at=at,
            completed_at=completed,
            content=snapshot.content,
            checksum=page_checksum(snapshot.content),
            outlinks=tuple(snapshot.outlinks),
        )

    def _site_id_of(self, url: str) -> Optional[str]:
        """Map a URL to its owning site id via the oracle (None if unknown)."""
        if url in self._web:
            return self._web.page(url).site_id
        return None
