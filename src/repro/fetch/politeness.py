"""Politeness constraints on the simulated crawler.

The paper's monitoring crawler ran "only at night (9PM through 6AM PST),
waiting at least 10 seconds between requests to a single site" so that at
most 3,000 pages per site could be fetched per day (Section 2.3). The
classes here reproduce both constraints in virtual time:

* :class:`PolitenessPolicy` enforces a minimum delay between consecutive
  requests to the same site;
* :class:`NightWindow` restricts fetching to a recurring window of each
  virtual day and, when a request arrives outside the window, defers it to
  the start of the next window.

All times are virtual days; ten real-world seconds are
``10 / 86400`` virtual days.

Both constraints expose a batch API alongside the scalar one:
:meth:`PolitenessPolicy.earliest_allowed_many` resolves a whole pop-order
sequence of requests at once (grouped by site, each site's chain evaluated
with the exact float operations of the sequential recurrence, so the
results are bit-identical to repeated :meth:`~PolitenessPolicy
.earliest_allowed` / :meth:`~PolitenessPolicy.record_request` calls), and
:meth:`PolitenessPolicy.record_requests` commits an accepted prefix into
the per-site state carried across tick windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Number of seconds in a virtual day.
SECONDS_PER_DAY = 86400.0


def seconds_to_days(seconds: float) -> float:
    """Convert seconds to virtual days."""
    return seconds / SECONDS_PER_DAY


@dataclass(frozen=True)
class NightWindow:
    """A recurring crawl window within each virtual day.

    The paper crawled from 9PM to 6AM. We express the window by its start
    time (as a fraction of a day, 0.875 for 9PM) and its duration (0.375 of
    a day for nine hours). A window that wraps past midnight is supported.

    Attributes:
        start_fraction: Start of the window as a fraction of a day in [0, 1).
        duration_fraction: Length of the window as a fraction of a day,
            in (0, 1].
    """

    start_fraction: float = 0.875
    duration_fraction: float = 0.375

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError("start_fraction must be in [0, 1)")
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError("duration_fraction must be in (0, 1]")

    def is_open(self, t: float) -> bool:
        """True when the crawl window is open at virtual time ``t``."""
        offset = (t - math.floor(t)) - self.start_fraction
        if offset < 0:
            offset += 1.0
        return offset < self.duration_fraction

    def is_open_array(self, t: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_open` with element-wise identical results.

        Uses the exact float operations of the scalar test so a time is
        classified open by one path if and only if the other agrees —
        including boundary instants whose day fraction rounds a few ulps
        away from ``start_fraction``.
        """
        offset = (t - np.floor(t)) - self.start_fraction
        offset = np.where(offset < 0, offset + 1.0, offset)
        return offset < self.duration_fraction

    def next_open(self, t: float) -> float:
        """Earliest time at or after ``t`` when the window is open.

        The returned instant always satisfies :meth:`is_open`: the naive
        ``floor(t) + start_fraction`` snap can land a few ulps *before* the
        window opens when the sum's day fraction rounds below
        ``start_fraction`` (impossible for the binary-exact defaults, real
        for fractions like 0.3), so the candidate is nudged up to the first
        representable open instant.
        """
        if self.is_open(t):
            return t
        day_start = math.floor(t)
        candidate = day_start + self.start_fraction
        if candidate < t:
            candidate += 1.0
        while not self.is_open(candidate):
            candidate = math.nextafter(candidate, math.inf)
        return candidate

    def next_open_array(self, t: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`next_open` with element-wise identical results.

        Open instants pass through untouched; closed ones snap to the same
        ``floor(t) + start_fraction`` candidate the scalar path computes,
        including its ulp nudge up to the first representable open instant
        (the nudge loop runs over the whole closed set at once and
        terminates after at most a few ulps).
        """
        out = t.copy()
        closed = ~self.is_open_array(t)
        if closed.any():
            tc = t[closed]
            candidate = np.floor(tc) + self.start_fraction
            candidate = np.where(candidate < tc, candidate + 1.0, candidate)
            still = ~self.is_open_array(candidate)
            while still.any():
                candidate[still] = np.nextafter(candidate[still], np.inf)
                still = ~self.is_open_array(candidate)
            out[closed] = candidate
        return out


def _leading_true(mask: np.ndarray) -> int:
    """Length of the leading all-True run of a boolean array."""
    first_false = int(np.argmin(mask))
    if first_false == 0 and mask[0]:
        return mask.shape[0]
    return first_false


def _resolve_site_chain(
    times: np.ndarray,
    last: Optional[float],
    delay: float,
    window: Optional[NightWindow],
) -> np.ndarray:
    """Earliest-allowed instants for one site's request sequence.

    Replays the sequential recurrence ``s_k = next_open(max(t_k, s_{k-1} +
    delay))`` with bit-identical float arithmetic, but in vectorized runs:

    * an *idle run* — consecutive requests already spaced at least ``delay``
      apart and landing inside the window go out at their own times;
    * a *backlog run* — requests throttled by the delay chain go out at
      ``s_{k-1} + delay`` each, computed with :func:`np.add.accumulate`,
      which performs the same left-to-right float additions the scalar
      recurrence does (a closed form like ``s_j + k * delay`` would not).

    Transitions between regimes (and night-window snaps) fall back to one
    scalar step, which is exactly :meth:`PolitenessPolicy.earliest_allowed`.
    """
    m = times.shape[0]
    out = np.empty(m, dtype=float)
    i = 0
    while i < m:
        # Scalar head step: the exact operations of earliest_allowed().
        allowed = times[i]
        if last is not None:
            candidate = last + delay
            if candidate > allowed:
                allowed = candidate
        if window is not None:
            allowed = window.next_open(allowed)
        out[i] = allowed
        last = allowed
        i += 1
        if i == m:
            break
        rest = times[i:]
        # Idle run: every accepted entry goes out at its own request time,
        # so the previous *start* equals the previous request time and the
        # delay test reduces to pairwise spacing of the request times.
        previous = np.empty(rest.shape[0], dtype=float)
        previous[0] = last
        previous[1:] = rest[:-1]
        idle = rest >= previous + delay
        if window is not None:
            idle &= window.is_open_array(rest)
        run = _leading_true(idle)
        if run:
            out[i : i + run] = rest[:run]
            last = float(rest[run - 1])
            i += run
            continue
        # Backlog run: the delay chain outruns the request times, so each
        # start is exactly the previous start plus the delay.
        chain = np.empty(rest.shape[0] + 1, dtype=float)
        chain[0] = last
        chain[1:] = delay
        candidates = np.add.accumulate(chain)[1:]
        backlog = candidates >= rest
        if window is not None:
            backlog &= window.is_open_array(candidates)
        run = _leading_true(backlog)
        if run:
            out[i : i + run] = candidates[:run]
            last = float(candidates[run - 1])
            i += run
    return out


class PolitenessPolicy:
    """Minimum spacing between consecutive requests to the same site.

    Args:
        min_delay_seconds: Minimum number of (virtual) seconds between two
            requests to one site; the paper used 10 seconds.
        night_window: Optional crawl window restriction; ``None`` allows
            crawling around the clock, which is what the production
            incremental crawler (as opposed to the monitoring experiment)
            would do.
        allowed_sites: Optional site-affinity contract. When set, recording
            a request against a site outside the set raises — per-site
            politeness state is the one piece of crawler state that must
            never cross a shard boundary, so a crawl shard wires the sites
            it owns here and any routing bug surfaces immediately instead
            of as a silently-diverged delay chain. ``None`` (the unsharded
            crawler) accepts every site.
    """

    def __init__(
        self,
        min_delay_seconds: float = 10.0,
        night_window: Optional[NightWindow] = None,
        allowed_sites: Optional[frozenset] = None,
    ) -> None:
        if min_delay_seconds < 0:
            raise ValueError("min_delay_seconds must be non-negative")
        self.min_delay_days = seconds_to_days(min_delay_seconds)
        self.night_window = night_window
        self.allowed_sites = allowed_sites
        self._last_request: Dict[str, float] = {}
        # Dense mirror of _last_request used by the indexed batch API:
        # _dense[i] is the last recorded request to _dense_names[i], or
        # -inf for "never". The string dict stays authoritative; every
        # mutation path writes through to the mirror while it is active.
        self._dense: Optional[np.ndarray] = None
        self._dense_names: Optional[List[str]] = None
        self._dense_map: Optional[Dict[str, int]] = None

    def earliest_allowed(self, site_id: str, t: float) -> float:
        """Earliest time at or after ``t`` a request to ``site_id`` may go out."""
        allowed = t
        last = self._last_request.get(site_id)
        if last is not None:
            allowed = max(allowed, last + self.min_delay_days)
        if self.night_window is not None:
            allowed = self.night_window.next_open(allowed)
        return allowed

    def record_request(self, site_id: str, t: float) -> None:
        """Record that a request to ``site_id`` was issued at time ``t``."""
        if self.allowed_sites is not None and site_id not in self.allowed_sites:
            raise ValueError(
                f"request to site {site_id!r} crosses the shard boundary: "
                "this policy only owns politeness state for its shard's sites"
            )
        last = self._last_request.get(site_id)
        if last is None or t > last:
            self._last_request[site_id] = t
            if self._dense is not None:
                index = self._dense_map.get(site_id)
                if index is not None:
                    self._dense[index] = t

    def earliest_allowed_many(
        self,
        site_ids: Sequence[Optional[str]],
        times: Sequence[float],
    ) -> np.ndarray:
        """Resolve a whole request sequence at once, without recording it.

        Bit-identical to the sequential loop ``start = earliest_allowed(
        site, t); record_request(site, start)`` over the pairs in order —
        every float operation of the per-site recurrence is replayed
        exactly — but evaluated per site with vectorized runs. The policy
        state is *not* mutated: callers accept a prefix of the returned
        starts with :meth:`record_requests` (the batched crawl engine cuts
        batches at queue-overtake and reallocation boundaries, so a peek /
        commit split is essential).

        Args:
            site_ids: Owning site of each request; ``None`` marks a request
                politeness does not apply to (unknown URL), whose start is
                its own request time.
            times: Request time of each entry, aligned with ``site_ids``.

        Returns:
            Array of allowed start instants, one per request, in order.
        """
        times_arr = np.asarray(times, dtype=float)
        out = times_arr.copy()
        last_map = self._last_request
        delay = self.min_delay_days
        window = self.night_window
        # Sites hit once in the batch — the common case when many sites
        # interleave in the queue — have no intra-batch dependency: their
        # start is max(t, last + delay) night-snapped, resolved for the
        # whole batch in one vectorized pass. Only sites hit repeatedly
        # need their sequential chain replayed.
        counts: Dict[str, int] = {}
        for site_id in site_ids:
            if site_id is not None:
                counts[site_id] = counts.get(site_id, 0) + 1
        single_pos: List[int] = []
        single_cand: List[float] = []
        chains: Dict[str, List[int]] = {}
        for index, site_id in enumerate(site_ids):
            if site_id is None:
                continue
            if counts[site_id] > 1:
                chains.setdefault(site_id, []).append(index)
                continue
            last = last_map.get(site_id)
            if last is None:
                if window is None:
                    continue  # start is the request time; out already holds it
                single_pos.append(index)
                single_cand.append(-math.inf)
            else:
                single_pos.append(index)
                single_cand.append(last + delay)
        if single_pos:
            idx = np.asarray(single_pos, dtype=np.intp)
            t = times_arr[idx]
            cand = np.asarray(single_cand, dtype=float)
            # max(t, cand) with the scalar path's tie behaviour; the -inf
            # sentinel (no previous request) always loses the comparison.
            allowed = np.where(cand > t, cand, t)
            if window is not None:
                allowed = window.next_open_array(allowed)
            out[idx] = allowed
        for site_id, indices in chains.items():
            last = last_map.get(site_id)
            if len(indices) <= 8:
                # Short chains: the scalar recurrence beats NumPy's
                # fixed per-array costs. Identical operations, one entry
                # at a time.
                for index in indices:
                    allowed = times_arr[index]
                    if last is not None:
                        candidate = last + delay
                        if candidate > allowed:
                            allowed = candidate
                    if window is not None:
                        allowed = window.next_open(allowed)
                    out[index] = allowed
                    last = allowed
                continue
            out[indices] = _resolve_site_chain(times_arr[indices], last, delay, window)
        return out

    def record_requests(
        self,
        site_ids: Sequence[Optional[str]],
        starts: Sequence[float],
    ) -> None:
        """Commit the accepted prefix of a batch resolved by
        :meth:`earliest_allowed_many` into the per-site state.

        Equivalent to :meth:`record_request` per pair, in order; ``None``
        site ids are skipped exactly as the scalar fetch path skips
        politeness for unknown URLs.
        """
        last_map = self._last_request
        # Per-site starts within one resolved batch are nondecreasing (the
        # chain recurrence only moves forward), so the last occurrence per
        # site is the one that sticks — dict(zip(...)) keeps exactly that.
        dense = self._dense
        dense_map = self._dense_map
        allowed_sites = self.allowed_sites
        for site_id, start in dict(zip(site_ids, starts)).items():
            if site_id is None:
                continue
            if allowed_sites is not None and site_id not in allowed_sites:
                raise ValueError(
                    f"request to site {site_id!r} crosses the shard boundary: "
                    "this policy only owns politeness state for its shard's sites"
                )
            value = float(start)
            previous = last_map.get(site_id)
            if previous is None or value > previous:
                last_map[site_id] = value
                if dense is not None:
                    index = dense_map.get(site_id)
                    if index is not None:
                        dense[index] = value

    def _dense_view(self, site_names: List[str]) -> np.ndarray:
        """The dense last-request mirror for ``site_names``, built lazily.

        ``site_names`` is compared by identity: the caller passes the same
        stable table (one per :class:`~repro.simweb.web.OracleArrays`) on
        every call, so a switch of webs rebuilds the mirror from the
        authoritative string dict.
        """
        if self._dense is None or self._dense_names is not site_names:
            self._dense_names = site_names
            self._dense_map = {name: i for i, name in enumerate(site_names)}
            dense = np.full(len(site_names), -math.inf)
            get = self._dense_map.get
            for name, value in self._last_request.items():
                index = get(name)
                if index is not None:
                    dense[index] = value
            self._dense = dense
        return self._dense

    def earliest_allowed_many_indexed(
        self,
        site_indices: np.ndarray,
        site_names: List[str],
        times: np.ndarray,
    ) -> np.ndarray:
        """Integer-site variant of :meth:`earliest_allowed_many`.

        Same peek semantics and bit-identical results, but sites arrive as
        indices into ``site_names`` (``-1`` marks "no site": the start is
        the request time), so singleton detection (`np.bincount`) and the
        last-request gather are vectorized instead of hashing one site
        string per entry. This is the hot path of the batched crawl
        engine, which already holds integer page ids.

        Args:
            site_indices: Owning site index per request (``-1`` = none).
            site_names: The stable site-name table the indices refer to.
            times: Request time per entry, aligned with ``site_indices``.

        Returns:
            Array of allowed start instants, one per request, in order.
        """
        times_arr = np.asarray(times, dtype=float)
        out = times_arr.copy()
        delay = self.min_delay_days
        window = self.night_window
        dense = self._dense_view(site_names)
        valid = site_indices >= 0
        safe = np.maximum(site_indices, 0)
        counts = np.bincount(site_indices[valid], minlength=len(site_names))
        repeated = valid & (counts[safe] > 1)
        single = valid & ~repeated
        if single.any():
            # The -inf sentinel (no previous request) always loses the
            # max comparison, so one vectorized pass covers both the
            # "has history" and "first contact" singles.
            cand = dense[site_indices[single]] + delay
            t = times_arr[single]
            allowed = np.where(cand > t, cand, t)
            if window is not None:
                allowed = window.next_open_array(allowed)
            out[single] = allowed
        if repeated.any():
            chains: Dict[int, List[int]] = {}
            for pos in np.flatnonzero(repeated).tolist():
                chains.setdefault(int(site_indices[pos]), []).append(pos)
            for site_pos, indices in chains.items():
                # np.float64 state: same-bit arithmetic as the python
                # floats of the string path (-inf = no previous request,
                # losing every candidate comparison like None does).
                last = dense[site_pos]
                if len(indices) <= 8:
                    for index in indices:
                        allowed = times_arr[index]
                        candidate = last + delay
                        if candidate > allowed:
                            allowed = candidate
                        if window is not None:
                            allowed = window.next_open(allowed)
                        out[index] = allowed
                        last = allowed
                    continue
                out[indices] = _resolve_site_chain(
                    times_arr[indices], float(last), delay, window
                )
        return out

    def record_requests_indexed(
        self,
        site_indices: np.ndarray,
        starts: np.ndarray,
    ) -> None:
        """Commit an accepted prefix resolved by
        :meth:`earliest_allowed_many_indexed`.

        Semantically identical to :meth:`record_requests` on the
        corresponding site names. ``np.maximum.at`` applies the committed
        starts per site (starts are nondecreasing within a resolved batch
        and never precede the recorded state, so max-select equals
        last-occurrence-wins), then the touched names sync back into the
        authoritative string dict.
        """
        valid = site_indices >= 0
        if not valid.any():
            return
        dense = self._dense
        touched = site_indices[valid]
        np.maximum.at(dense, touched, starts[valid])
        last_map = self._last_request
        names = self._dense_names
        allowed_sites = self.allowed_sites
        for site_pos in np.unique(touched).tolist():
            name = names[site_pos]
            if allowed_sites is not None and name not in allowed_sites:
                raise ValueError(
                    f"request to site {name!r} crosses the shard boundary: "
                    "this policy only owns politeness state for its shard's sites"
                )
            last_map[name] = float(dense[site_pos])

    def reset(self) -> None:
        """Forget all recorded requests (used between simulation runs)."""
        self._last_request.clear()
        self._dense = None
        self._dense_names = None
        self._dense_map = None

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serializable per-site last-request state.

        Only the authoritative ``_last_request`` map is captured; the dense
        mirror is a lazily rebuilt cache whose contents are value-identical.
        """
        return {"last_request": dict(self._last_request)}

    def restore_snapshot(self, state: dict) -> None:
        """Rebuild the last-request map exactly as checkpointed."""
        self._last_request = {
            str(site): float(time) for site, time in state["last_request"].items()
        }
        self._dense = None
        self._dense_names = None
        self._dense_map = None

    def max_requests_per_day(self) -> float:
        """Upper bound on requests per site per virtual day under this policy.

        With a 10 second delay and a 9 hour nightly window this is 3,240,
        which matches the paper's statement that "we could crawl at most
        3,000 pages from a site every day".
        """
        if self.min_delay_days == 0:
            return float("inf")
        window = 1.0 if self.night_window is None else self.night_window.duration_fraction
        return window / self.min_delay_days
