"""Politeness constraints on the simulated crawler.

The paper's monitoring crawler ran "only at night (9PM through 6AM PST),
waiting at least 10 seconds between requests to a single site" so that at
most 3,000 pages per site could be fetched per day (Section 2.3). The
classes here reproduce both constraints in virtual time:

* :class:`PolitenessPolicy` enforces a minimum delay between consecutive
  requests to the same site;
* :class:`NightWindow` restricts fetching to a recurring window of each
  virtual day and, when a request arrives outside the window, defers it to
  the start of the next window.

All times are virtual days; ten real-world seconds are
``10 / 86400`` virtual days.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

#: Number of seconds in a virtual day.
SECONDS_PER_DAY = 86400.0


def seconds_to_days(seconds: float) -> float:
    """Convert seconds to virtual days."""
    return seconds / SECONDS_PER_DAY


@dataclass(frozen=True)
class NightWindow:
    """A recurring crawl window within each virtual day.

    The paper crawled from 9PM to 6AM. We express the window by its start
    time (as a fraction of a day, 0.875 for 9PM) and its duration (0.375 of
    a day for nine hours). A window that wraps past midnight is supported.

    Attributes:
        start_fraction: Start of the window as a fraction of a day in [0, 1).
        duration_fraction: Length of the window as a fraction of a day,
            in (0, 1].
    """

    start_fraction: float = 0.875
    duration_fraction: float = 0.375

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError("start_fraction must be in [0, 1)")
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError("duration_fraction must be in (0, 1]")

    def is_open(self, t: float) -> bool:
        """True when the crawl window is open at virtual time ``t``."""
        offset = (t - math.floor(t)) - self.start_fraction
        if offset < 0:
            offset += 1.0
        return offset < self.duration_fraction

    def next_open(self, t: float) -> float:
        """Earliest time at or after ``t`` when the window is open."""
        if self.is_open(t):
            return t
        day_start = math.floor(t)
        candidate = day_start + self.start_fraction
        if candidate < t:
            candidate += 1.0
        return candidate


class PolitenessPolicy:
    """Minimum spacing between consecutive requests to the same site.

    Args:
        min_delay_seconds: Minimum number of (virtual) seconds between two
            requests to one site; the paper used 10 seconds.
        night_window: Optional crawl window restriction; ``None`` allows
            crawling around the clock, which is what the production
            incremental crawler (as opposed to the monitoring experiment)
            would do.
    """

    def __init__(
        self,
        min_delay_seconds: float = 10.0,
        night_window: Optional[NightWindow] = None,
    ) -> None:
        if min_delay_seconds < 0:
            raise ValueError("min_delay_seconds must be non-negative")
        self.min_delay_days = seconds_to_days(min_delay_seconds)
        self.night_window = night_window
        self._last_request: Dict[str, float] = {}

    def earliest_allowed(self, site_id: str, t: float) -> float:
        """Earliest time at or after ``t`` a request to ``site_id`` may go out."""
        allowed = t
        last = self._last_request.get(site_id)
        if last is not None:
            allowed = max(allowed, last + self.min_delay_days)
        if self.night_window is not None:
            allowed = self.night_window.next_open(allowed)
        return allowed

    def record_request(self, site_id: str, t: float) -> None:
        """Record that a request to ``site_id`` was issued at time ``t``."""
        last = self._last_request.get(site_id)
        if last is None or t > last:
            self._last_request[site_id] = t

    def reset(self) -> None:
        """Forget all recorded requests (used between simulation runs)."""
        self._last_request.clear()

    def max_requests_per_day(self) -> float:
        """Upper bound on requests per site per virtual day under this policy.

        With a 10 second delay and a 9 hour nightly window this is 3,240,
        which matches the paper's statement that "we could crawl at most
        3,000 pages from a site every day".
        """
        if self.min_delay_days == 0:
            return float("inf")
        window = 1.0 if self.night_window is None else self.night_window.duration_fraction
        return window / self.min_delay_days
