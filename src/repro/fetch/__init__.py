"""Simulated crawl substrate: fetching, politeness, robots rules, checksums.

The paper's WebBase crawler fetched pages over HTTP subject to strict
politeness constraints (night-only crawling, at least ten seconds between
requests to one site — Section 2.3). This package provides the equivalent
behaviour against the synthetic web: a :class:`SimulatedFetcher` that
resolves URLs through the :class:`~repro.simweb.web.SimulatedWeb` oracle,
charges virtual time for each request, honours per-site politeness delays
and optional night-crawl windows, and computes content checksums — the
signal the UpdateModule uses to detect changes (Section 5.3).
"""

from repro.fetch.checksum import page_checksum
from repro.fetch.fetcher import FetchResult, FetchStatus, SimulatedFetcher
from repro.fetch.politeness import NightWindow, PolitenessPolicy
from repro.fetch.robots import RobotsRules

__all__ = [
    "page_checksum",
    "FetchResult",
    "FetchStatus",
    "SimulatedFetcher",
    "PolitenessPolicy",
    "NightWindow",
    "RobotsRules",
]
