"""Deterministic fault injection for the simulated fetch path.

The paper frames the incremental crawler as a long-running service, which is
exactly where transient failure handling dominates design: timeouts, 5xx
bursts, whole sites going dark, rate limiting and soft-404 flapping. This
module supplies that weather as *pure functions* of
``(url, site, virtual_time, seed)``: a fetch issued at the same virtual time
with the same seed always sees the same fault, regardless of engine, shard
count or worker count — so chaos runs stay bit-identical and resumable.

Three layers live here:

* **Fault models** (``@register_fault_model``): small parameterised
  generators that map batches of ``(url, site, time)`` to status codes.
  Each model hashes its inputs through a BLAKE2b/splitmix64 chain and
  thresholds the resulting uniform variate, so the whole batch resolves in
  a handful of vectorized NumPy passes.
* :class:`FaultLayer`: an ordered stack of models applied to a fetch batch.
  Earlier models win; the first non-OK code per URL sticks. Latency models
  are kept separate and only inflate transfer latency.
* :class:`RetryPolicy` / :class:`FailureTracker`: the failure-aware side of
  the engine — exponential backoff with seeded jitter, per-site retry
  budgets, and a per-site circuit breaker with decaying probe frequency.
  The tracker is plain serializable state (snapshot/restore/merge) so it
  rides in checkpoints and shard payloads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import FAULT_MODELS, register_fault_model

# --------------------------------------------------------------------------- #
# Integer status codes
# --------------------------------------------------------------------------- #
# The fetch path resolves statuses in bulk, so FetchStatus values travel as
# small integers inside NumPy arrays. ``repro.fetch.fetcher`` maps them back
# to FetchStatus members; the codes themselves are part of the checkpoint
# format and must stay stable.

STATUS_OK = 0
STATUS_NOT_FOUND = 1
STATUS_EXCLUDED = 2
STATUS_TIMEOUT = 3
STATUS_SERVER_ERROR = 4
STATUS_RATE_LIMITED = 5
STATUS_SOFT_404 = 6

#: Codes that abort the fetch before the oracle is consulted (no body).
HARD_FAULT_CODES = (STATUS_TIMEOUT, STATUS_SERVER_ERROR, STATUS_RATE_LIMITED)
#: Codes that are *no observation* of the page: the page may be fine, the
#: fetch just failed. These never reach ``AllUrls.record_failure`` and never
#: append to a ``ChangeHistory``.
TRANSIENT_CODES = (
    STATUS_TIMEOUT,
    STATUS_SERVER_ERROR,
    STATUS_RATE_LIMITED,
    STATUS_SOFT_404,
)

_MASK = (1 << 64) - 1
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _hash64(text: str) -> int:
    """Stable 64-bit hash of a string (BLAKE2b, big-endian)."""
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


def _splitmix(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def _mix(z: np.ndarray, v) -> np.ndarray:
    """Fold ``v`` (scalar int or uint64 array) into the hash state."""
    if not isinstance(v, np.ndarray):
        v = np.uint64(int(v) & _MASK)
    return _splitmix((z + _GOLDEN) + v)


def _uniform01(z: np.ndarray) -> np.ndarray:
    """Map uint64 hashes to uniforms in [0, 1) using the top 53 bits."""
    return (z >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


def _time_bits(times: np.ndarray) -> np.ndarray:
    """The IEEE-754 bit pattern of each time, as uint64 (exact, no rounding)."""
    return np.ascontiguousarray(np.asarray(times, dtype=np.float64)).view(np.uint64)


def _keyed(keys: np.ndarray, seed: int, salt: int) -> np.ndarray:
    """Seed + per-model salt folded into a uint64 key array."""
    z = _splitmix((np.asarray(keys, dtype=np.uint64) + _GOLDEN) + np.uint64(seed & _MASK))
    return _splitmix((z + _GOLDEN) + np.uint64(salt & _MASK))


# --------------------------------------------------------------------------- #
# Fault models
# --------------------------------------------------------------------------- #


class FaultModel:
    """Base class for registered fault models.

    Status models implement :meth:`apply`, filling ``codes`` (int64, 0 where
    no model has claimed the fetch yet) and ``retry_after`` in place for the
    entries they fault. Latency models set ``is_latency`` and implement
    :meth:`factors` instead.
    """

    kind: str = ""
    SALT: int = 0
    is_latency: bool = False

    @property
    def is_null(self) -> bool:
        """Whether this model can never claim a fetch (e.g. zero rate).

        Null models are dropped from the :class:`FaultLayer`'s active sets
        so the fetch path pays nothing for them — which is what makes a
        zero-rate fault layer bit-identical to (and as fast as) no fault
        layer at all.
        """
        return False

    def apply(
        self,
        url_hashes: np.ndarray,
        site_hashes: np.ndarray,
        times: np.ndarray,
        time_bits: np.ndarray,
        seed: int,
        codes: np.ndarray,
        retry_after: np.ndarray,
    ) -> None:
        raise NotImplementedError

    def factors(self, times: np.ndarray, seed: int) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> dict:
        """The constructor parameters, for reporting."""
        return {}


def _check_rate(name: str, rate: float) -> float:
    rate = float(rate)
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {rate}")
    return rate


def _check_positive(name: str, value: float) -> float:
    value = float(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


@register_fault_model("transient")
class TransientFaults(FaultModel):
    """Independent per-(url, time) transient errors: timeouts and 5xx.

    Args:
        rate: Probability that any single fetch fails transiently.
        timeout_fraction: Of those failures, the fraction reported as
            ``TIMEOUT`` (the rest are ``SERVER_ERROR``).
    """

    kind = "transient"
    SALT = 0x7452414E

    def __init__(self, rate: float = 0.02, timeout_fraction: float = 0.5) -> None:
        self.rate = _check_rate("rate", rate)
        self.timeout_fraction = _check_rate("timeout_fraction", timeout_fraction)

    @property
    def is_null(self) -> bool:
        return self.rate <= 0.0

    def apply(self, url_hashes, site_hashes, times, time_bits, seed, codes, retry_after):
        if self.rate <= 0.0:
            return
        z = _mix(_keyed(url_hashes, seed, self.SALT), time_bits)
        hit = (codes == 0) & (_uniform01(z) < self.rate)
        if hit.any():
            split = _uniform01(_splitmix(z + _GOLDEN))
            codes[hit] = np.where(
                split[hit] < self.timeout_fraction, STATUS_TIMEOUT, STATUS_SERVER_ERROR
            )

    def params(self) -> dict:
        return {"rate": self.rate, "timeout_fraction": self.timeout_fraction}


@register_fault_model("site_outage")
class SiteOutageFaults(FaultModel):
    """Correlated per-site outages: a site goes dark for a time window.

    Virtual time is cut into windows of ``period_days``; in each window a
    site is dark — every fetch returns ``SERVER_ERROR`` — for the first
    ``duration_days`` with probability ``rate``, decided by a hash of
    ``(site, window)``.
    """

    kind = "site_outage"
    SALT = 0x4F555447

    def __init__(
        self,
        rate: float = 0.1,
        period_days: float = 7.0,
        duration_days: float = 0.5,
    ) -> None:
        self.rate = _check_rate("rate", rate)
        self.period_days = _check_positive("period_days", period_days)
        self.duration_days = _check_positive("duration_days", duration_days)
        if self.duration_days > self.period_days:
            raise ValueError("duration_days cannot exceed period_days")

    @property
    def is_null(self) -> bool:
        return self.rate <= 0.0

    def apply(self, url_hashes, site_hashes, times, time_bits, seed, codes, retry_after):
        if self.rate <= 0.0:
            return
        window = np.floor(times / self.period_days)
        z = _mix(_keyed(site_hashes, seed, self.SALT), window.astype(np.uint64))
        in_window = times - window * self.period_days < self.duration_days
        dark = (codes == 0) & in_window & (_uniform01(z) < self.rate)
        codes[dark] = STATUS_SERVER_ERROR

    def params(self) -> dict:
        return {
            "rate": self.rate,
            "period_days": self.period_days,
            "duration_days": self.duration_days,
        }


@register_fault_model("rate_limit")
class RateLimitFaults(FaultModel):
    """Independent 429 responses carrying a fixed retry-after hint."""

    kind = "rate_limit"
    SALT = 0x52415445

    def __init__(self, rate: float = 0.02, retry_after_days: float = 0.25) -> None:
        self.rate = _check_rate("rate", rate)
        self.retry_after_days = _check_positive("retry_after_days", retry_after_days)

    @property
    def is_null(self) -> bool:
        return self.rate <= 0.0

    def apply(self, url_hashes, site_hashes, times, time_bits, seed, codes, retry_after):
        if self.rate <= 0.0:
            return
        z = _mix(_keyed(url_hashes, seed, self.SALT), time_bits)
        hit = (codes == 0) & (_uniform01(z) < self.rate)
        codes[hit] = STATUS_RATE_LIMITED
        retry_after[hit] = self.retry_after_days

    def params(self) -> dict:
        return {"rate": self.rate, "retry_after_days": self.retry_after_days}


@register_fault_model("soft_404")
class Soft404Faults(FaultModel):
    """Soft-404 flapping: a live page intermittently serves an error body.

    Windows of ``flap_period_days``; in each window a page flaps with
    probability ``rate``, decided by a hash of ``(url, window)``. The fetch
    path only applies this to pages that actually exist, so a soft-404 is
    always a *false* deletion signal — exactly the poison the estimator
    guards must filter.
    """

    kind = "soft_404"
    SALT = 0x53344034

    def __init__(self, rate: float = 0.02, flap_period_days: float = 3.0) -> None:
        self.rate = _check_rate("rate", rate)
        self.flap_period_days = _check_positive("flap_period_days", flap_period_days)

    @property
    def is_null(self) -> bool:
        return self.rate <= 0.0

    def apply(self, url_hashes, site_hashes, times, time_bits, seed, codes, retry_after):
        if self.rate <= 0.0:
            return
        window = np.floor(times / self.flap_period_days).astype(np.uint64)
        z = _mix(_keyed(url_hashes, seed, self.SALT), window)
        hit = (codes == 0) & (_uniform01(z) < self.rate)
        codes[hit] = STATUS_SOFT_404

    def params(self) -> dict:
        return {"rate": self.rate, "flap_period_days": self.flap_period_days}


@register_fault_model("latency")
class LatencyFaults(FaultModel):
    """Congestion windows that multiply transfer latency.

    A pure function of *time only* (never of the URL or site), so the
    batched engine's reallocation-boundary scan stays exact: every fetch in
    the same congestion window sees the same factor.
    """

    kind = "latency"
    SALT = 0x4C415459
    is_latency = True

    def __init__(
        self,
        factor: float = 3.0,
        rate: float = 0.25,
        period_days: float = 1.0,
    ) -> None:
        self.factor = _check_positive("factor", factor)
        self.rate = _check_rate("rate", rate)
        self.period_days = _check_positive("period_days", period_days)

    @property
    def is_null(self) -> bool:
        return self.rate <= 0.0 or self.factor == 1.0

    def factors(self, times: np.ndarray, seed: int) -> np.ndarray:
        window = np.floor(np.asarray(times, dtype=np.float64) / self.period_days)
        z = _keyed(window.astype(np.uint64), seed, self.SALT)
        return np.where(_uniform01(z) < self.rate, self.factor, 1.0)

    def params(self) -> dict:
        return {
            "factor": self.factor,
            "rate": self.rate,
            "period_days": self.period_days,
        }


# --------------------------------------------------------------------------- #
# Fault layer
# --------------------------------------------------------------------------- #


class FaultLayer:
    """An ordered stack of fault models applied to fetch batches.

    Models apply in the order given; the first model to claim a fetch wins
    (its code sticks, later models only fill still-OK entries). Latency
    models are composed multiplicatively and only affect transfer latency.

    Args:
        models: Fault model instances (see ``FAULT_MODELS``).
        seed: Injection seed; the same ``(models, seed)`` pair replays the
            same faults at the same virtual times.
    """

    def __init__(self, models: Sequence[FaultModel], seed: int = 0) -> None:
        self.seed = int(seed) & _MASK
        self.models: List[FaultModel] = list(models)
        # Null models (zero rate, unit latency factor) can never claim a
        # fetch: dropping them here lets every consumer skip the hashing
        # and the failure-aware engine entirely, so arming a zero-rate
        # layer costs nothing and changes nothing.
        active = [m for m in self.models if not m.is_null]
        self._status_models = [m for m in active if not m.is_latency]
        self._latency_models = [m for m in active if m.is_latency]
        self._url_hashes: Dict[str, int] = {}
        self._site_hashes: Dict[Optional[str], int] = {None: 0}

    @property
    def has_status_models(self) -> bool:
        return bool(self._status_models)

    @property
    def has_latency_models(self) -> bool:
        return bool(self._latency_models)

    def _hashes(self, values: Sequence[Optional[str]], cache: dict) -> np.ndarray:
        out = np.empty(len(values), dtype=np.uint64)
        get = cache.get
        for i, value in enumerate(values):
            h = get(value)
            if h is None:
                h = _hash64(value)
                cache[value] = h
            out[i] = h
        return out

    def resolve(
        self,
        urls: Sequence[str],
        sites: Sequence[Optional[str]],
        times: Sequence[float],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve fault codes for a batch of fetches.

        Args:
            urls: URLs being fetched.
            sites: Owning site id per URL (``None`` allowed; hashes to a
                fixed sentinel).
            times: Virtual *request* time per URL — faults are a function of
                when the fetch was issued, not of politeness-delayed starts,
                so scalar and batched paths agree by construction.

        Returns:
            ``(codes, retry_after)``: int64 status codes (0 = no fault) and
            float64 retry-after hints (0 where absent).
        """
        n = len(urls)
        codes = np.zeros(n, dtype=np.int64)
        retry_after = np.zeros(n, dtype=np.float64)
        if n == 0 or not self._status_models:
            return codes, retry_after
        url_h = self._hashes(urls, self._url_hashes)
        site_h = self._hashes(sites, self._site_hashes)
        t = np.asarray(times, dtype=np.float64)
        tbits = _time_bits(t)
        for model in self._status_models:
            model.apply(url_h, site_h, t, tbits, self.seed, codes, retry_after)
        return codes, retry_after

    def resolve_one(
        self, url: str, site: Optional[str], time: float
    ) -> Tuple[int, float]:
        """Scalar resolve, delegating to the vectorized path (bit-identical)."""
        codes, retry_after = self.resolve([url], [site], [time])
        return int(codes[0]), float(retry_after[0])

    def latency_factors(self, times: Sequence[float]) -> np.ndarray:
        """Latency multiplier per request time (1.0 where uncongested)."""
        t = np.asarray(times, dtype=np.float64)
        factors = np.ones(t.shape, dtype=np.float64)
        for model in self._latency_models:
            factors = factors * model.factors(t, self.seed)
        return factors

    def latency_factor_one(self, time: float) -> float:
        """Scalar latency multiplier, via the vectorized path."""
        if not self._latency_models:
            return 1.0
        return float(self.latency_factors(np.asarray([time], dtype=np.float64))[0])


def build_fault_layer(
    models: Sequence[Tuple[str, dict]], seed: int = 0
) -> FaultLayer:
    """Build a :class:`FaultLayer` from ``(kind, params)`` pairs.

    Args:
        models: Registered fault-model kinds with their parameters, in
            application order.
        seed: Injection seed.
    """
    instances = [FAULT_MODELS.create(kind, **dict(params)) for kind, params in models]
    return FaultLayer(instances, seed=seed)


# --------------------------------------------------------------------------- #
# Retry policy and failure tracking
# --------------------------------------------------------------------------- #

_RETRY_SALT = 0x52455452


def _retry_jitter(url: str, attempt: int, seed: int, jitter: float) -> float:
    """Deterministic jitter factor in [1 - jitter, 1 + jitter)."""
    if jitter <= 0.0:
        return 1.0
    z = _mix(_keyed(np.asarray([_hash64(url)], dtype=np.uint64), seed, _RETRY_SALT), attempt)
    u = float(_uniform01(z)[0])
    return 1.0 + jitter * (2.0 * u - 1.0)


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine reacts to transient fetch failures.

    Attributes:
        max_attempts: Total attempts per URL before the failure becomes
            terminal (1 = never retry).
        base_delay_days: Backoff delay after the first failure.
        multiplier: Exponential backoff multiplier per further attempt.
        jitter: Seeded jitter half-width as a fraction of the delay
            (0 disables; 0.25 spreads delays over ±25%).
        site_budget: Maximum retries charged to any single site over the
            whole run (``None`` = unlimited). Exhausted budgets turn
            failures terminal.
        breaker_threshold: Consecutive failures on one site that trip its
            circuit breaker.
        breaker_probe_days: Quarantine length after the first trip; fetches
            to the site are deferred to the quarantine end (the probe).
        breaker_backoff: Quarantine growth factor per consecutive trip
            (decaying probe frequency). Any success fully resets the site.
    """

    max_attempts: int = 3
    base_delay_days: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.25
    site_budget: Optional[int] = None
    breaker_threshold: int = 5
    breaker_probe_days: float = 1.0
    breaker_backoff: float = 2.0

    def __post_init__(self) -> None:
        if int(self.max_attempts) < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_days <= 0:
            raise ValueError("base_delay_days must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.site_budget is not None and int(self.site_budget) < 0:
            raise ValueError("site_budget cannot be negative")
        if int(self.breaker_threshold) < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_probe_days <= 0:
            raise ValueError("breaker_probe_days must be positive")
        if self.breaker_backoff < 1.0:
            raise ValueError("breaker_backoff must be at least 1")

    def to_dict(self) -> dict:
        return {
            "max_attempts": int(self.max_attempts),
            "base_delay_days": float(self.base_delay_days),
            "multiplier": float(self.multiplier),
            "jitter": float(self.jitter),
            "site_budget": None if self.site_budget is None else int(self.site_budget),
            "breaker_threshold": int(self.breaker_threshold),
            "breaker_probe_days": float(self.breaker_probe_days),
            "breaker_backoff": float(self.breaker_backoff),
        }


_STATUS_COUNTER_KEYS = {
    STATUS_TIMEOUT: "timeouts",
    STATUS_SERVER_ERROR: "server_errors",
    STATUS_RATE_LIMITED: "rate_limited",
    STATUS_SOFT_404: "soft_404s",
}

_COUNTER_NAMES = (
    "timeouts",
    "server_errors",
    "rate_limited",
    "soft_404s",
    "retries",
    "retry_drops",
    "breaker_trips",
    "breaker_skips",
)


class FailureTracker:
    """Mutable failure state: retry attempts, budgets and circuit breakers.

    One instance lives inside each crawl engine. Both engines mutate it
    exactly once per fetch, in fetch order, which is what keeps the batched
    and reference engines bit-identical under faults.

    Args:
        policy: The retry policy.
        seed: Jitter seed (shared with the fault layer by default).
    """

    def __init__(self, policy: RetryPolicy, seed: int = 0) -> None:
        self.policy = policy
        self.seed = int(seed) & _MASK
        self._attempts: Dict[str, int] = {}
        self._site_failures: Dict[str, int] = {}
        self._site_retries: Dict[str, int] = {}
        self._breaker_until: Dict[str, float] = {}
        self._breaker_trips: Dict[str, int] = {}
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}

    # -------------------------------------------------------------- #
    # Engine hooks (called once per fetch, in fetch order)
    # -------------------------------------------------------------- #
    def quarantined(self, site: Optional[str], at: float) -> bool:
        """Whether ``site`` is quarantined by its breaker at time ``at``."""
        if site is None:
            return False
        until = self._breaker_until.get(site)
        return until is not None and at < until

    def defer(self, url: str, site: str, at: float) -> float:
        """Record a breaker-deferred slot; returns the probe time."""
        self.counters["breaker_skips"] += 1
        return self._breaker_until[site]

    def on_success(self, url: str, site: Optional[str]) -> None:
        """A fetch of ``url`` succeeded: clear its retry and breaker state."""
        self._attempts.pop(url, None)
        if site is not None:
            self._site_failures.pop(site, None)
            if site in self._breaker_until:
                del self._breaker_until[site]
                self._breaker_trips.pop(site, None)

    def on_failure(
        self,
        url: str,
        site: Optional[str],
        status: int,
        completed: float,
        retry_after: float = 0.0,
    ) -> Optional[float]:
        """A transient fetch failure; returns the retry time or ``None``.

        ``None`` means the failure is terminal under the policy (attempts
        exhausted or the site's retry budget spent) and the URL should be
        dropped from the crawl schedule.
        """
        counter = _STATUS_COUNTER_KEYS.get(status)
        if counter is not None:
            self.counters[counter] += 1
        policy = self.policy
        attempts = self._attempts.get(url, 0) + 1
        self._attempts[url] = attempts
        if site is not None:
            failures = self._site_failures.get(site, 0) + 1
            self._site_failures[site] = failures
            trips = self._breaker_trips.get(site, 0)
            # A site already in probation re-trips on a single failed probe
            # (decaying probe frequency); a healthy site needs a streak.
            if failures >= policy.breaker_threshold or trips > 0:
                trips += 1
                self._breaker_trips[site] = trips
                self._breaker_until[site] = completed + (
                    policy.breaker_probe_days
                    * policy.breaker_backoff ** (trips - 1)
                )
                self._site_failures[site] = 0
                self.counters["breaker_trips"] += 1
        if attempts >= policy.max_attempts:
            self._attempts.pop(url, None)
            self.counters["retry_drops"] += 1
            return None
        if site is not None and policy.site_budget is not None:
            used = self._site_retries.get(site, 0)
            if used >= policy.site_budget:
                self._attempts.pop(url, None)
                self.counters["retry_drops"] += 1
                return None
            self._site_retries[site] = used + 1
        self.counters["retries"] += 1
        delay = policy.base_delay_days * policy.multiplier ** (attempts - 1)
        delay *= _retry_jitter(url, attempts, self.seed, policy.jitter)
        if status == STATUS_RATE_LIMITED and retry_after > 0.0:
            delay = max(delay, retry_after)
        return completed + delay

    # -------------------------------------------------------------- #
    # Checkpointing and shard merge
    # -------------------------------------------------------------- #
    def snapshot(self) -> dict:
        """JSON-serializable tracker state."""
        return {
            "attempts": dict(self._attempts),
            "site_failures": dict(self._site_failures),
            "site_retries": dict(self._site_retries),
            "breaker_until": dict(self._breaker_until),
            "breaker_trips": dict(self._breaker_trips),
            "counters": dict(self.counters),
        }

    def restore_snapshot(self, state: dict) -> None:
        """Rebuild tracker state exactly as captured by :meth:`snapshot`."""
        self._attempts = {str(k): int(v) for k, v in state["attempts"].items()}
        self._site_failures = {
            str(k): int(v) for k, v in state["site_failures"].items()
        }
        self._site_retries = {
            str(k): int(v) for k, v in state["site_retries"].items()
        }
        self._breaker_until = {
            str(k): float(v) for k, v in state["breaker_until"].items()
        }
        self._breaker_trips = {
            str(k): int(v) for k, v in state["breaker_trips"].items()
        }
        self.counters = {name: 0 for name in _COUNTER_NAMES}
        for key, value in state["counters"].items():
            self.counters[str(key)] = int(value)

    @staticmethod
    def merge_snapshots(states: Sequence[dict]) -> dict:
        """Merge per-shard tracker snapshots (site-affine, hence disjoint)."""
        merged = {
            "attempts": {},
            "site_failures": {},
            "site_retries": {},
            "breaker_until": {},
            "breaker_trips": {},
            "counters": {name: 0 for name in _COUNTER_NAMES},
        }
        for state in states:
            for table in (
                "attempts",
                "site_failures",
                "site_retries",
                "breaker_until",
                "breaker_trips",
            ):
                for key, value in state[table].items():
                    if key in merged[table]:
                        raise ValueError(
                            f"failure tracker merge collision in {table!r}: {key!r}"
                        )
                    merged[table][key] = value
            for key, value in state["counters"].items():
                merged["counters"][key] = merged["counters"].get(key, 0) + int(value)
        return merged
