"""Reproduction of Cho & Garcia-Molina, "The Evolution of the Web and
Implications for an Incremental Crawler" (VLDB 2000).

The package is organised as a set of substrates plus the paper's primary
contribution:

``repro.simweb``
    Synthetic evolving web: pages with Poisson change processes, sites with
    BFS page windows, per-domain calibration to the paper's measurements.
``repro.fetch``
    Simulated crawl substrate: fetcher, politeness, robots rules, checksums.
``repro.storage``
    Repository substrate: page records, in-place and shadowing collections,
    a small inverted index.
``repro.ranking``
    Importance metrics: PageRank, site-level PageRank, HITS.
``repro.estimation``
    Change-frequency estimators EP (Poisson) and EB (Bayesian).
``repro.freshness``
    Analytic freshness/age models and revisit policies (Figures 7-9, Table 2).
``repro.simulation``
    Discrete-event crawl simulator used to cross-check the analytic models.
``repro.experiment``
    The Sections 2-3 web-evolution experiment (Figures 2, 4, 5, 6, Table 1).
``repro.core``
    The incremental-crawler architecture of Section 5 (Algorithm 5.1 and
    Figure 12) plus the periodic-crawler baseline.
``repro.analysis``
    Histograms, statistics and report rendering shared by the benchmarks.
``repro.api``
    Declarative experiment layer: JSON-round-trippable specs, plugin
    registries (revisit policies, estimators, change models, scenarios)
    and the unified ``run(spec) -> ExperimentResult`` runner.
"""

from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.core.periodic_crawler import PeriodicCrawler, PeriodicCrawlerConfig
from repro.simweb.generator import WebGeneratorConfig, generate_web
from repro.simweb.web import SimulatedWeb

__version__ = "1.0.0"

__all__ = [
    "IncrementalCrawler",
    "IncrementalCrawlerConfig",
    "PeriodicCrawler",
    "PeriodicCrawlerConfig",
    "SimulatedWeb",
    "WebGeneratorConfig",
    "generate_web",
    "__version__",
]
