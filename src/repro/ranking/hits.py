"""Hubs and authorities (HITS).

Section 5.2 lists "Hub and Authority [Kle98]" as an alternative importance
metric for the refinement decision. This is Kleinberg's algorithm: iterate

    authority(p) = sum of hub(q) over q linking to p
    hub(p)       = sum of authority(q) over q linked from p

normalising after each step, until the scores converge.

:func:`hits` computes on the sparse path — two CSR spmvs per iteration over
an interned :class:`repro.ranking.sparse.LinkGraph`. The original
edge-list ``np.add.at`` loop survives as :func:`hits_reference`, pinned
against the sparse path by the parity suite.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.ranking.sparse import hits_dict

Graph = Mapping[str, Sequence[str]]


def hits(
    graph: Graph,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Compute hub and authority scores for every node of ``graph``.

    Args:
        graph: Mapping from node to the nodes it links to; nodes appearing
            only as targets are included automatically.
        tolerance: L1 convergence threshold on both score vectors.
        max_iterations: Iteration cap.

    Returns:
        A pair ``(hubs, authorities)`` of mappings from node to score; each
        score vector is normalised to sum to 1 (all zeros for an empty or
        edgeless graph).
    """
    return hits_dict(graph, tolerance=tolerance, max_iterations=max_iterations)


def hits_reference(
    graph: Graph,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """The retired edge-list implementation (see :func:`hits`).

    Kept as the pinned reference: the sparse path must agree with it to
    tolerance on every fixed point and exactly on node sets.
    """
    nodes = list(graph.keys())
    seen = set(nodes)
    for targets in graph.values():
        for target in targets:
            if target not in seen:
                seen.add(target)
                nodes.append(target)
    if not nodes:
        return {}, {}
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)

    edges = [
        (index[source], index[target])
        for source, targets in graph.items()
        for target in targets
    ]
    hubs = np.full(n, 1.0 / n)
    authorities = np.full(n, 1.0 / n)
    if not edges:
        zero = {node: 0.0 for node in nodes}
        return dict(zero), dict(zero)

    sources = np.array([edge[0] for edge in edges])
    targets = np.array([edge[1] for edge in edges])
    for _ in range(max_iterations):
        new_authorities = np.zeros(n)
        np.add.at(new_authorities, targets, hubs[sources])
        new_hubs = np.zeros(n)
        np.add.at(new_hubs, sources, new_authorities[targets])
        new_authorities = _normalise(new_authorities)
        new_hubs = _normalise(new_hubs)
        delta = float(np.abs(new_hubs - hubs).sum() + np.abs(new_authorities - authorities).sum())
        hubs, authorities = new_hubs, new_authorities
        if delta < tolerance:
            break
    return (
        {node: float(hubs[index[node]]) for node in nodes},
        {node: float(authorities[index[node]]) for node in nodes},
    )


def _normalise(vector: np.ndarray) -> np.ndarray:
    total = float(vector.sum())
    if total == 0.0:
        return vector
    return vector / total
