"""Importance metrics used for the refinement decision.

Section 5.2: "To measure importance, the crawler can use a number of
metrics, including PageRank and Hub and Authority." Section 2.2 additionally
defines a *site-level* PageRank over a hypergraph of sites, which the paper
used to select the 400 candidate "popular" sites.

This package implements all three:

* :func:`pagerank` — page-level PageRank by sparse power iteration;
* :func:`site_pagerank` — PageRank over the site hypergraph built by
  collapsing page-level links;
* :func:`hits` — Kleinberg's hubs-and-authorities scores.

All three ride the sparse kernels in :mod:`repro.ranking.sparse`: a
:class:`~repro.ranking.sparse.LinkGraph` interns URLs to dense integer ids
over flat COO edge buffers, compacts into a CSR matrix, and solves with one
spmv per power-iteration step. The RankingModule keeps one ``LinkGraph``
alive across refinement scans and warm-starts iteration from the previous
score vector. The retired dense loops survive as
:func:`pagerank_reference` / :func:`hits_reference`, pinned by the parity
suite.
"""

from repro.ranking.pagerank import cho_pagerank, pagerank, pagerank_reference
from repro.ranking.site_rank import build_site_graph, site_pagerank
from repro.ranking.hits import hits, hits_reference
from repro.ranking.sparse import (
    LinkGraph,
    hits_scores,
    pagerank_scores,
)

__all__ = [
    "pagerank",
    "pagerank_reference",
    "cho_pagerank",
    "site_pagerank",
    "build_site_graph",
    "hits",
    "hits_reference",
    "LinkGraph",
    "pagerank_scores",
    "hits_scores",
]
