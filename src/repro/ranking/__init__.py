"""Importance metrics used for the refinement decision.

Section 5.2: "To measure importance, the crawler can use a number of
metrics, including PageRank and Hub and Authority." Section 2.2 additionally
defines a *site-level* PageRank over a hypergraph of sites, which the paper
used to select the 400 candidate "popular" sites.

This package implements all three:

* :func:`pagerank` — page-level PageRank by power iteration;
* :func:`site_pagerank` — PageRank over the site hypergraph built by
  collapsing page-level links;
* :func:`hits` — Kleinberg's hubs-and-authorities scores.
"""

from repro.ranking.pagerank import cho_pagerank, pagerank
from repro.ranking.site_rank import build_site_graph, site_pagerank
from repro.ranking.hits import hits

__all__ = [
    "pagerank",
    "cho_pagerank",
    "site_pagerank",
    "build_site_graph",
    "hits",
]
