"""Sparse incremental link graph and vectorized ranking kernels.

The RankingModule "constantly scans" AllUrls and the Collection (Section
5.3), which means PageRank/HITS run over the collection's link structure on
every refinement scan. The dense implementations in
:mod:`repro.ranking.pagerank` / :mod:`repro.ranking.hits` walk a dict
adjacency list one node at a time and restart power iteration from the
uniform prior on every scan — fine for toy graphs, hopeless at the
million-page collections the rest of the engine now handles.

This module supplies the scale path:

* :class:`LinkGraph` — a url↔int interning table over capacity-doubling COO
  edge buffers that lazily compact into a ``scipy.sparse`` CSR matrix.
  Graph *operations* are layered over flat arrays rather than a
  materialized per-node object: edits append ``(src, dst, revision)``
  triples, a re-set of a page's out-links bumps the page's revision so its
  old edges become invisible, and the CSR view is rebuilt only when a
  ranking kernel asks for it.
* :func:`pagerank_scores` / :func:`hits_scores` — fully vectorized power
  iteration over the CSR view: one sparse matrix-vector product per
  iteration, dangling mass folded in as a single masked sum, the same
  teleport/normalisation conventions as the dense reference (including the
  paper's ``cho_pagerank`` parameterisation, which reaches this kernel
  through ``damping = 1 - d``).
* Warm starts — both kernels accept the previous score vector as ``x0``, so
  a refinement scan that only perturbed a small fraction of the edges
  converges in a handful of iterations instead of a full cold run.

When scipy is unavailable the kernels fall back to a pure-NumPy COO
``bincount`` matvec; results are identical (same sums, different runtime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly by every ranking call
    from scipy import sparse as _scipy_sparse

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - the container bakes scipy in
    _scipy_sparse = None
    HAVE_SCIPY = False

Graph = Mapping[str, Sequence[str]]

_INT = np.int64


@dataclass
class _CsrView:
    """Compacted, ranking-ready view of the live edge buffers.

    Attributes:
        active_ids: Interned node ids that participate in ranking (pages
            with a stored record plus every current link target), ascending.
        src, dst: Valid edges remapped to ``range(len(active_ids))``.
        out_degree: Out-edge count per active node, duplicates included —
            the ``len(targets)`` the dense reference divides by.
        matrix: ``scipy.sparse`` CSR adjacency (duplicate edges summed into
            integer weights); ``None`` under the NumPy fallback.
        matrix_t: CSR of the transpose (the spmv the kernels actually run).
    """

    active_ids: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    out_degree: np.ndarray
    matrix: Optional[object]
    matrix_t: Optional[object]

    @property
    def n(self) -> int:
        return int(len(self.active_ids))


class LinkGraph:
    """Incrementally-updatable sparse link graph with URL interning.

    URLs are interned to dense integer ids on first sight and never
    forgotten; edges live in flat append-only COO buffers. Re-stating a
    page's out-links (:meth:`set_outlinks`) bumps the page's revision
    counter, which logically deletes the previously appended edges; the
    buffers are physically compacted once stale edges outnumber live ones.
    A node is *active* — visible to the ranking kernels — while it is a
    source (a page whose out-links are currently stated) or the target of a
    live edge; this reproduces exactly the node set of the dense reference
    (graph keys plus link targets).
    """

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._urls: List[str] = []
        self._is_source = np.zeros(0, dtype=bool)
        self._node_rev = np.zeros(0, dtype=_INT)
        self._out_count = np.zeros(0, dtype=_INT)
        self._edge_src = np.empty(16, dtype=_INT)
        self._edge_dst = np.empty(16, dtype=_INT)
        self._edge_rev = np.empty(16, dtype=_INT)
        self._n_edges = 0
        self._n_stale = 0
        self._view: Optional[_CsrView] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: Graph) -> "LinkGraph":
        """Build a graph from a dense adjacency mapping (sources first)."""
        instance = cls()
        for source, targets in graph.items():
            instance.set_outlinks(source, targets)
        return instance

    @classmethod
    def from_arrays(
        cls,
        urls: Sequence[str],
        src: np.ndarray,
        dst: np.ndarray,
        sources: Optional[np.ndarray] = None,
    ) -> "LinkGraph":
        """Bulk-load a graph from pre-interned id arrays.

        The array-level twin of :meth:`from_graph` for million-page graphs:
        ``urls[i]`` is interned as id ``i`` and the ``(src[j], dst[j])``
        pairs become the edges, without a per-edge Python loop.

        Args:
            urls: URL per node id, in id order.
            src, dst: Aligned edge endpoint ids (duplicates allowed).
            sources: Node ids to mark as sources (pages whose out-links are
                being stated, dangling ones included); defaults to the
                distinct values of ``src``.
        """
        instance = cls()
        instance._urls = list(urls)
        instance._ids = {url: i for i, url in enumerate(instance._urls)}
        n_nodes = len(instance._urls)
        instance._grow_nodes(max(n_nodes, 1))
        src = np.asarray(src, dtype=_INT)
        dst = np.asarray(dst, dtype=_INT)
        if len(src) != len(dst):
            raise ValueError("src and dst must be aligned")
        if len(src) and (
            src.min() < 0 or src.max() >= n_nodes or dst.min() < 0 or dst.max() >= n_nodes
        ):
            raise ValueError("edge endpoints must be interned node ids")
        source_ids = np.unique(src) if sources is None else np.asarray(sources, dtype=_INT)
        instance._is_source[source_ids] = True
        instance._node_rev[source_ids] = 1
        instance._out_count[: n_nodes] = np.bincount(src, minlength=n_nodes)
        instance._edge_src = src.copy()
        instance._edge_dst = dst.copy()
        instance._edge_rev = instance._node_rev[src].copy() if len(src) else np.empty(0, dtype=_INT)
        instance._n_edges = len(src)
        return instance

    # ------------------------------------------------------------------ #
    # Interning
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._urls)

    def __contains__(self, url: str) -> bool:
        return url in self._ids

    @property
    def node_count(self) -> int:
        """Number of interned URLs (active or not)."""
        return len(self._urls)

    @property
    def edge_count(self) -> int:
        """Number of live (non-stale) edges, duplicates included."""
        return self._n_edges - self._n_stale

    def intern(self, url: str) -> int:
        """Intern ``url``; returns its stable integer id."""
        node = self._ids.get(url)
        if node is None:
            node = len(self._urls)
            self._ids[url] = node
            self._urls.append(url)
            if node >= len(self._is_source):
                self._grow_nodes(node + 1)
        return node

    def intern_many(self, urls: Iterable[str]) -> np.ndarray:
        """Intern every URL; returns the aligned id array."""
        intern = self.intern
        return np.fromiter((intern(url) for url in urls), dtype=_INT)

    def url_of(self, node: int) -> str:
        """The URL interned as ``node``."""
        return self._urls[node]

    def urls(self) -> List[str]:
        """Every interned URL in id order."""
        return list(self._urls)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def set_outlinks(self, url: str, targets: Iterable[str]) -> int:
        """Declare the current out-links of ``url`` (replacing earlier ones).

        Marks ``url`` as a source node (a page in the collection) even when
        ``targets`` is empty, matching the dense reference's treatment of
        graph keys with no out-links (they dangle but are still ranked).

        Returns:
            The interned id of ``url``.
        """
        target_ids = self.intern_many(targets)
        node = self.intern(url)
        self._set_outlinks_ids(node, target_ids)
        return node

    def set_outlinks_ids(self, node: int, target_ids: np.ndarray) -> None:
        """Array-level :meth:`set_outlinks` for pre-interned ids."""
        if node < 0 or node >= len(self._urls):
            raise IndexError(f"unknown node id {node}")
        self._set_outlinks_ids(node, np.asarray(target_ids, dtype=_INT))

    def remove_page(self, url: str) -> None:
        """Drop ``url`` from the source set and delete its out-links.

        The URL stays interned (ids are stable); it remains active only
        while other live pages still link to it — exactly how a page
        discarded by the refinement decision keeps being rankable as a
        candidate through its in-links (footnote 2).
        """
        node = self._ids.get(url)
        if node is None or not self._is_source[node]:
            return
        self._n_stale += int(self._out_count[node])
        self._out_count[node] = 0
        self._node_rev[node] += 1
        self._is_source[node] = False
        self._view = None

    # ------------------------------------------------------------------ #
    # CSR view
    # ------------------------------------------------------------------ #
    def csr(self) -> _CsrView:
        """The compacted CSR view, rebuilt lazily after mutations."""
        if self._view is None:
            self._view = self._build_view()
        return self._view

    def active_ids(self) -> np.ndarray:
        """Interned ids of the nodes the ranking kernels see."""
        return self.csr().active_ids

    def active_urls(self) -> List[str]:
        """URLs of the active nodes, in id order."""
        urls = self._urls
        return [urls[node] for node in self.csr().active_ids.tolist()]

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serializable graph state (interning order preserved).

        The edge buffers are physically compacted first, so the snapshot
        carries only live edges — but the interning table, revision counters
        and edge order travel verbatim, keeping the CSR the restored graph
        builds (and therefore every float the kernels sum) bit-identical.
        """
        self._compact()
        n_nodes = len(self._urls)
        n_edges = self._n_edges
        return {
            "urls": list(self._urls),
            "sources": np.flatnonzero(self._is_source[:n_nodes]).tolist(),
            "node_rev": self._node_rev[:n_nodes].tolist(),
            "out_count": self._out_count[:n_nodes].tolist(),
            "edge_src": self._edge_src[:n_edges].tolist(),
            "edge_dst": self._edge_dst[:n_edges].tolist(),
            "edge_rev": self._edge_rev[:n_edges].tolist(),
        }

    def restore_snapshot(self, state: dict) -> None:
        """Rebuild the graph exactly as captured by :meth:`snapshot`."""
        urls = [str(url) for url in state["urls"]]
        self._urls = urls
        self._ids = {url: i for i, url in enumerate(urls)}
        n_nodes = len(urls)
        self._is_source = np.zeros(max(n_nodes, 1), dtype=bool)
        self._is_source[np.asarray(state["sources"], dtype=_INT)] = True
        self._node_rev = np.asarray(state["node_rev"], dtype=_INT).copy()
        self._out_count = np.asarray(state["out_count"], dtype=_INT).copy()
        self._edge_src = np.asarray(state["edge_src"], dtype=_INT).copy()
        self._edge_dst = np.asarray(state["edge_dst"], dtype=_INT).copy()
        self._edge_rev = np.asarray(state["edge_rev"], dtype=_INT).copy()
        self._n_edges = len(self._edge_src)
        self._n_stale = 0
        self._view = None

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _grow_nodes(self, needed: int) -> None:
        capacity = max(16, needed, 2 * len(self._is_source))
        for name in ("_is_source", "_node_rev", "_out_count"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[: len(old)] = old
            setattr(self, name, grown)

    def _grow_edges(self, needed: int) -> None:
        capacity = max(16, needed, 2 * len(self._edge_src))
        for name in ("_edge_src", "_edge_dst", "_edge_rev"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=_INT)
            grown[: self._n_edges] = old[: self._n_edges]
            setattr(self, name, grown)

    def _set_outlinks_ids(self, node: int, target_ids: np.ndarray) -> None:
        self._n_stale += int(self._out_count[node])
        self._node_rev[node] += 1
        self._is_source[node] = True
        self._out_count[node] = len(target_ids)
        k = len(target_ids)
        if k:
            end = self._n_edges + k
            if end > len(self._edge_src):
                self._grow_edges(end)
            self._edge_src[self._n_edges : end] = node
            self._edge_dst[self._n_edges : end] = target_ids
            self._edge_rev[self._n_edges : end] = self._node_rev[node]
            self._n_edges = end
        self._view = None
        # Garbage-collect once stale edges dominate, so the buffers stay
        # proportional to the live graph no matter how much churn happens.
        if self._n_stale > 64 and self._n_stale > (self._n_edges - self._n_stale):
            self._compact()

    def _live_edge_mask(self) -> np.ndarray:
        n = self._n_edges
        return self._edge_rev[:n] == self._node_rev[self._edge_src[:n]]

    def _compact(self) -> None:
        if self._n_stale == 0:
            return
        live = self._live_edge_mask()
        self._edge_src = self._edge_src[: self._n_edges][live].copy()
        self._edge_dst = self._edge_dst[: self._n_edges][live].copy()
        self._edge_rev = self._edge_rev[: self._n_edges][live].copy()
        self._n_edges = len(self._edge_src)
        self._n_stale = 0

    def _build_view(self) -> _CsrView:
        if self._n_stale:
            self._compact()
        n_nodes = len(self._urls)
        src = self._edge_src[: self._n_edges]
        dst = self._edge_dst[: self._n_edges]
        if n_nodes == 0:
            empty = np.zeros(0, dtype=_INT)
            return _CsrView(empty, empty, empty, np.zeros(0), None, None)
        active = self._is_source[:n_nodes].copy()
        active[dst] = True
        active_ids = np.flatnonzero(active)
        remap = np.full(n_nodes, -1, dtype=_INT)
        remap[active_ids] = np.arange(len(active_ids), dtype=_INT)
        csrc = remap[src]
        cdst = remap[dst]
        m = len(active_ids)
        out_degree = np.bincount(csrc, minlength=m).astype(np.float64)
        matrix = matrix_t = None
        if HAVE_SCIPY and m:
            matrix = _scipy_sparse.csr_matrix(
                (np.ones(len(csrc)), (csrc, cdst)), shape=(m, m)
            )
            matrix_t = matrix.T.tocsr()
        return _CsrView(active_ids, csrc, cdst, out_degree, matrix, matrix_t)


# ---------------------------------------------------------------------- #
# Vectorized kernels
# ---------------------------------------------------------------------- #
def pagerank_scores(
    graph: LinkGraph,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
    x0: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """PageRank over the active nodes of ``graph`` by sparse power iteration.

    One spmv per iteration; dangling-node mass is redistributed uniformly
    through a single masked sum, matching the dense reference's conventions
    (L1 stopping rule, final sum-to-1 normalisation).

    Args:
        graph: The link graph.
        damping: Link-following probability (standard ``alpha``; the
            paper's ``d`` maps through ``damping = 1 - d``).
        tolerance: L1 convergence threshold.
        max_iterations: Iteration cap.
        x0: Optional warm-start vector aligned with the active nodes
            (``len == len(active_ids)``); entries that are NaN are seeded
            with the uniform prior. Normalised before iterating.

    Returns:
        ``(active_ids, scores)`` — interned node ids and their scores
        (non-negative, summing to 1).
    """
    if not 0.0 <= damping <= 1.0:
        raise ValueError("damping must be within [0, 1]")
    view = graph.csr()
    n = view.n
    if n == 0:
        return view.active_ids, np.zeros(0)
    scores = _seed_vector(x0, n)
    out = view.out_degree
    has_links = out > 0.0
    inverse_out = np.zeros(n)
    inverse_out[has_links] = 1.0 / out[has_links]
    dangling = ~has_links
    teleport = (1.0 - damping) / n
    for _ in range(max_iterations):
        shares = scores * inverse_out
        new_scores = _spmv_t(view, shares)
        new_scores *= damping
        new_scores += teleport + damping * float(scores[dangling].sum()) / n
        if float(np.abs(new_scores - scores).sum()) < tolerance:
            scores = new_scores
            break
        scores = new_scores
    total = float(scores.sum())
    if total > 0:
        scores = scores / total
    return view.active_ids, scores


def hits_scores(
    graph: LinkGraph,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
    hubs0: Optional[np.ndarray] = None,
    authorities0: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hub/authority scores over the active nodes by sparse power iteration.

    Args:
        graph: The link graph.
        tolerance: L1 convergence threshold on both vectors combined.
        max_iterations: Iteration cap.
        hubs0, authorities0: Optional warm-start vectors aligned with the
            active nodes (NaN entries seeded uniformly).

    Returns:
        ``(active_ids, hubs, authorities)``; each score vector is L1
        normalised (all zeros for an edgeless graph), matching the dense
        reference.
    """
    view = graph.csr()
    n = view.n
    if n == 0:
        empty = np.zeros(0)
        return view.active_ids, empty, empty
    if len(view.src) == 0:
        return view.active_ids, np.zeros(n), np.zeros(n)
    hubs = _seed_vector(hubs0, n)
    authorities = _seed_vector(authorities0, n)
    for _ in range(max_iterations):
        new_authorities = _spmv_t(view, hubs)
        new_hubs = _spmv(view, new_authorities)
        new_authorities = _normalise(new_authorities)
        new_hubs = _normalise(new_hubs)
        delta = float(
            np.abs(new_hubs - hubs).sum() + np.abs(new_authorities - authorities).sum()
        )
        hubs, authorities = new_hubs, new_authorities
        if delta < tolerance:
            break
    return view.active_ids, hubs, authorities


def pagerank_dict(
    graph: Graph,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> Dict[str, float]:
    """Dense-adjacency facade over :func:`pagerank_scores`.

    Drop-in for the dict-based reference: same signature, same node set,
    tolerance-level agreement on scores.
    """
    link_graph = LinkGraph.from_graph(graph)
    ids, scores = pagerank_scores(
        link_graph,
        damping=damping,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )
    urls = link_graph._urls
    return {urls[node]: score for node, score in zip(ids.tolist(), scores.tolist())}


def hits_dict(
    graph: Graph,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Dense-adjacency facade over :func:`hits_scores`."""
    link_graph = LinkGraph.from_graph(graph)
    ids, hubs, authorities = hits_scores(
        link_graph, tolerance=tolerance, max_iterations=max_iterations
    )
    urls = link_graph._urls
    id_list = ids.tolist()
    return (
        {urls[node]: score for node, score in zip(id_list, hubs.tolist())},
        {urls[node]: score for node, score in zip(id_list, authorities.tolist())},
    )


# ---------------------------------------------------------------------- #
# Kernel internals
# ---------------------------------------------------------------------- #
def _seed_vector(x0: Optional[np.ndarray], n: int) -> np.ndarray:
    """Warm-start vector: NaNs → uniform prior, then L1-normalised."""
    if x0 is None:
        return np.full(n, 1.0 / n)
    seeded = np.asarray(x0, dtype=np.float64).copy()
    if len(seeded) != n:
        raise ValueError(f"warm-start vector has length {len(seeded)}, expected {n}")
    missing = ~np.isfinite(seeded)
    seeded[missing] = 1.0 / n
    total = float(seeded.sum())
    if total <= 0.0:
        return np.full(n, 1.0 / n)
    return seeded / total


def _spmv(view: _CsrView, vector: np.ndarray) -> np.ndarray:
    """``A @ vector`` over the live edges (scipy CSR or bincount fallback)."""
    if view.matrix is not None:
        return view.matrix.dot(vector)
    return np.bincount(view.src, weights=vector[view.dst], minlength=view.n)


def _spmv_t(view: _CsrView, vector: np.ndarray) -> np.ndarray:
    """``A.T @ vector`` over the live edges."""
    if view.matrix_t is not None:
        return view.matrix_t.dot(vector)
    return np.bincount(view.dst, weights=vector[view.src], minlength=view.n)


def _normalise(vector: np.ndarray) -> np.ndarray:
    total = float(vector.sum())
    if total == 0.0:
        return vector
    return vector / total
