"""PageRank.

The paper quotes the PageRank equation as

    PR(P) = d + (1 - d) [ PR(P1)/c1 + ... + PR(Pn)/cn ]

with a "damping factor" of 0.9. In the more common normalisation
(Page & Brin, 1998) the link-following weight is called the damping factor
``alpha`` and the equation reads ``PR(P) = (1 - alpha) + alpha * sum(...)``;
the paper's ``d`` therefore corresponds to ``1 - alpha``. We implement the
standard form (:func:`pagerank`, default ``damping=0.85``) and a thin
wrapper (:func:`cho_pagerank`) that accepts the paper's parameterisation so
benchmarks can quote the experiment exactly as written.

:func:`pagerank` computes by sparse power iteration — the dict adjacency is
interned into a :class:`repro.ranking.sparse.LinkGraph` and solved with one
CSR spmv per iteration (uniform redistribution of dangling-node mass,
scores normalised to sum to 1). The original dense per-node loop survives
as :func:`pagerank_reference`, pinned against the sparse path by the parity
suite (``tests/test_ranking_sparse.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.ranking.sparse import LinkGraph, pagerank_dict, pagerank_scores

Graph = Mapping[str, Sequence[str]]


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> Dict[str, float]:
    """Compute PageRank scores for every node of ``graph``.

    Args:
        graph: Mapping from node to the nodes it links to. Nodes that appear
            only as link targets are included automatically. Links to
            unknown nodes are kept (the target node is created), since the
            RankingModule estimates the rank of pages it has not collected
            yet from the links pointing at them (Section 5.3, footnote 2).
        damping: Probability of following a link (the standard ``alpha``).
        tolerance: L1 convergence threshold.
        max_iterations: Iteration cap.

    Returns:
        Mapping from node to score; scores are non-negative and sum to 1.
    """
    return pagerank_dict(
        graph, damping=damping, tolerance=tolerance, max_iterations=max_iterations
    )


def pagerank_reference(
    graph: Graph,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> Dict[str, float]:
    """The retired dense per-node power iteration (see :func:`pagerank`).

    Kept as the pinned reference implementation: the sparse path must agree
    with it to tolerance on every fixed point and exactly on node sets.
    """
    if not 0.0 <= damping <= 1.0:
        raise ValueError("damping must be within [0, 1]")
    nodes = _collect_nodes(graph)
    if not nodes:
        return {}
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)

    out_links: list = [[] for _ in range(n)]
    for source, targets in graph.items():
        source_index = index[source]
        for target in targets:
            out_links[source_index].append(index[target])

    scores = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for _ in range(max_iterations):
        new_scores = np.full(n, teleport)
        dangling_mass = 0.0
        for i in range(n):
            targets = out_links[i]
            if not targets:
                dangling_mass += scores[i]
                continue
            share = damping * scores[i] / len(targets)
            for j in targets:
                new_scores[j] += share
        new_scores += damping * dangling_mass / n
        if float(np.abs(new_scores - scores).sum()) < tolerance:
            scores = new_scores
            break
        scores = new_scores
    total = float(scores.sum())
    if total > 0:
        scores = scores / total
    return {node: float(scores[index[node]]) for node in nodes}


def cho_pagerank(
    graph: Graph,
    d: float = 0.9,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> Dict[str, float]:
    """PageRank with the paper's parameterisation ``PR = d + (1-d) * sum``.

    Args:
        graph: Adjacency mapping (see :func:`pagerank`).
        d: The paper's "damping factor" (0.9 in the experiment); the
            link-following weight is ``1 - d``.

    Returns:
        Scores normalised to sum to 1.
    """
    if not 0.0 <= d <= 1.0:
        raise ValueError("d must be within [0, 1]")
    return pagerank(
        graph,
        damping=1.0 - d,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )


def estimated_pagerank_for_candidates(
    graph: Graph,
    candidate_urls: Iterable[str],
    damping: float = 0.85,
) -> Dict[str, float]:
    """Estimate ranks for pages outside the collection.

    Footnote 2 of the paper: "even if a page p does not exist in the
    Collection, the RankingModule can estimate PageRank of p, based on how
    many pages in the Collection have a link to p." This helper computes
    PageRank over the collection graph *including* links that point at the
    candidate URLs — on the sparse path — and returns only the candidates'
    scores.

    Args:
        graph: Adjacency mapping of the collected pages (links to candidates
            included).
        candidate_urls: URLs not in the collection whose rank is needed.
        damping: Link-following probability.

    Returns:
        Mapping from candidate URL to its estimated score (0.0 for
        candidates that nothing links to).
    """
    link_graph = LinkGraph.from_graph(graph)
    ids, score_vector = pagerank_scores(link_graph, damping=damping)
    scores = {
        link_graph.url_of(node): score
        for node, score in zip(ids.tolist(), score_vector.tolist())
    }
    return {url: scores.get(url, 0.0) for url in candidate_urls}


def _collect_nodes(graph: Graph) -> list:
    """All nodes: sources plus any link target not listed as a source."""
    nodes = list(graph.keys())
    seen = set(nodes)
    for targets in graph.values():
        for target in targets:
            if target not in seen:
                seen.add(target)
                nodes.append(target)
    return nodes
