"""Site-level PageRank over the site hypergraph.

Section 2.2: "we first construct a hypergraph, where the nodes correspond to
the web sites and the edges correspond to the links between the sites. Then
for this hypergraph, we can define the PR value for each node (site) using
the same formula above. The value for a site then gives us the measure of
the popularity of the web site."

:func:`build_site_graph` collapses page-level links into site-level edges
(parallel links between the same pair of sites are merged; intra-site links
are dropped) and :func:`site_pagerank` runs PageRank — the sparse CSR
kernel of :mod:`repro.ranking.sparse` — over the result. The site-selection
step of the experiment reproduction uses this ranking to pick the "popular"
candidate sites.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence

from repro.ranking.pagerank import pagerank

PageGraph = Mapping[str, Sequence[str]]


def build_site_graph(
    page_graph: PageGraph,
    site_of: Callable[[str], str],
) -> Dict[str, list]:
    """Collapse a page-level link graph into a site-level graph.

    Args:
        page_graph: Mapping from page URL to linked page URLs.
        site_of: Function mapping a page URL to its site identifier.

    Returns:
        Mapping from site id to a sorted list of distinct site ids it links
        to (self-links removed).
    """
    edges: Dict[str, set] = {}
    for source_url, targets in page_graph.items():
        source_site = site_of(source_url)
        edges.setdefault(source_site, set())
        for target_url in targets:
            target_site = site_of(target_url)
            edges.setdefault(target_site, set())
            if target_site != source_site:
                edges[source_site].add(target_site)
    return {site: sorted(targets) for site, targets in edges.items()}


def site_pagerank(
    page_graph: PageGraph,
    site_of: Callable[[str], str],
    damping: float = 0.85,
) -> Dict[str, float]:
    """Site popularity: PageRank over the collapsed site hypergraph.

    Args:
        page_graph: Mapping from page URL to linked page URLs.
        site_of: Function mapping a page URL to its site identifier.
        damping: Link-following probability of the underlying PageRank.

    Returns:
        Mapping from site id to popularity score (sums to 1).
    """
    site_graph = build_site_graph(page_graph, site_of)
    return pagerank(site_graph, damping=damping)


def top_sites(
    site_scores: Mapping[str, float],
    n: int,
) -> list:
    """The ``n`` most popular sites, most popular first (ties by site id)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    ranked = sorted(site_scores.items(), key=lambda item: (-item[1], item[0]))
    return [site for site, _ in ranked[:n]]
