"""Discrete-event crawl simulation.

The analytic freshness formulas of :mod:`repro.freshness.analytic` assume an
idealised crawler; this package provides a Monte-Carlo simulator that plays
out the same policies against sampled Poisson change processes, which serves
two purposes:

* it cross-checks the closed-form results (the integration tests assert the
  simulator and the formulas agree within sampling noise);
* it evaluates policies the formulas do not cover, such as arbitrary
  per-page revisit allocations (used in the Figure 9/10 benchmarks).

It also contains the small virtual-clock and event-queue machinery shared by
the incremental-crawler architecture in :mod:`repro.core`.
"""

from repro.simulation.clock import VirtualClock
from repro.simulation.events import EventQueue, ScheduledEvent
from repro.simulation.freshness_tracker import FreshnessTimeSeries, FreshnessTracker
from repro.simulation.crawler_sim import (
    PolicySimulationResult,
    simulate_crawl_policy,
    simulate_revisit_allocation,
)
from repro.simulation.scenarios import (
    paper_table2_policies,
    sensitivity_example_policies,
    table2_scenario_rate,
)

__all__ = [
    "VirtualClock",
    "EventQueue",
    "ScheduledEvent",
    "FreshnessTracker",
    "FreshnessTimeSeries",
    "PolicySimulationResult",
    "simulate_crawl_policy",
    "simulate_revisit_allocation",
    "paper_table2_policies",
    "sensitivity_example_policies",
    "table2_scenario_rate",
]
