"""A minimal discrete-event queue.

The incremental crawler interleaves several recurring activities — popping
URLs from the priority queue, recomputing importance scores, taking
freshness measurements. The :class:`EventQueue` orders those activities on
the shared virtual clock; each event carries a callback which may schedule
follow-up events (for recurring activities).

:class:`StreamScheduler` is the batched engine's counterpart: the same
``(time, sequence)`` ordering contract, but exposed as data rather than
callbacks, so a driver can pop one labelled event, *claim* the sequence
numbers of an entire run of same-stream follow-ups it intends to process in
bulk, and still interleave with the other streams exactly as the callback
queue would have.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.simulation.clock import VirtualClock

EventCallback = Callable[[float], None]


@dataclass(order=True)
class ScheduledEvent:
    """An event on the queue, ordered by time then insertion order."""

    time: float
    sequence: int
    label: str = field(compare=False)
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Time-ordered event queue driving a :class:`VirtualClock`.

    Args:
        clock: The shared virtual clock; events run at their scheduled time
            and the clock is advanced to that time before the callback fires.
    """

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._heap: List[ScheduledEvent] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def clock(self) -> VirtualClock:
        """The clock events are scheduled against."""
        return self._clock

    @property
    def pending(self) -> int:
        """Number of events still waiting to run."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def processed(self) -> int:
        """Number of events that have been executed."""
        return self._processed

    def schedule(self, time: float, callback: EventCallback, label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to run at virtual time ``time``.

        Scheduling an event in the past raises — events may only be placed
        at or after the current clock time.
        """
        if time < self._clock.now - 1e-12:
            raise ValueError(
                f"cannot schedule an event at {time} before the current time "
                f"{self._clock.now}"
            )
        event = ScheduledEvent(
            time=time,
            sequence=next(self._counter),
            label=label,
            callback=callback,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` days from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._clock.now + delay, callback, label)

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a previously scheduled event (it will be skipped)."""
        event.cancelled = True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events in time order until ``end_time`` (inclusive).

        Args:
            end_time: Stop once the next event would run after this time.
                The clock is left at ``end_time`` (or at the last event time
                if that is later due to an exactly-equal timestamp).
            max_events: Optional safety cap on the number of events.

        Returns:
            The number of events executed by this call.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if event.time > end_time + 1e-12:
                break
            heapq.heappop(self._heap)
            self._clock.advance_to(event.time)
            event.callback(self._clock.now)
            executed += 1
            self._processed += 1
        self._clock.advance_to(end_time)
        return executed


class StreamScheduler:
    """Heap of labelled recurring events with :class:`EventQueue` ordering.

    Events are ordered by ``(time, sequence)`` with sequence numbers
    assigned in scheduling order — exactly the contract of
    :class:`EventQueue` — so a driver that replays the same scheduling
    decisions observes the same interleaving, including ties. The extra
    capability over a plain heap is :meth:`claim_sequence`: the batched
    crawl engine processes many crawl slots per pop, and each *virtual*
    slot consumes a sequence number just as its per-event counterpart
    would have, keeping every later tie-break decision identical to the
    event-per-fetch execution.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, str]] = []
        self._next_sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def next_sequence(self) -> int:
        """The sequence number the next scheduled (or claimed) event gets."""
        return self._next_sequence

    def claim_sequence(self) -> int:
        """Consume and return the next sequence number without scheduling.

        Used for events that are processed inline (a crawl slot folded into
        a batch) but must still count against the ordering, so that a
        subsequent real event ties against later streams exactly as if the
        inline event had been scheduled and popped.
        """
        sequence = self._next_sequence
        self._next_sequence += 1
        return sequence

    def claim_sequences(self, count: int) -> None:
        """Consume ``count`` sequence numbers at once (bulk inline events)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._next_sequence += count

    def schedule(self, time: float, label: str) -> None:
        """Schedule a ``label`` event at virtual time ``time``."""
        heapq.heappush(self._heap, (time, self.claim_sequence(), label))

    def peek(self) -> Optional[Tuple[float, int, str]]:
        """The earliest ``(time, sequence, label)`` without removing it."""
        return self._heap[0] if self._heap else None

    def pop(self) -> Tuple[float, int, str]:
        """Remove and return the earliest ``(time, sequence, label)``."""
        return heapq.heappop(self._heap)

    def snapshot(self) -> dict:
        """JSON-serializable scheduler state (entries + sequence counter)."""
        return {
            "entries": [list(entry) for entry in sorted(self._heap)],
            "next_sequence": self._next_sequence,
        }

    def restore_snapshot(self, state: dict) -> None:
        """Rebuild the scheduler exactly as captured by :meth:`snapshot`."""
        self._heap = [
            (float(time), int(sequence), str(label))
            for time, sequence, label in state["entries"]
        ]
        heapq.heapify(self._heap)
        self._next_sequence = int(state["next_sequence"])
