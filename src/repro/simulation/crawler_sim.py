"""Monte-Carlo simulation of crawl policies over Poisson pages.

The simulator plays out a crawl policy against a population of pages with
known Poisson change rates and measures the empirical freshness of the
user-visible collection over time. It works at the page-statistics level
(no URLs, no content) so that large populations and long horizons run in
milliseconds; the full-architecture simulation lives in :mod:`repro.core`.

Two entry points:

* :func:`simulate_crawl_policy` — the four Section 4 combinations (steady or
  batch crossed with in-place or shadowing), every page revisited once per
  cycle. Used to cross-check the analytic formulas and to regenerate
  Figures 7/8 and Table 2 by measurement rather than by formula.
* :func:`simulate_revisit_allocation` — arbitrary per-page revisit
  intervals (uniform, proportional or optimal allocations), used for the
  Figure 9/10 policy-comparison benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.freshness.analytic import CrawlMode, CrawlPolicy, UpdateMode


@dataclass(frozen=True)
class PolicySimulationResult:
    """Result of a Monte-Carlo crawl-policy simulation.

    Attributes:
        times: Sample instants (days), measured from the start of the
            measurement window (warm-up excluded).
        freshness: Empirical freshness of the user-visible collection at
            each sample instant.
        mean_freshness: Time-averaged freshness over the measurement window.
    """

    times: Sequence[float]
    freshness: Sequence[float]
    mean_freshness: float


def simulate_crawl_policy(
    rates: Sequence[float],
    policy: CrawlPolicy,
    n_cycles: int = 12,
    samples_per_cycle: int = 40,
    warmup_cycles: int = 2,
    seed: int = 0,
) -> PolicySimulationResult:
    """Simulate one of the four Section 4 policy combinations.

    Every page is re-fetched exactly once per cycle. For a steady crawler
    the fetch phases are spread uniformly over the cycle; for a batch
    crawler they are spread uniformly over the batch window at the start of
    the cycle. With shadowing, fetched copies only become visible when the
    cycle's crawl completes.

    Args:
        rates: Per-page Poisson change rates (changes per day).
        policy: The crawl-policy combination to simulate.
        n_cycles: Number of measured cycles.
        samples_per_cycle: Freshness samples per cycle.
        warmup_cycles: Cycles simulated before measurement starts, so the
            system reaches steady state (shadowing needs at least one
            completed cycle before users see anything).
        seed: Random seed for the change-time sampling.

    Returns:
        A :class:`PolicySimulationResult`.
    """
    if not rates:
        raise ValueError("at least one page is required")
    if n_cycles < 1 or samples_per_cycle < 1:
        raise ValueError("n_cycles and samples_per_cycle must be positive")
    if warmup_cycles < 1:
        raise ValueError("warmup_cycles must be at least 1")
    rng = np.random.default_rng(seed)
    n_pages = len(rates)
    cycle = policy.cycle_days
    active = policy.active_duration_days
    total_days = (warmup_cycles + n_cycles) * cycle

    change_times = _sample_change_times(rates, total_days, rng)
    # Fetch phase of each page within its cycle's active window.
    phases = rng.uniform(0.0, active, size=n_pages)

    measure_start = warmup_cycles * cycle
    sample_times = np.linspace(
        measure_start,
        total_days,
        n_cycles * samples_per_cycle,
        endpoint=False,
    )

    freshness_values: List[float] = []
    for t in sample_times:
        copy_times = _copy_times_at(float(t), phases, policy)
        fresh = 0
        for page_index in range(n_pages):
            copy_time = copy_times[page_index]
            if copy_time is None:
                continue
            if _changes_between(change_times[page_index], copy_time, float(t)) == 0:
                fresh += 1
        freshness_values.append(fresh / n_pages)

    mean = float(np.mean(freshness_values)) if freshness_values else 0.0
    relative_times = [float(t - measure_start) for t in sample_times]
    return PolicySimulationResult(
        times=tuple(relative_times),
        freshness=tuple(freshness_values),
        mean_freshness=mean,
    )


def simulate_revisit_allocation(
    rates: Sequence[float],
    intervals: Sequence[float],
    duration_days: float = 360.0,
    n_samples: int = 400,
    warmup_days: Optional[float] = None,
    seed: int = 0,
) -> PolicySimulationResult:
    """Simulate an in-place crawler with arbitrary per-page revisit intervals.

    Args:
        rates: Per-page Poisson change rates.
        intervals: Per-page revisit intervals in days (``inf`` or values
            larger than the horizon mean the page is effectively never
            revisited after the initial fetch).
        duration_days: Length of the measurement window.
        n_samples: Number of freshness samples.
        warmup_days: Simulated time before measurement starts; defaults to
            the largest finite interval (so every page has been revisited at
            least once on its own schedule).
        seed: Random seed.

    Returns:
        A :class:`PolicySimulationResult`.
    """
    if len(rates) != len(intervals):
        raise ValueError("rates and intervals must have the same length")
    if not rates:
        raise ValueError("at least one page is required")
    if duration_days <= 0 or n_samples < 1:
        raise ValueError("duration_days and n_samples must be positive")
    rng = np.random.default_rng(seed)
    n_pages = len(rates)
    finite_intervals = [i for i in intervals if math.isfinite(i)]
    if warmup_days is None:
        warmup_days = max(finite_intervals) if finite_intervals else 0.0
    total_days = warmup_days + duration_days

    change_times = _sample_change_times(rates, total_days, rng)
    phases = np.array(
        [rng.uniform(0.0, interval) if math.isfinite(interval) and interval > 0 else 0.0
         for interval in intervals]
    )

    sample_times = np.linspace(warmup_days, total_days, n_samples, endpoint=False)
    freshness_values: List[float] = []
    for t in sample_times:
        fresh = 0
        for page_index in range(n_pages):
            interval = intervals[page_index]
            copy_time = _periodic_copy_time(float(t), float(phases[page_index]), interval)
            if copy_time is None:
                # Never fetched on its own schedule: count the initial fetch
                # at time zero as the stored copy.
                copy_time = 0.0
            if _changes_between(change_times[page_index], copy_time, float(t)) == 0:
                fresh += 1
        freshness_values.append(fresh / n_pages)

    mean = float(np.mean(freshness_values)) if freshness_values else 0.0
    relative_times = [float(t - warmup_days) for t in sample_times]
    return PolicySimulationResult(
        times=tuple(relative_times),
        freshness=tuple(freshness_values),
        mean_freshness=mean,
    )


# --------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------- #
def _sample_change_times(
    rates: Sequence[float], total_days: float, rng: np.random.Generator
) -> List[np.ndarray]:
    """Sample sorted Poisson change times for each page over the horizon."""
    change_times: List[np.ndarray] = []
    for rate in rates:
        if rate < 0:
            raise ValueError("rates must be non-negative")
        if rate == 0:
            change_times.append(np.empty(0))
            continue
        count = rng.poisson(rate * total_days)
        change_times.append(np.sort(rng.uniform(0.0, total_days, size=count)))
    return change_times


def _changes_between(times: np.ndarray, t0: float, t1: float) -> int:
    """Number of change events in ``(t0, t1]``."""
    if t1 < t0:
        return 0
    return int(np.searchsorted(times, t1, side="right") - np.searchsorted(times, t0, side="right"))


def _copy_times_at(
    t: float, phases: np.ndarray, policy: CrawlPolicy
) -> List[Optional[float]]:
    """When was the user-visible copy of each page fetched, as of time ``t``?

    Returns ``None`` for pages whose copy is not yet visible (only possible
    during the very first cycle of a shadowing crawler, which the warm-up
    excludes from measurement).
    """
    cycle = policy.cycle_days
    cycle_index = math.floor(t / cycle)
    cycle_start = cycle_index * cycle
    copy_times: List[Optional[float]] = []
    for phase in phases:
        fetch_this_cycle = cycle_start + float(phase)
        fetch_previous_cycle = fetch_this_cycle - cycle
        if policy.update_mode is UpdateMode.IN_PLACE:
            if fetch_this_cycle <= t:
                copy_times.append(fetch_this_cycle)
            elif fetch_previous_cycle >= 0:
                copy_times.append(fetch_previous_cycle)
            else:
                copy_times.append(None)
            continue
        # Shadowing: the visible copy comes from the most recent *completed*
        # crawl. A steady crawl completes at the cycle boundary; a batch
        # crawl completes at cycle_start + batch_duration.
        completion_offset = (
            cycle
            if policy.crawl_mode is CrawlMode.STEADY
            else policy.batch_duration_days
        )
        if t >= cycle_start + completion_offset:
            copy_times.append(fetch_this_cycle)
        elif fetch_previous_cycle >= 0:
            copy_times.append(fetch_previous_cycle)
        else:
            copy_times.append(None)
    return copy_times


def _periodic_copy_time(t: float, phase: float, interval: float) -> Optional[float]:
    """Most recent fetch time at or before ``t`` for a periodic schedule."""
    if not math.isfinite(interval) or interval <= 0:
        return None
    if t < phase:
        return None
    periods = math.floor((t - phase) / interval)
    return phase + periods * interval
