"""Monte-Carlo simulation of crawl policies over Poisson pages.

The simulator plays out a crawl policy against a population of pages with
known Poisson change rates and measures the empirical freshness of the
user-visible collection over time. It works at the page-statistics level
(no URLs, no content) so that large populations and long horizons run in
milliseconds; the full-architecture simulation lives in :mod:`repro.core`.

Two entry points:

* :func:`simulate_crawl_policy` — the four Section 4 combinations (steady or
  batch crossed with in-place or shadowing), every page revisited once per
  cycle. Used to cross-check the analytic formulas and to regenerate
  Figures 7/8 and Table 2 by measurement rather than by formula.
* :func:`simulate_revisit_allocation` — arbitrary per-page revisit
  intervals (uniform, proportional or optimal allocations), used for the
  Figure 9/10 policy-comparison benchmarks.

Both entry points run on a vectorized NumPy core: all change events are
concatenated into one flat per-page-sorted array, each event is binned
against the sorted sample grid with a single ``np.searchsorted``, and a
running maximum along the sample axis yields the last change at or before
every sample instant for every page at once. A page is fresh at ``t`` iff
that last change does not postdate the user-visible copy's fetch time,
which is computed for all (page, sample) pairs by broadcast arithmetic.

The original per-page/per-sample loops are retained as
:func:`simulate_crawl_policy_reference` and
:func:`simulate_revisit_allocation_reference`; they consume the random
stream identically (sampling is shared) so the vectorized results match
them exactly on shared seeds. They exist for the parity tests and the
``benchmarks/bench_perf_hotpaths.py`` speedup trajectory only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.freshness.analytic import CrawlMode, CrawlPolicy, UpdateMode

ArrayLike = Union[Sequence[float], np.ndarray]


@dataclass(frozen=True)
class PolicySimulationResult:
    """Result of a Monte-Carlo crawl-policy simulation.

    Attributes:
        times: Sample instants (days), measured from the start of the
            measurement window (warm-up excluded).
        freshness: Empirical freshness of the user-visible collection at
            each sample instant.
        mean_freshness: Time-averaged freshness over the measurement window.
    """

    times: Sequence[float]
    freshness: Sequence[float]
    mean_freshness: float


def simulate_crawl_policy(
    rates: ArrayLike,
    policy: CrawlPolicy,
    n_cycles: int = 12,
    samples_per_cycle: int = 40,
    warmup_cycles: int = 2,
    seed: int = 0,
) -> PolicySimulationResult:
    """Simulate one of the four Section 4 policy combinations.

    Every page is re-fetched exactly once per cycle. For a steady crawler
    the fetch phases are spread uniformly over the cycle; for a batch
    crawler they are spread uniformly over the batch window at the start of
    the cycle. With shadowing, fetched copies only become visible when the
    cycle's crawl completes.

    Args:
        rates: Per-page Poisson change rates (changes per day); any
            sequence or NumPy array.
        policy: The crawl-policy combination to simulate.
        n_cycles: Number of measured cycles.
        samples_per_cycle: Freshness samples per cycle.
        warmup_cycles: Cycles simulated before measurement starts, so the
            system reaches steady state (shadowing needs at least one
            completed cycle before users see anything).
        seed: Random seed for the change-time sampling.

    Returns:
        A :class:`PolicySimulationResult`.
    """
    rates = _as_rates(rates)
    _validate_policy_args(n_cycles, samples_per_cycle, warmup_cycles)
    rng = np.random.default_rng(seed)
    n_pages = len(rates)
    cycle = policy.cycle_days
    total_days = (warmup_cycles + n_cycles) * cycle

    change_times = _sample_change_times(rates, total_days, rng)
    phases = rng.uniform(0.0, policy.active_duration_days, size=n_pages)

    measure_start = warmup_cycles * cycle
    sample_times = np.linspace(
        measure_start, total_days, n_cycles * samples_per_cycle, endpoint=False
    )

    freshness = _freshness_series(
        change_times,
        sample_times,
        lambda block: _policy_copy_times(block, phases, policy),
    )
    return _build_result(sample_times, freshness, measure_start)


def simulate_crawl_policy_reference(
    rates: ArrayLike,
    policy: CrawlPolicy,
    n_cycles: int = 12,
    samples_per_cycle: int = 40,
    warmup_cycles: int = 2,
    seed: int = 0,
) -> PolicySimulationResult:
    """Pure-Python loop implementation of :func:`simulate_crawl_policy`.

    Kept only for the parity suite and the perf-trajectory benchmark; the
    random stream is identical to the vectorized path.
    """
    rates = _as_rates(rates)
    _validate_policy_args(n_cycles, samples_per_cycle, warmup_cycles)
    rng = np.random.default_rng(seed)
    n_pages = len(rates)
    cycle = policy.cycle_days
    total_days = (warmup_cycles + n_cycles) * cycle

    change_times = _sample_change_times(rates, total_days, rng)
    phases = rng.uniform(0.0, policy.active_duration_days, size=n_pages)

    measure_start = warmup_cycles * cycle
    sample_times = np.linspace(
        measure_start, total_days, n_cycles * samples_per_cycle, endpoint=False
    )

    freshness_values: List[float] = []
    for t in sample_times:
        copy_times = _copy_times_at(float(t), phases, policy)
        fresh = 0
        for page_index in range(n_pages):
            copy_time = copy_times[page_index]
            if copy_time is None:
                continue
            if _changes_between(change_times[page_index], copy_time, float(t)) == 0:
                fresh += 1
        freshness_values.append(fresh / n_pages)

    return _build_result(sample_times, np.asarray(freshness_values), measure_start)


def simulate_revisit_allocation(
    rates: ArrayLike,
    intervals: ArrayLike,
    duration_days: float = 360.0,
    n_samples: int = 400,
    warmup_days: Optional[float] = None,
    seed: int = 0,
) -> PolicySimulationResult:
    """Simulate an in-place crawler with arbitrary per-page revisit intervals.

    Args:
        rates: Per-page Poisson change rates; any sequence or NumPy array.
        intervals: Per-page revisit intervals in days (``inf`` or values
            larger than the horizon mean the page is effectively never
            revisited after the initial fetch).
        duration_days: Length of the measurement window.
        n_samples: Number of freshness samples.
        warmup_days: Simulated time before measurement starts; defaults to
            the largest finite interval (so every page has been revisited at
            least once on its own schedule).
        seed: Random seed.

    Returns:
        A :class:`PolicySimulationResult`.
    """
    rates, intervals = _as_rates_and_intervals(rates, intervals)
    _validate_allocation_args(duration_days, n_samples)
    rng = np.random.default_rng(seed)
    warmup_days = _default_warmup(intervals, warmup_days)
    total_days = warmup_days + duration_days

    change_times = _sample_change_times(rates, total_days, rng)
    phases = _sample_phases(intervals, rng)

    sample_times = np.linspace(warmup_days, total_days, n_samples, endpoint=False)

    freshness = _freshness_series(
        change_times,
        sample_times,
        lambda block: _periodic_copy_times(block, phases, intervals),
    )
    return _build_result(sample_times, freshness, warmup_days)


def simulate_revisit_allocation_reference(
    rates: ArrayLike,
    intervals: ArrayLike,
    duration_days: float = 360.0,
    n_samples: int = 400,
    warmup_days: Optional[float] = None,
    seed: int = 0,
) -> PolicySimulationResult:
    """Pure-Python loop implementation of :func:`simulate_revisit_allocation`.

    Kept only for the parity suite and the perf-trajectory benchmark; the
    random stream is identical to the vectorized path.
    """
    rates, intervals = _as_rates_and_intervals(rates, intervals)
    _validate_allocation_args(duration_days, n_samples)
    rng = np.random.default_rng(seed)
    n_pages = len(rates)
    warmup_days = _default_warmup(intervals, warmup_days)
    total_days = warmup_days + duration_days

    change_times = _sample_change_times(rates, total_days, rng)
    phases = _sample_phases(intervals, rng)

    sample_times = np.linspace(warmup_days, total_days, n_samples, endpoint=False)
    freshness_values: List[float] = []
    for t in sample_times:
        fresh = 0
        for page_index in range(n_pages):
            interval = float(intervals[page_index])
            copy_time = _periodic_copy_time(float(t), float(phases[page_index]), interval)
            if copy_time is None:
                # Never fetched on its own schedule: count the initial fetch
                # at time zero as the stored copy.
                copy_time = 0.0
            if _changes_between(change_times[page_index], copy_time, float(t)) == 0:
                fresh += 1
        freshness_values.append(fresh / n_pages)

    return _build_result(sample_times, np.asarray(freshness_values), warmup_days)


# --------------------------------------------------------------------- #
# Input handling shared by both implementations
# --------------------------------------------------------------------- #
def _as_rates(rates: ArrayLike) -> np.ndarray:
    rates = np.asarray(rates, dtype=float)
    if rates.ndim != 1:
        raise ValueError("rates must be a one-dimensional sequence")
    if rates.size == 0:
        raise ValueError("at least one page is required")
    if np.any(rates < 0):
        raise ValueError("rates must be non-negative")
    return rates


def _as_rates_and_intervals(
    rates: ArrayLike, intervals: ArrayLike
) -> Tuple[np.ndarray, np.ndarray]:
    raw_rates = np.asarray(rates, dtype=float)
    intervals = np.asarray(intervals, dtype=float)
    if intervals.ndim != 1:
        raise ValueError("intervals must be a one-dimensional sequence")
    if raw_rates.shape != intervals.shape:
        raise ValueError("rates and intervals must have the same length")
    return _as_rates(raw_rates), intervals


def _validate_policy_args(n_cycles: int, samples_per_cycle: int, warmup_cycles: int) -> None:
    if n_cycles < 1 or samples_per_cycle < 1:
        raise ValueError("n_cycles and samples_per_cycle must be positive")
    if warmup_cycles < 1:
        raise ValueError("warmup_cycles must be at least 1")


def _validate_allocation_args(duration_days: float, n_samples: int) -> None:
    if duration_days <= 0 or n_samples < 1:
        raise ValueError("duration_days and n_samples must be positive")


def _default_warmup(intervals: np.ndarray, warmup_days: Optional[float]) -> float:
    if warmup_days is not None:
        return warmup_days
    finite = intervals[np.isfinite(intervals)]
    return float(finite.max()) if finite.size else 0.0


def _build_result(
    sample_times: np.ndarray, freshness: np.ndarray, window_start: float
) -> PolicySimulationResult:
    mean = float(np.mean(freshness)) if freshness.size else 0.0
    relative_times = tuple(float(t - window_start) for t in sample_times)
    return PolicySimulationResult(
        times=relative_times,
        freshness=tuple(float(f) for f in freshness),
        mean_freshness=mean,
    )


# --------------------------------------------------------------------- #
# Sampling (shared so reference and vectorized paths draw identically)
# --------------------------------------------------------------------- #
def _sample_change_times(
    rates: np.ndarray, total_days: float, rng: np.random.Generator
) -> List[np.ndarray]:
    """Sample sorted Poisson change times for each page over the horizon."""
    change_times: List[np.ndarray] = []
    for rate in rates:
        if rate < 0:
            raise ValueError("rates must be non-negative")
        if rate == 0:
            change_times.append(np.empty(0))
            continue
        count = rng.poisson(rate * total_days)
        change_times.append(np.sort(rng.uniform(0.0, total_days, size=count)))
    return change_times


def _sample_phases(intervals: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Random fetch phase within each page's own revisit period.

    Pages with a non-finite or non-positive interval draw nothing, so the
    random stream only depends on which pages have a schedule.
    """
    return np.array(
        [rng.uniform(0.0, interval) if math.isfinite(interval) and interval > 0 else 0.0
         for interval in intervals]
    )


# --------------------------------------------------------------------- #
# Vectorized core
# --------------------------------------------------------------------- #
#: Target element count of the per-chunk (pages x samples) work matrices.
#: Chunking the sample axis bounds peak memory at a few such matrices
#: (~16 MB each of float64) regardless of population size or horizon,
#: where a single dense (pages x samples) pass would scale without limit.
_CHUNK_ELEMENTS = 1 << 21

CopyTimesFn = Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]


def _freshness_series(
    change_times: Sequence[np.ndarray],
    sample_times: np.ndarray,
    copy_times_for: CopyTimesFn,
) -> np.ndarray:
    """Freshness of the population at every sample instant, fully batched.

    Args:
        change_times: Per-page sorted change-event times.
        sample_times: Sorted sample instants, shape ``(S,)``.
        copy_times_for: Maps a block of sample instants to the
            ``(copy_times, visible)`` matrices for those instants —
            the fetch time of the user-visible copy for every
            (page, sample) pair, and whether a copy is visible at all
            (False only during a shadowing crawler's first cycle; an
            invisible copy counts as not fresh).

    Returns:
        Freshness values, shape ``(S,)``.

    A page is fresh at ``t`` iff no change falls in ``(copy_time, t]``,
    i.e. iff the last change at or before ``t`` is at or before the copy
    time. Each event is binned against the sample grid with a single
    ``searchsorted``; the last-change-so-far matrix is then built chunk by
    chunk along the sample axis with a running maximum, carrying each
    page's last event across chunk boundaries, so peak memory stays
    bounded (a few ``_CHUNK_ELEMENTS``-sized matrices) for any population.
    """
    n_pages = len(change_times)
    n_samples = len(sample_times)
    lengths = np.array([len(times) for times in change_times], dtype=np.int64)
    if lengths.sum() > 0:
        flat = np.concatenate([times for times in change_times if len(times)])
        page_ids = np.repeat(np.arange(n_pages, dtype=np.int64), lengths)
        # First sample instant at or after each event; the event is "seen"
        # (is <= t) by that sample and every later one. Sorting by bin keeps
        # same-page events time-ascending (the sort is stable), which the
        # last-assignment-wins scatter below relies on.
        bins = np.searchsorted(sample_times, flat, side="left")
        order = np.argsort(bins, kind="stable")
        flat, page_ids, bins = flat[order], page_ids[order], bins[order]
    else:
        flat = np.empty(0)
        page_ids = bins = np.empty(0, dtype=np.int64)

    freshness = np.empty(n_samples)
    carry = np.full(n_pages, -np.inf)  # last change at or before the previous chunk
    chunk = max(1, _CHUNK_ELEMENTS // max(1, n_pages))
    event_start = 0
    for block_start in range(0, n_samples, chunk):
        block_end = min(n_samples, block_start + chunk)
        last_change = np.full((n_pages, block_end - block_start), -np.inf)
        if flat.size:
            event_end = int(np.searchsorted(bins, block_end, side="left"))
            block = slice(event_start, event_end)
            # Events are time-ascending within each (page, bin) pair, so
            # with duplicate indices the last assignment — the largest
            # event time — wins.
            last_change[page_ids[block], bins[block] - block_start] = flat[block]
            event_start = event_end
        np.maximum(last_change[:, 0], carry, out=last_change[:, 0])
        np.maximum.accumulate(last_change, axis=1, out=last_change)
        carry = last_change[:, -1].copy()
        copy_times, visible = copy_times_for(sample_times[block_start:block_end])
        fresh = visible & (last_change <= copy_times)
        freshness[block_start:block_end] = fresh.sum(axis=0) / n_pages
    return freshness


def _policy_copy_times(
    sample_times: np.ndarray, phases: np.ndarray, policy: CrawlPolicy
) -> Tuple[np.ndarray, np.ndarray]:
    """Copy-time and visibility matrices for the once-per-cycle policies.

    Vectorized counterpart of :func:`_copy_times_at` evaluated at all
    sample instants: returns ``(copy_times, visible)`` with shape
    ``(n_pages, len(sample_times))``.
    """
    cycle = policy.cycle_days
    cycle_start = np.floor(sample_times / cycle) * cycle
    fetch_this = cycle_start[None, :] + phases[:, None]
    fetch_prev = fetch_this - cycle
    if policy.update_mode is UpdateMode.IN_PLACE:
        use_this = fetch_this <= sample_times[None, :]
    else:
        completion_offset = (
            cycle
            if policy.crawl_mode is CrawlMode.STEADY
            else policy.batch_duration_days
        )
        use_this = np.broadcast_to(
            sample_times[None, :] >= (cycle_start + completion_offset)[None, :],
            fetch_this.shape,
        )
    copy_times = np.where(use_this, fetch_this, fetch_prev)
    visible = use_this | (fetch_prev >= 0)
    return copy_times, visible


def _periodic_copy_times(
    sample_times: np.ndarray, phases: np.ndarray, intervals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Copy-time matrix for per-page periodic revisit schedules.

    Vectorized counterpart of :func:`_periodic_copy_time`; pages that have
    not been fetched on their own schedule fall back to the initial fetch
    at time zero, so every copy is visible.
    """
    scheduled = np.isfinite(intervals) & (intervals > 0)
    safe_intervals = np.where(scheduled, intervals, 1.0)
    periods = np.floor(
        (sample_times[None, :] - phases[:, None]) / safe_intervals[:, None]
    )
    copy_times = phases[:, None] + periods * safe_intervals[:, None]
    on_schedule = scheduled[:, None] & (sample_times[None, :] >= phases[:, None])
    copy_times = np.where(on_schedule, copy_times, 0.0)
    visible = np.ones_like(copy_times, dtype=bool)
    return copy_times, visible


# --------------------------------------------------------------------- #
# Reference (loop) internals
# --------------------------------------------------------------------- #
def _changes_between(times: np.ndarray, t0: float, t1: float) -> int:
    """Number of change events in ``(t0, t1]``."""
    if t1 < t0:
        return 0
    return int(np.searchsorted(times, t1, side="right") - np.searchsorted(times, t0, side="right"))


def _copy_times_at(
    t: float, phases: np.ndarray, policy: CrawlPolicy
) -> List[Optional[float]]:
    """When was the user-visible copy of each page fetched, as of time ``t``?

    Returns ``None`` for pages whose copy is not yet visible (only possible
    during the very first cycle of a shadowing crawler, which the warm-up
    excludes from measurement).
    """
    cycle = policy.cycle_days
    cycle_index = math.floor(t / cycle)
    cycle_start = cycle_index * cycle
    copy_times: List[Optional[float]] = []
    for phase in phases:
        fetch_this_cycle = cycle_start + float(phase)
        fetch_previous_cycle = fetch_this_cycle - cycle
        if policy.update_mode is UpdateMode.IN_PLACE:
            if fetch_this_cycle <= t:
                copy_times.append(fetch_this_cycle)
            elif fetch_previous_cycle >= 0:
                copy_times.append(fetch_previous_cycle)
            else:
                copy_times.append(None)
            continue
        # Shadowing: the visible copy comes from the most recent *completed*
        # crawl. A steady crawl completes at the cycle boundary; a batch
        # crawl completes at cycle_start + batch_duration.
        completion_offset = (
            cycle
            if policy.crawl_mode is CrawlMode.STEADY
            else policy.batch_duration_days
        )
        if t >= cycle_start + completion_offset:
            copy_times.append(fetch_this_cycle)
        elif fetch_previous_cycle >= 0:
            copy_times.append(fetch_previous_cycle)
        else:
            copy_times.append(None)
    return copy_times


def _periodic_copy_time(t: float, phase: float, interval: float) -> Optional[float]:
    """Most recent fetch time at or before ``t`` for a periodic schedule."""
    if not math.isfinite(interval) or interval <= 0:
        return None
    if t < phase:
        return None
    periods = math.floor((t - phase) / interval)
    return phase + periods * interval
