"""Recording freshness/age time series during a simulated crawl.

A :class:`FreshnessTracker` periodically samples the freshness (and age) of
a collection against the simulated-web oracle and accumulates a
:class:`FreshnessTimeSeries`, from which time-averaged values and
trajectories (the curves of Figures 7 and 8) can be read.

Each sample runs through the batched oracle path of
:mod:`repro.freshness.metrics`: the record list is materialised once and
measured with a handful of NumPy passes over the web's precomputed
change-time arrays, so measurement events inside ``IncrementalCrawler.run()``
cost O(records) array work rather than O(records) Python oracle calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.freshness.metrics import measure_collection, time_average
from repro.simweb.web import SimulatedWeb
from repro.storage.collection import Collection


@dataclass
class FreshnessTimeSeries:
    """A sampled freshness (and optionally age) time series."""

    times: List[float] = field(default_factory=list)
    freshness: List[float] = field(default_factory=list)
    age: List[float] = field(default_factory=list)

    def add(self, time: float, freshness: float, age: Optional[float] = None) -> None:
        """Append one sample."""
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be appended in chronological order")
        if not 0.0 <= freshness <= 1.0:
            raise ValueError("freshness must be within [0, 1]")
        self.times.append(time)
        self.freshness.append(freshness)
        self.age.append(age if age is not None else 0.0)

    def __len__(self) -> int:
        return len(self.times)

    def mean_freshness(self) -> float:
        """Time-weighted average freshness over the recorded samples."""
        return time_average(list(zip(self.times, self.freshness)))

    def mean_age(self) -> float:
        """Time-weighted average age over the recorded samples."""
        return time_average(list(zip(self.times, self.age)))

    def as_series(self) -> Tuple[Sequence[float], Sequence[float]]:
        """The ``(times, freshness)`` series for plotting/reporting."""
        return tuple(self.times), tuple(self.freshness)

    def after(self, start_time: float) -> "FreshnessTimeSeries":
        """A copy containing only samples at or after ``start_time``.

        Useful to drop warm-up transients before computing averages.
        """
        trimmed = FreshnessTimeSeries()
        for time, fresh, age in zip(self.times, self.freshness, self.age):
            if time >= start_time:
                trimmed.add(time, fresh, age)
        return trimmed


class FreshnessTracker:
    """Samples the freshness of a collection on a fixed schedule.

    Args:
        web: Ground-truth oracle.
        collection: The collection whose *current* records are measured.
        track_age: Whether to also record the age metric (slightly more
            expensive because it walks each page's change times).
        denominator: Optional fixed denominator for the freshness fraction.
            The paper's collection has a fixed target size; measuring
            freshness against that target (rather than against however many
            pages happen to be stored) penalises an incomplete collection,
            which matters for shadowing crawlers mid-cycle.
    """

    def __init__(
        self,
        web: SimulatedWeb,
        collection: Collection,
        track_age: bool = False,
        denominator: Optional[int] = None,
    ) -> None:
        if denominator is not None and denominator < 1:
            raise ValueError("denominator must be at least 1 when given")
        self._web = web
        self._collection = collection
        self._track_age = track_age
        self._denominator = denominator
        self.series = FreshnessTimeSeries()

    def sample(self, at: float) -> float:
        """Measure the collection freshness at virtual time ``at`` and record it."""
        records = list(self._collection.current_records())
        freshness, age = measure_collection(
            records, self._web, at, include_age=self._track_age
        )
        if self._denominator is not None:
            freshness = freshness * len(records) / self._denominator
            freshness = min(1.0, freshness)
        self.series.add(at, freshness, age)
        return freshness

    def sampler(self) -> Callable[[float], None]:
        """A callback suitable for scheduling on an :class:`EventQueue`."""

        def _sample(at: float) -> None:
            self.sample(at)

        return _sample
