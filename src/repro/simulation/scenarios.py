"""Canned scenarios matching the paper's Section 4 parameters.

Table 2 is computed under the assumption that "all pages change with an
average 4 month interval", that "the steady crawler revisits pages steadily
over a month", and that "the batch-mode crawler recrawls pages only in the
first week of every month". The sensitivity example later in Section 4 uses
pages that change every month and a batch crawler that operates for the
first two weeks of each month.

These helpers build the corresponding :class:`CrawlPolicy` objects and the
page change rate, so the benchmarks, tests and examples all agree on the
exact parameters.
"""

from __future__ import annotations

from typing import Dict

from repro.freshness.analytic import CrawlMode, CrawlPolicy, UpdateMode

#: Days per month used by the Section 4 scenarios.
DAYS_PER_MONTH = 30.0

#: The paper's Table 2 values, for paper-vs-measured comparisons.
PAPER_TABLE2_FRESHNESS: Dict[str, float] = {
    "steady / in-place": 0.88,
    "batch / in-place": 0.88,
    "steady / shadowing": 0.77,
    "batch / shadowing": 0.86,
}

#: The paper's sensitivity-example values (Section 4, design choice 2).
PAPER_SENSITIVITY_FRESHNESS: Dict[str, float] = {
    "batch / in-place": 0.63,
    "batch / shadowing": 0.50,
}


def table2_scenario_rate() -> float:
    """Page change rate of the Table 2 scenario (4-month mean interval)."""
    return 1.0 / (4.0 * DAYS_PER_MONTH)


def sensitivity_scenario_rate() -> float:
    """Page change rate of the sensitivity example (1-month mean interval)."""
    return 1.0 / DAYS_PER_MONTH


def paper_table2_policies() -> Dict[str, CrawlPolicy]:
    """The four Table 2 policy combinations with the paper's parameters."""
    cycle = DAYS_PER_MONTH
    batch_duration = 7.0
    return {
        "steady / in-place": CrawlPolicy(
            CrawlMode.STEADY, UpdateMode.IN_PLACE, cycle_days=cycle
        ),
        "batch / in-place": CrawlPolicy(
            CrawlMode.BATCH, UpdateMode.IN_PLACE, cycle_days=cycle,
            batch_duration_days=batch_duration,
        ),
        "steady / shadowing": CrawlPolicy(
            CrawlMode.STEADY, UpdateMode.SHADOW, cycle_days=cycle
        ),
        "batch / shadowing": CrawlPolicy(
            CrawlMode.BATCH, UpdateMode.SHADOW, cycle_days=cycle,
            batch_duration_days=batch_duration,
        ),
    }


def sensitivity_example_policies() -> Dict[str, CrawlPolicy]:
    """The two policies of the Section 4 sensitivity example.

    Pages change every month; the batch crawler operates for the first two
    weeks of each monthly cycle.
    """
    cycle = DAYS_PER_MONTH
    batch_duration = 14.0
    return {
        "batch / in-place": CrawlPolicy(
            CrawlMode.BATCH, UpdateMode.IN_PLACE, cycle_days=cycle,
            batch_duration_days=batch_duration,
        ),
        "batch / shadowing": CrawlPolicy(
            CrawlMode.BATCH, UpdateMode.SHADOW, cycle_days=cycle,
            batch_duration_days=batch_duration,
        ),
    }


def figure7_policies() -> Dict[str, CrawlPolicy]:
    """Policies for the Figure 7 trajectories (batch vs. steady, in place).

    The paper notes it uses "a high page change rate to obtain curves that
    more clearly show the trends"; the benchmark uses a rate of one change
    per week with a monthly cycle and a one-week batch window.
    """
    return {
        "batch-mode": CrawlPolicy(
            CrawlMode.BATCH, UpdateMode.IN_PLACE, cycle_days=DAYS_PER_MONTH,
            batch_duration_days=7.0,
        ),
        "steady": CrawlPolicy(
            CrawlMode.STEADY, UpdateMode.IN_PLACE, cycle_days=DAYS_PER_MONTH
        ),
    }


def figure8_policies() -> Dict[str, CrawlPolicy]:
    """Policies for the Figure 8 trajectories (shadowing variants)."""
    return {
        "steady with shadowing": CrawlPolicy(
            CrawlMode.STEADY, UpdateMode.SHADOW, cycle_days=DAYS_PER_MONTH
        ),
        "batch-mode with shadowing": CrawlPolicy(
            CrawlMode.BATCH, UpdateMode.SHADOW, cycle_days=DAYS_PER_MONTH,
            batch_duration_days=7.0,
        ),
    }


def figure7_change_rate() -> float:
    """The illustrative (high) change rate used for Figures 7 and 8."""
    return 1.0 / 7.0
