"""A virtual clock measured in days.

All simulated components (fetcher, crawler modules, monitors) share a
:class:`VirtualClock` so that four months of crawling play out in a fraction
of a second of real time. The clock only moves forward.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonically increasing virtual time in days.

    Args:
        start: Initial time (defaults to day 0).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("start time must be non-negative")
        self._now = start

    @property
    def now(self) -> float:
        """Current virtual time in days."""
        return self._now

    def advance(self, delta_days: float) -> float:
        """Move the clock forward by ``delta_days`` and return the new time."""
        if delta_days < 0:
            raise ValueError("cannot advance the clock by a negative amount")
        self._now += delta_days
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to ``t`` (no-op when ``t`` is in the past)."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.4f})"
