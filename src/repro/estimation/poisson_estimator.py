"""The EP estimator: Poisson change-rate estimation from visit histories.

Section 5.3: "Estimator EP is based on the Poisson process model verified in
Section 3.4 ... the UpdateModule has to record how many times the crawler
detected changes to a page for, say, last 6 months. Then EP uses this number
to get a confidence interval for the change frequency of that page."

A crawler that visits a page every ``tau`` days can detect *at most one*
change per visit (Figure 1(a)), so the naive estimate

    rate_naive = detected_changes / observation_time

systematically underestimates the rate of pages that change faster than the
visit interval. The companion work [CGM99a] derives the bias-corrected
maximum-likelihood estimator for regular visit intervals,

    rate_mle = -log( (n - X + 0.5) / (n + 0.5) ) / tau

where ``n`` is the number of visits and ``X`` the number of visits at which
a change was detected (the +0.5 terms keep the estimator finite when
``X == n``). Both estimators are provided, together with a Wald-style
confidence interval on the detection probability mapped through the same
transformation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.statistics import normal_quantile
from repro.estimation.change_history import ChangeHistory


@dataclass(frozen=True)
class PoissonRateEstimate:
    """A point estimate of a page's change rate with a confidence interval.

    Attributes:
        rate: Estimated changes per day.
        lower: Lower bound of the confidence interval (>= 0).
        upper: Upper bound of the confidence interval (may be ``inf`` when
            every visit detected a change and the naive method is used).
        n_visits: Number of re-visits the estimate is based on.
        n_changes: Number of detected changes.
        method: Either ``"naive"`` or ``"mle"``.
    """

    rate: float
    lower: float
    upper: float
    n_visits: int
    n_changes: int
    method: str

    @property
    def mean_change_interval(self) -> float:
        """Estimated mean interval between changes, in days."""
        if self.rate == 0:
            return float("inf")
        return 1.0 / self.rate


def naive_rate_estimate(n_changes: int, observation_time: float) -> float:
    """Detected changes divided by observation time.

    Args:
        n_changes: Number of visits at which a change was detected.
        observation_time: Total observed time in days.

    Returns:
        The naive rate estimate (changes per day).
    """
    if observation_time <= 0:
        raise ValueError("observation_time must be positive")
    if n_changes < 0:
        raise ValueError("n_changes cannot be negative")
    return n_changes / observation_time


def corrected_rate_estimate(n_visits: int, n_changes: int, visit_interval: float) -> float:
    """Bias-corrected MLE of the change rate under regular visits.

    Args:
        n_visits: Number of re-visits.
        n_changes: Number of re-visits at which a change was detected.
        visit_interval: Days between consecutive visits.

    Returns:
        The corrected rate estimate (changes per day).
    """
    if n_visits < 1:
        raise ValueError("at least one visit is required")
    if not 0 <= n_changes <= n_visits:
        raise ValueError("n_changes must be between 0 and n_visits")
    if visit_interval <= 0:
        raise ValueError("visit_interval must be positive")
    ratio = (n_visits - n_changes + 0.5) / (n_visits + 0.5)
    return -math.log(ratio) / visit_interval


class PoissonRateEstimator:
    """EP: estimates a page's Poisson change rate from its change history.

    Args:
        use_bias_correction: Use the corrected MLE (recommended); when False
            the naive estimator is used, which is what Section 3.1 describes
            and what the monitoring-experiment analysis mirrors.
        confidence: Two-sided confidence level of the interval.
    """

    def __init__(self, use_bias_correction: bool = True, confidence: float = 0.95) -> None:
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be within (0, 1)")
        self.use_bias_correction = use_bias_correction
        self.confidence = confidence

    def estimate(self, history: ChangeHistory) -> Optional[PoissonRateEstimate]:
        """Estimate the change rate from ``history``.

        Returns:
            ``None`` when the history has no re-visits yet (nothing to
            estimate from), otherwise a :class:`PoissonRateEstimate`.
        """
        n_visits = history.n_visits
        if n_visits == 0 or history.observation_time <= 0:
            return None
        n_changes = history.n_changes
        mean_interval = history.mean_interval()
        if self.use_bias_correction:
            return self._mle_estimate(n_visits, n_changes, mean_interval)
        return self._naive_estimate(n_visits, n_changes, history.observation_time)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _mle_estimate(
        self, n_visits: int, n_changes: int, visit_interval: float
    ) -> PoissonRateEstimate:
        rate = corrected_rate_estimate(n_visits, n_changes, visit_interval)
        lower_p, upper_p = self._detection_probability_interval(n_visits, n_changes)
        lower = self._probability_to_rate(lower_p, visit_interval)
        upper = self._probability_to_rate(upper_p, visit_interval)
        return PoissonRateEstimate(
            rate=rate,
            lower=lower,
            upper=upper,
            n_visits=n_visits,
            n_changes=n_changes,
            method="mle",
        )

    def _naive_estimate(
        self, n_visits: int, n_changes: int, observation_time: float
    ) -> PoissonRateEstimate:
        rate = naive_rate_estimate(n_changes, observation_time)
        z = normal_quantile(0.5 + self.confidence / 2.0)
        half_width = z * math.sqrt(n_changes + 0.25) / observation_time
        centre = (n_changes + 0.25) / observation_time
        return PoissonRateEstimate(
            rate=rate,
            lower=max(0.0, centre - half_width),
            upper=centre + half_width,
            n_visits=n_visits,
            n_changes=n_changes,
            method="naive",
        )

    def _detection_probability_interval(self, n_visits: int, n_changes: int) -> tuple:
        """Wilson score interval for the per-visit change-detection probability."""
        z = normal_quantile(0.5 + self.confidence / 2.0)
        p_hat = n_changes / n_visits
        denominator = 1.0 + z * z / n_visits
        centre = (p_hat + z * z / (2 * n_visits)) / denominator
        margin = (
            z
            * math.sqrt(p_hat * (1 - p_hat) / n_visits + z * z / (4 * n_visits * n_visits))
            / denominator
        )
        return max(0.0, centre - margin), min(1.0, centre + margin)

    @staticmethod
    def _probability_to_rate(probability: float, visit_interval: float) -> float:
        """Map a per-visit detection probability to a Poisson rate.

        Under the Poisson model the probability of detecting a change over an
        interval ``tau`` is ``1 - exp(-rate * tau)``, so
        ``rate = -log(1 - p) / tau``. A probability of 1 maps to infinity.
        """
        if probability >= 1.0:
            return float("inf")
        if probability <= 0.0:
            return 0.0
        return -math.log(1.0 - probability) / visit_interval
