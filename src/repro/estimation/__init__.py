"""Change-frequency estimation (the EP and EB estimators of Section 5.3).

The UpdateModule decides how often to revisit a page from the page's change
history — the sequence of (visit time, changed?) observations collected by
comparing checksums across visits. Two estimators are proposed in the paper
(both from the companion work [CGM99a], "Measuring frequency of change"):

* **EP** (:class:`PoissonRateEstimator`) — assumes changes follow a Poisson
  process and estimates the rate from the observed change history, with a
  confidence interval. Both the naive estimator (detected changes divided by
  observation time) and a bias-corrected maximum-likelihood estimator are
  provided; the naive estimator systematically underestimates fast-changing
  pages because at most one change can be detected per visit (Figure 1(a)).
* **EB** (:class:`BayesianClassEstimator`) — maintains a posterior over a
  small set of frequency *classes* (e.g. "changes every week" vs. "changes
  every month") and updates it after every visit.
"""

from repro.estimation.change_history import ChangeHistory, Observation
from repro.estimation.poisson_estimator import (
    PoissonRateEstimate,
    PoissonRateEstimator,
    corrected_rate_estimate,
    naive_rate_estimate,
)
from repro.estimation.bayesian_estimator import BayesianClassEstimator, FrequencyClass

__all__ = [
    "ChangeHistory",
    "Observation",
    "PoissonRateEstimator",
    "PoissonRateEstimate",
    "naive_rate_estimate",
    "corrected_rate_estimate",
    "BayesianClassEstimator",
    "FrequencyClass",
]
