"""Per-page change histories.

Every time the UpdateModule re-fetches a page it learns one bit: did the
checksum differ from the previous fetch? A :class:`ChangeHistory` stores
those observations (optionally windowed to the most recent months, as the
paper suggests keeping "say, last 6 months") and exposes the summary
statistics the estimators need: number of visits, number of detected
changes, total observation time, and the individual inter-visit intervals.

The history sits on the crawler's per-fetch hot path, so it stores plain
primitives (time, changed, interval) in deques and maintains its summary
statistics incrementally; :class:`Observation` objects are only
materialised for callers that ask for them. Window trimming pops aged
observations from the front, and the running observation-time sum is
rebuilt as a fresh left-fold whenever observations are dropped, so its
value is bit-identical to summing the retained intervals directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple


@dataclass(frozen=True)
class Observation:
    """One re-visit observation.

    Attributes:
        time: Virtual time of the visit.
        changed: Whether the checksum differed from the previous visit.
        interval: Days since the previous visit.
    """

    time: float
    changed: bool
    interval: float


class ChangeHistory:
    """Change observations for a single page.

    Args:
        first_visit: Virtual time of the first fetch (which establishes the
            baseline checksum; it is not itself a change observation).
        window_days: When given, only observations within the trailing
            window are retained — the paper suggests keeping roughly six
            months of history.
    """

    __slots__ = (
        "first_visit",
        "window_days",
        "_last_visit",
        "_times",
        "_changed",
        "_intervals",
        "_n_changes",
        "_interval_sum",
    )

    def __init__(self, first_visit: float, window_days: Optional[float] = None) -> None:
        if first_visit < 0:
            raise ValueError("first_visit must be non-negative")
        if window_days is not None and window_days <= 0:
            raise ValueError("window_days must be positive when given")
        self.first_visit = first_visit
        self.window_days = window_days
        self._last_visit = first_visit
        self._times: Deque[float] = deque()
        self._changed: Deque[bool] = deque()
        self._intervals: Deque[float] = deque()
        self._n_changes = 0
        self._interval_sum = 0.0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_visit(self, time: float, changed: bool) -> None:
        """Record a re-visit at ``time`` with its change outcome.

        Args:
            time: Virtual time of the visit; must not precede the previous
                visit.
            changed: True when the checksum differed from the previous fetch.
        """
        if time < self._last_visit:
            raise ValueError("visits must be recorded in chronological order")
        interval = time - self._last_visit
        self._times.append(time)
        self._changed.append(changed)
        self._intervals.append(interval)
        if changed:
            self._n_changes += 1
        self._interval_sum += interval
        self._last_visit = time
        self._trim()

    def _trim(self) -> None:
        if self.window_days is None or not self._times:
            return
        cutoff = self._last_visit - self.window_days
        dropped = False
        # Observations are chronological, so aging out is a prefix removal.
        while self._times and self._times[0] < cutoff:
            self._times.popleft()
            if self._changed.popleft():
                self._n_changes -= 1
            self._intervals.popleft()
            dropped = True
        if dropped:
            # Rebuild as a left-fold over the survivors so the running sum
            # stays bit-identical to sum(retained intervals).
            self._interval_sum = sum(self._intervals)

    # ------------------------------------------------------------------ #
    # Summary statistics
    # ------------------------------------------------------------------ #
    @property
    def last_visit(self) -> float:
        """Virtual time of the most recent visit."""
        return self._last_visit

    @property
    def observations(self) -> Tuple[Observation, ...]:
        """All retained observations, oldest first (materialised on demand)."""
        return tuple(
            Observation(time=time, changed=changed, interval=interval)
            for time, changed, interval in zip(
                self._times, self._changed, self._intervals
            )
        )

    def last_outcome(self) -> Tuple[float, bool]:
        """The newest observation as a cheap ``(interval, changed)`` pair.

        The EB estimator folds exactly one observation per visit; this
        accessor hands it over without materialising an
        :class:`Observation`.

        Raises:
            IndexError: When no re-visit has been recorded yet.
        """
        return self._intervals[-1], self._changed[-1]

    @property
    def n_visits(self) -> int:
        """Number of recorded re-visits (excluding the very first fetch)."""
        return len(self._times)

    @property
    def n_changes(self) -> int:
        """Number of re-visits at which a change was detected."""
        return self._n_changes

    @property
    def observation_time(self) -> float:
        """Total time covered by the retained observations (days)."""
        return self._interval_sum

    def intervals(self) -> List[float]:
        """Inter-visit intervals of the retained observations."""
        return list(self._intervals)

    def mean_interval(self) -> float:
        """Average inter-visit interval (0 when there are no observations)."""
        if not self._times:
            return 0.0
        return self._interval_sum / len(self._times)

    def detected_change_intervals(self) -> List[float]:
        """Observed intervals between successive *detected* changes.

        This is the Section 3.1 quantity: if a page was observed for 50 days
        and changed 5 times, the average change interval estimate is 10 days.
        The individual intervals feed the Figure 6 exponential fit.
        """
        intervals: List[float] = []
        elapsed_since_change = 0.0
        for changed, interval in zip(self._changed, self._intervals):
            elapsed_since_change += interval
            if changed:
                intervals.append(elapsed_since_change)
                elapsed_since_change = 0.0
        return intervals

    def average_change_interval(self) -> Optional[float]:
        """Observation time divided by detected changes, or None if no change.

        This mirrors the paper's estimate of a page's average change
        interval; its granularity is bounded below by the visit interval.
        """
        changes = self.n_changes
        if changes == 0:
            return None
        return self.observation_time / changes

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every slot, running sums included.

        ``interval_sum`` is serialized verbatim rather than recomputed on
        restore: it is a left-fold whose value depends on the exact sequence
        of appends and trims, so recomputing could differ in the last ulp.
        """
        return {
            "first_visit": self.first_visit,
            "window_days": self.window_days,
            "last_visit": self._last_visit,
            "times": list(self._times),
            "changed": list(self._changed),
            "intervals": list(self._intervals),
            "n_changes": self._n_changes,
            "interval_sum": self._interval_sum,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ChangeHistory":
        """Rebuild a history exactly as captured by :meth:`state_dict`."""
        history = cls(
            first_visit=float(state["first_visit"]),
            window_days=state["window_days"],
        )
        history._last_visit = float(state["last_visit"])
        history._times = deque(float(time) for time in state["times"])
        history._changed = deque(bool(changed) for changed in state["changed"])
        history._intervals = deque(float(interval) for interval in state["intervals"])
        history._n_changes = int(state["n_changes"])
        history._interval_sum = float(state["interval_sum"])
        return history
