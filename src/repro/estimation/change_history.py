"""Per-page change histories.

Every time the UpdateModule re-fetches a page it learns one bit: did the
checksum differ from the previous fetch? A :class:`ChangeHistory` stores
those observations (optionally windowed to the most recent months, as the
paper suggests keeping "say, last 6 months") and exposes the summary
statistics the estimators need: number of visits, number of detected
changes, total observation time, and the individual inter-visit intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Observation:
    """One re-visit observation.

    Attributes:
        time: Virtual time of the visit.
        changed: Whether the checksum differed from the previous visit.
        interval: Days since the previous visit.
    """

    time: float
    changed: bool
    interval: float


class ChangeHistory:
    """Change observations for a single page.

    Args:
        first_visit: Virtual time of the first fetch (which establishes the
            baseline checksum; it is not itself a change observation).
        window_days: When given, only observations within the trailing
            window are retained — the paper suggests keeping roughly six
            months of history.
    """

    def __init__(self, first_visit: float, window_days: Optional[float] = None) -> None:
        if first_visit < 0:
            raise ValueError("first_visit must be non-negative")
        if window_days is not None and window_days <= 0:
            raise ValueError("window_days must be positive when given")
        self.first_visit = first_visit
        self.window_days = window_days
        self._last_visit = first_visit
        self._observations: List[Observation] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_visit(self, time: float, changed: bool) -> Observation:
        """Record a re-visit at ``time`` with its change outcome.

        Args:
            time: Virtual time of the visit; must not precede the previous
                visit.
            changed: True when the checksum differed from the previous fetch.

        Returns:
            The stored :class:`Observation`.
        """
        if time < self._last_visit:
            raise ValueError("visits must be recorded in chronological order")
        observation = Observation(
            time=time,
            changed=changed,
            interval=time - self._last_visit,
        )
        self._observations.append(observation)
        self._last_visit = time
        self._trim()
        return observation

    def _trim(self) -> None:
        if self.window_days is None or not self._observations:
            return
        cutoff = self._last_visit - self.window_days
        self._observations = [o for o in self._observations if o.time >= cutoff]

    # ------------------------------------------------------------------ #
    # Summary statistics
    # ------------------------------------------------------------------ #
    @property
    def last_visit(self) -> float:
        """Virtual time of the most recent visit."""
        return self._last_visit

    @property
    def observations(self) -> Sequence[Observation]:
        """All retained observations, oldest first."""
        return tuple(self._observations)

    @property
    def n_visits(self) -> int:
        """Number of recorded re-visits (excluding the very first fetch)."""
        return len(self._observations)

    @property
    def n_changes(self) -> int:
        """Number of re-visits at which a change was detected."""
        return sum(1 for o in self._observations if o.changed)

    @property
    def observation_time(self) -> float:
        """Total time covered by the retained observations (days)."""
        return sum(o.interval for o in self._observations)

    def intervals(self) -> List[float]:
        """Inter-visit intervals of the retained observations."""
        return [o.interval for o in self._observations]

    def mean_interval(self) -> float:
        """Average inter-visit interval (0 when there are no observations)."""
        if not self._observations:
            return 0.0
        return self.observation_time / len(self._observations)

    def detected_change_intervals(self) -> List[float]:
        """Observed intervals between successive *detected* changes.

        This is the Section 3.1 quantity: if a page was observed for 50 days
        and changed 5 times, the average change interval estimate is 10 days.
        The individual intervals feed the Figure 6 exponential fit.
        """
        intervals: List[float] = []
        elapsed_since_change = 0.0
        for observation in self._observations:
            elapsed_since_change += observation.interval
            if observation.changed:
                intervals.append(elapsed_since_change)
                elapsed_since_change = 0.0
        return intervals

    def average_change_interval(self) -> Optional[float]:
        """Observation time divided by detected changes, or None if no change.

        This mirrors the paper's estimate of a page's average change
        interval; its granularity is bounded below by the visit interval.
        """
        changes = self.n_changes
        if changes == 0:
            return None
        return self.observation_time / changes
