"""The EB estimator: Bayesian classification into frequency classes.

Section 5.3: "the goal of estimator EB is ... to categorize pages into
different frequency classes, say, pages that change every week (class CW)
and pages that change every month (class CM). To implement EB, the
UpdateModule stores the probability that page p_i belongs to each frequency
class ... and updates these probabilities based on detected changes. For
instance, if the UpdateModule learns that page p1 did not change for one
month, the UpdateModule increases P{p1 in CM} and decreases P{p1 in CW}."

We implement exactly that: each :class:`FrequencyClass` carries a Poisson
rate; after each visit the posterior over classes is updated with the
likelihood of the observed outcome (changed / unchanged over the inter-visit
interval) under each class's rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.estimation.change_history import ChangeHistory


@dataclass(frozen=True)
class FrequencyClass:
    """A change-frequency class.

    Attributes:
        name: Human-readable name, e.g. ``"weekly"``.
        mean_interval_days: Mean change interval of pages in this class.
    """

    name: str
    mean_interval_days: float

    def __post_init__(self) -> None:
        if self.mean_interval_days <= 0:
            raise ValueError("mean_interval_days must be positive")

    @property
    def rate(self) -> float:
        """Poisson rate (changes per day) of this class."""
        return 1.0 / self.mean_interval_days


#: Default classes roughly matching the paper's discussion: daily, weekly,
#: monthly and quarterly changers plus an (almost) static class.
DEFAULT_CLASSES: Sequence[FrequencyClass] = (
    FrequencyClass("daily", 1.0),
    FrequencyClass("weekly", 7.0),
    FrequencyClass("monthly", 30.0),
    FrequencyClass("quarterly", 120.0),
    FrequencyClass("static", 720.0),
)


class BayesianClassEstimator:
    """EB: posterior over frequency classes for a single page.

    Args:
        classes: The candidate frequency classes.
        prior: Optional prior probabilities (uniform when omitted); must
            match ``classes`` in length and sum to 1.
    """

    def __init__(
        self,
        classes: Sequence[FrequencyClass] = DEFAULT_CLASSES,
        prior: Optional[Sequence[float]] = None,
    ) -> None:
        if not classes:
            raise ValueError("at least one frequency class is required")
        self._classes = list(classes)
        if prior is None:
            prior = [1.0 / len(classes)] * len(classes)
        if len(prior) != len(classes):
            raise ValueError("prior must have one weight per class")
        if any(weight < 0 for weight in prior):
            raise ValueError("prior weights must be non-negative")
        total = sum(prior)
        if abs(total - 1.0) > 1e-9:
            raise ValueError("prior weights must sum to 1")
        self._posterior: List[float] = list(prior)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def observe(self, interval_days: float, changed: bool) -> None:
        """Update the posterior with one visit outcome.

        Args:
            interval_days: Days since the previous visit.
            changed: Whether a change was detected at this visit.
        """
        if interval_days < 0:
            raise ValueError("interval_days must be non-negative")
        likelihoods = []
        for frequency_class in self._classes:
            p_change = 1.0 - math.exp(-frequency_class.rate * interval_days)
            likelihoods.append(p_change if changed else 1.0 - p_change)
        weighted = [p * l for p, l in zip(self._posterior, likelihoods)]
        total = sum(weighted)
        if total <= 0.0:
            # Every class assigns probability ~0 to the observation (e.g. a
            # change over a zero-length interval); keep the posterior as is.
            return
        self._posterior = [w / total for w in weighted]

    def observe_history(self, history: ChangeHistory) -> None:
        """Replay every observation of a :class:`ChangeHistory`."""
        for observation in history.observations:
            self.observe(observation.interval, observation.changed)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def classes(self) -> Sequence[FrequencyClass]:
        """The candidate classes, in order."""
        return tuple(self._classes)

    def posterior(self) -> Dict[str, float]:
        """Mapping from class name to posterior probability."""
        return {
            frequency_class.name: probability
            for frequency_class, probability in zip(self._classes, self._posterior)
        }

    def probability_of(self, class_name: str) -> float:
        """Posterior probability of the class named ``class_name``."""
        for frequency_class, probability in zip(self._classes, self._posterior):
            if frequency_class.name == class_name:
                return probability
        raise KeyError(f"unknown frequency class {class_name!r}")

    def most_likely_class(self) -> FrequencyClass:
        """The class with the highest posterior probability."""
        best_index = max(
            range(len(self._classes)), key=lambda i: (self._posterior[i], -i)
        )
        return self._classes[best_index]

    def expected_rate(self) -> float:
        """Posterior-mean change rate (changes per day)."""
        return sum(
            probability * frequency_class.rate
            for frequency_class, probability in zip(self._classes, self._posterior)
        )

    def expected_interval(self) -> float:
        """Inverse of the posterior-mean rate, in days."""
        rate = self.expected_rate()
        if rate == 0:
            return float("inf")
        return 1.0 / rate

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def posterior_weights(self) -> List[float]:
        """The posterior as a plain list, aligned with :attr:`classes`."""
        return list(self._posterior)

    def set_posterior_weights(self, weights: Sequence[float]) -> None:
        """Install checkpointed posterior weights verbatim.

        Unlike the constructor's ``prior`` argument this does not insist the
        weights sum to exactly 1: a restored posterior is the product of
        many normalisations and may be a few ulp off, and renormalising here
        would break bit-exact resume.
        """
        if len(weights) != len(self._classes):
            raise ValueError("weights must have one entry per class")
        self._posterior = [float(weight) for weight in weights]
