"""Pluggable change-rate estimation strategies for the UpdateModule.

The UpdateModule needs one number per page — the estimated change rate used
for revisit scheduling — but the paper's two estimators arrive at it very
differently: EP re-estimates from the page's full change history on every
visit, while EB keeps per-page Bayesian state and folds in one observation
at a time. :class:`ChangeRateEstimator` is the strategy interface that hides
that difference, and the two implementations register themselves in
:data:`repro.api.registry.ESTIMATORS` under the paper's names ``"ep"`` and
``"eb"``, which is how crawler configs and experiment specs resolve the
estimator choice.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

from repro.api.registry import register_estimator
from repro.estimation.bayesian_estimator import BayesianClassEstimator
from repro.estimation.change_history import ChangeHistory
from repro.estimation.poisson_estimator import PoissonRateEstimator


class ChangeRateEstimator(ABC):
    """Per-page change-rate estimation strategy.

    The UpdateModule calls :meth:`reset_page` when a page enters (or
    re-enters) the collection, :meth:`update` after every subsequent visit
    whose observation was just appended to ``history``, and :meth:`forget`
    when the page leaves the collection.
    """

    @abstractmethod
    def reset_page(self, url: str) -> None:
        """Start (or restart) estimation state for ``url``."""

    @abstractmethod
    def update(self, url: str, history: ChangeHistory) -> float:
        """Consume the newest observation in ``history``; return the rate.

        Args:
            url: The page's URL.
            history: The page's change history; its last observation is the
                one just recorded.

        Returns:
            The estimated change rate in changes per day.
        """

    def forget(self, url: str) -> None:
        """Drop any per-page state for ``url``."""

    def update_batch(
        self, urls: Sequence[str], histories: Sequence[ChangeHistory]
    ) -> List[float]:
        """Batched :meth:`update` over many pages at once.

        The default implementation loops :meth:`update`, which is already
        exact; strategies whose estimate is a pure function of the history's
        summary statistics (EP) override this to work from the O(1) running
        sums directly. Either way the returned rates are bit-identical to
        per-page :meth:`update` calls — the parity suite depends on it.

        Args:
            urls: Page URLs, aligned with ``histories``.
            histories: Each page's history, its newest observation just
                recorded.

        Returns:
            Estimated change rates (changes/day), one per page. Accepts
            plain lists or ndarrays of URLs/histories; returns a list so
            hot-path consumers avoid per-element NumPy scalar boxing.
        """
        return [self.update(url, history) for url, history in zip(urls, histories)]

    def state_dict(self) -> dict:
        """JSON-serializable per-page estimation state (for checkpoints).

        Stateless strategies (EP) return an empty dict; stateful ones (EB)
        override this together with :meth:`load_state`.
        """
        return {}

    def load_state(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (no-op by default)."""


@register_estimator("ep")
class PoissonRateStrategy(ChangeRateEstimator):
    """EP: the bias-corrected Poisson rate estimator of Section 5.3.

    Stateless per page — every update re-estimates from the full history —
    so :meth:`reset_page` and :meth:`forget` are no-ops.

    Args:
        use_bias_correction: Apply the [CGM99a] bias correction (the naive
            detected-changes-over-time estimator saturates for pages that
            change faster than the visit interval).
    """

    def __init__(self, use_bias_correction: bool = True) -> None:
        self._estimator = PoissonRateEstimator(use_bias_correction=use_bias_correction)

    @property
    def estimator(self) -> PoissonRateEstimator:
        """The underlying EP estimator (confidence intervals and all)."""
        return self._estimator

    def reset_page(self, url: str) -> None:
        pass

    def update(self, url: str, history: ChangeHistory) -> float:
        estimate = self._estimator.estimate(history)
        if estimate is None:
            return 0.0
        if estimate.rate == float("inf"):
            # Every visit saw a change: the best we can say is "at least once
            # per visit interval"; use the reciprocal of the mean interval.
            mean_interval = history.mean_interval()
            return 1.0 / mean_interval if mean_interval > 0 else 1.0
        return estimate.rate

    def update_batch(
        self, urls: Sequence[str], histories: Sequence[ChangeHistory]
    ) -> List[float]:
        """EP over a batch: the closed-form rate from each history's sums.

        EP's point estimate is a pure function of ``(n_visits, n_changes,
        observation_time)``, all O(1) running sums on the history, so the
        batch skips the scalar path's confidence-interval computation —
        the UpdateModule only consumes the point rate. The arithmetic uses
        ``math.log`` per element rather than a SIMD ``np.log`` on purpose:
        vectorized transcendentals may differ from libm in the last ulp,
        and the batched engine promises bit-identical schedules.
        """
        rates: List[float] = []
        append = rates.append
        corrected = self._estimator.use_bias_correction
        log = math.log
        # Reads ChangeHistory's running sums directly: the property wrappers
        # cost more than the arithmetic at this call frequency.
        for history in histories:
            n_visits = len(history._times)
            total_time = history._interval_sum
            if n_visits == 0 or total_time <= 0:
                append(0.0)
            elif corrected:
                ratio = (n_visits - history._n_changes + 0.5) / (n_visits + 0.5)
                append(-log(ratio) / (total_time / n_visits))
            else:
                append(history._n_changes / total_time)
        return rates


@register_estimator("eb")
class BayesianClassStrategy(ChangeRateEstimator):
    """EB: per-page Bayesian posterior over frequency classes."""

    def __init__(self) -> None:
        self._per_page: Dict[str, BayesianClassEstimator] = {}

    def reset_page(self, url: str) -> None:
        self._per_page[url] = BayesianClassEstimator()

    def update(self, url: str, history: ChangeHistory) -> float:
        estimator = self._per_page.setdefault(url, BayesianClassEstimator())
        interval, changed = history.last_outcome()
        estimator.observe(interval, changed)
        return estimator.expected_rate()

    def forget(self, url: str) -> None:
        self._per_page.pop(url, None)

    def estimator_for(self, url: str) -> BayesianClassEstimator:
        """The page's underlying Bayesian estimator (posterior inspection)."""
        return self._per_page.setdefault(url, BayesianClassEstimator())

    def state_dict(self) -> dict:
        """Per-page posterior weights, keyed by URL."""
        return {
            "posteriors": {
                url: estimator.posterior_weights()
                for url, estimator in self._per_page.items()
            }
        }

    def load_state(self, state: dict) -> None:
        """Rebuild every page's posterior exactly as checkpointed."""
        self._per_page = {}
        for url, weights in state.get("posteriors", {}).items():
            estimator = BayesianClassEstimator()
            estimator.set_posterior_weights(weights)
            self._per_page[url] = estimator


def build_rate_estimator(name: str) -> ChangeRateEstimator:
    """Instantiate the registered estimator strategy called ``name``.

    Raises:
        repro.api.registry.UnknownEntryError: If ``name`` is not registered;
            the message lists the registered estimator names.
    """
    from repro.api.registry import ESTIMATORS

    return ESTIMATORS.create(name)
