"""Pluggable change-rate estimation strategies for the UpdateModule.

The UpdateModule needs one number per page — the estimated change rate used
for revisit scheduling — but the paper's two estimators arrive at it very
differently: EP re-estimates from the page's full change history on every
visit, while EB keeps per-page Bayesian state and folds in one observation
at a time. :class:`ChangeRateEstimator` is the strategy interface that hides
that difference, and the two implementations register themselves in
:data:`repro.api.registry.ESTIMATORS` under the paper's names ``"ep"`` and
``"eb"``, which is how crawler configs and experiment specs resolve the
estimator choice.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

from repro.api.registry import register_estimator
from repro.estimation.bayesian_estimator import BayesianClassEstimator
from repro.estimation.change_history import ChangeHistory
from repro.estimation.poisson_estimator import PoissonRateEstimator


class ChangeRateEstimator(ABC):
    """Per-page change-rate estimation strategy.

    The UpdateModule calls :meth:`reset_page` when a page enters (or
    re-enters) the collection, :meth:`update` after every subsequent visit
    whose observation was just appended to ``history``, and :meth:`forget`
    when the page leaves the collection.
    """

    @abstractmethod
    def reset_page(self, url: str) -> None:
        """Start (or restart) estimation state for ``url``."""

    @abstractmethod
    def update(self, url: str, history: ChangeHistory) -> float:
        """Consume the newest observation in ``history``; return the rate.

        Args:
            url: The page's URL.
            history: The page's change history; its last observation is the
                one just recorded.

        Returns:
            The estimated change rate in changes per day.
        """

    def forget(self, url: str) -> None:
        """Drop any per-page state for ``url``."""


@register_estimator("ep")
class PoissonRateStrategy(ChangeRateEstimator):
    """EP: the bias-corrected Poisson rate estimator of Section 5.3.

    Stateless per page — every update re-estimates from the full history —
    so :meth:`reset_page` and :meth:`forget` are no-ops.

    Args:
        use_bias_correction: Apply the [CGM99a] bias correction (the naive
            detected-changes-over-time estimator saturates for pages that
            change faster than the visit interval).
    """

    def __init__(self, use_bias_correction: bool = True) -> None:
        self._estimator = PoissonRateEstimator(use_bias_correction=use_bias_correction)

    @property
    def estimator(self) -> PoissonRateEstimator:
        """The underlying EP estimator (confidence intervals and all)."""
        return self._estimator

    def reset_page(self, url: str) -> None:
        pass

    def update(self, url: str, history: ChangeHistory) -> float:
        estimate = self._estimator.estimate(history)
        if estimate is None:
            return 0.0
        if estimate.rate == float("inf"):
            # Every visit saw a change: the best we can say is "at least once
            # per visit interval"; use the reciprocal of the mean interval.
            mean_interval = history.mean_interval()
            return 1.0 / mean_interval if mean_interval > 0 else 1.0
        return estimate.rate


@register_estimator("eb")
class BayesianClassStrategy(ChangeRateEstimator):
    """EB: per-page Bayesian posterior over frequency classes."""

    def __init__(self) -> None:
        self._per_page: Dict[str, BayesianClassEstimator] = {}

    def reset_page(self, url: str) -> None:
        self._per_page[url] = BayesianClassEstimator()

    def update(self, url: str, history: ChangeHistory) -> float:
        estimator = self._per_page.setdefault(url, BayesianClassEstimator())
        last = history.observations[-1]
        estimator.observe(last.interval, last.changed)
        return estimator.expected_rate()

    def forget(self, url: str) -> None:
        self._per_page.pop(url, None)

    def estimator_for(self, url: str) -> BayesianClassEstimator:
        """The page's underlying Bayesian estimator (posterior inspection)."""
        return self._per_page.setdefault(url, BayesianClassEstimator())


def build_rate_estimator(name: str) -> ChangeRateEstimator:
    """Instantiate the registered estimator strategy called ``name``.

    Raises:
        repro.api.registry.UnknownEntryError: If ``name`` is not registered;
            the message lists the registered estimator names.
    """
    from repro.api.registry import ESTIMATORS

    return ESTIMATORS.create(name)
