"""Setup shim.

Kept minimal so legacy (non-PEP 517) editable installs — ``pip install -e .
--no-use-pep517`` — work in offline environments where the ``wheel``
package is unavailable. Runtime dependencies are declared here: NumPy for
every vectorized path, SciPy for the sparse CSR ranking kernels (the
kernels fall back to a pure-NumPy COO matvec when SciPy is missing, so it
is a soft requirement at import time — but installs should bring it in).
"""

from setuptools import find_packages, setup

setup(
    name="repro-incremental-crawler",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "scipy",
    ],
)
