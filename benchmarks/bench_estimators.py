"""Section 5.3 — the EP and EB change-frequency estimators.

The UpdateModule's revisit scheduling is only as good as its change-rate
estimates. This benchmark measures, on pages with known ground-truth Poisson
rates:

* the bias of the naive estimator versus the bias-corrected EP estimator
  (Figure 1(a)'s "at most one change per visit" effect);
* EB's classification accuracy into frequency classes;
* the ablation the paper sketches at the end of Section 5.3: estimating the
  frequency from *site-level* statistics (pooling pages of a site) versus
  per-page statistics — tighter when pages of a site behave alike, wrong
  when they do not.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.estimation.bayesian_estimator import BayesianClassEstimator
from repro.estimation.change_history import ChangeHistory
from repro.estimation.poisson_estimator import (
    corrected_rate_estimate,
    naive_rate_estimate,
)


def _simulate_history(rate, visit_interval, n_visits, rng):
    history = ChangeHistory(first_visit=0.0)
    time = 0.0
    for _ in range(n_visits):
        time += visit_interval
        changed = rng.random() < 1.0 - np.exp(-rate * visit_interval)
        history.record_visit(time, changed)
    return history


def test_ep_estimator_bias(benchmark):
    """Naive vs bias-corrected EP estimates across change rates."""
    rng = np.random.default_rng(12)
    true_rates = [0.05, 0.2, 0.5, 1.0, 2.0]

    def run():
        rows = []
        for rate in true_rates:
            naive_values, corrected_values = [], []
            for _ in range(40):
                history = _simulate_history(rate, 1.0, 180, rng)
                naive_values.append(
                    naive_rate_estimate(history.n_changes, history.observation_time)
                )
                corrected_values.append(
                    corrected_rate_estimate(history.n_visits, history.n_changes, 1.0)
                )
            rows.append((rate, float(np.mean(naive_values)), float(np.mean(corrected_values))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = [
        (f"{rate:.2f}", f"{naive:.3f}", f"{corrected:.3f}")
        for rate, naive, corrected in rows
    ]
    print()
    print(format_table(
        ["true rate (changes/day)", "naive estimate", "bias-corrected (EP)"],
        table,
        title="EP estimator: daily visits can detect at most one change per day",
    ))
    for rate, naive, corrected in rows:
        assert abs(corrected - rate) <= abs(naive - rate) + 0.02
    fast = rows[-1]
    assert fast[1] < 0.7 * fast[0], "naive estimator saturates for fast pages"


def test_eb_estimator_classification(benchmark):
    """EB assigns pages to the correct frequency class."""
    rng = np.random.default_rng(13)
    cases = {"daily": 1.0, "weekly": 7.0, "monthly": 30.0}

    def run():
        accuracy = {}
        for expected_class, interval in cases.items():
            correct = 0
            trials = 30
            for _ in range(trials):
                estimator = BayesianClassEstimator()
                rate = 1.0 / interval
                for _ in range(120):
                    changed = rng.random() < 1.0 - np.exp(-rate * 1.0)
                    estimator.observe(1.0, changed)
                if estimator.most_likely_class().name == expected_class:
                    correct += 1
            accuracy[expected_class] = correct / trials
        return accuracy

    accuracy = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["true class", "EB classification accuracy"],
        [(name, f"{value:.2f}") for name, value in accuracy.items()],
        title="EB estimator: posterior class assignment after 120 daily visits",
    ))
    assert accuracy["daily"] > 0.8
    assert accuracy["monthly"] > 0.5


def test_site_level_vs_page_level_estimation(benchmark):
    """Section 5.3 ablation: pooling statistics at the site level.

    When pages of a site share a change rate, the pooled estimate has a much
    smaller error (larger sample); when rates differ wildly within the site,
    the pooled estimate misrepresents individual pages.
    """
    rng = np.random.default_rng(14)
    n_pages, n_visits = 30, 60

    def estimate_errors(page_rates):
        page_errors, pooled_changes, pooled_time = [], 0, 0.0
        for rate in page_rates:
            history = _simulate_history(rate, 1.0, n_visits, rng)
            page_estimate = corrected_rate_estimate(history.n_visits, history.n_changes, 1.0)
            page_errors.append(abs(page_estimate - rate))
            pooled_changes += history.n_changes
            pooled_time += history.observation_time
        pooled_rate = pooled_changes / pooled_time
        pooled_errors = [abs(pooled_rate - rate) for rate in page_rates]
        return float(np.mean(page_errors)), float(np.mean(pooled_errors))

    def run():
        homogeneous = estimate_errors([0.1] * n_pages)
        heterogeneous = estimate_errors([0.02] * (n_pages // 2) + [1.0] * (n_pages // 2))
        return homogeneous, heterogeneous

    homogeneous, heterogeneous = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["site composition", "per-page estimate error", "site-level estimate error"],
        [
            ("uniform site (all pages ~0.1/day)",
             f"{homogeneous[0]:.4f}", f"{homogeneous[1]:.4f}"),
            ("mixed site (half 0.02/day, half 1/day)",
             f"{heterogeneous[0]:.4f}", f"{heterogeneous[1]:.4f}"),
        ],
        title="Section 5.3: site-level statistics help only when pages behave alike",
    ))
    assert homogeneous[1] < homogeneous[0]
    assert heterogeneous[1] > heterogeneous[0]
