"""Ablation — design choices inside the incremental crawler.

DESIGN.md calls out three internal design choices of the Section 5
architecture whose effect should be measured, not assumed:

* the revisit policy the UpdateModule plugs in (fixed frequency vs.
  proportional vs. freshness-optimal, Section 4.3);
* the change-frequency estimator (EP vs. EB, Section 5.3);
* whether revisit scheduling also weights pages by importance
  (the Section 5.3 remark about "highly important" pages).

All variants run against the same evolving synthetic web with the same
crawl budget; only the configuration under test changes.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.simweb.generator import WebGeneratorConfig, generate_web

ABLATION_WEB_CONFIG = WebGeneratorConfig(
    site_scale=0.04,
    pages_per_site=25,
    horizon_days=50.0,
    new_page_fraction=0.2,
    seed=314,
)

CAPACITY = 120
#: Enough budget to refresh each page roughly every four days on average —
#: scarce enough that scheduling choices matter.
BUDGET_PER_DAY = CAPACITY / 4.0
DURATION_DAYS = 40.0
WARMUP_DAYS = 15.0


def _run_variant(web, **overrides) -> float:
    """Run one crawler variant and return its steady-state mean freshness."""
    config = dict(
        collection_capacity=CAPACITY,
        crawl_budget_per_day=BUDGET_PER_DAY,
        revisit_policy="optimal",
        estimator="ep",
        ranking_interval_days=5.0,
        measurement_interval_days=1.0,
        track_quality=False,
    )
    config.update(overrides)
    crawler = IncrementalCrawler(web, IncrementalCrawlerConfig(**config))
    result = crawler.run(DURATION_DAYS)
    return result.freshness.after(WARMUP_DAYS).mean_freshness()


def test_ablation_revisit_policy(benchmark):
    """Fixed vs proportional vs optimal revisit policy inside the crawler."""
    web = generate_web(ABLATION_WEB_CONFIG)

    def run():
        return {
            "uniform": _run_variant(web, revisit_policy="uniform"),
            "proportional": _run_variant(web, revisit_policy="proportional"),
            "optimal": _run_variant(web, revisit_policy="optimal"),
        }

    freshness = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["revisit policy", "steady-state freshness"],
        [(name, f"{value:.3f}") for name, value in freshness.items()],
        title="Ablation: UpdateModule revisit policy (same web, same budget)",
    ))
    # With *known* change rates the optimal allocation dominates (see
    # bench_fig10_policy_comparison.py). Inside the crawler the rates are
    # estimated from checksum histories, which erodes part of the advantage —
    # the ablation documents that gap. The optimal policy must still not
    # lose materially to either alternative.
    assert freshness["optimal"] >= freshness["proportional"] - 0.03
    assert freshness["optimal"] >= freshness["uniform"] - 0.06


def test_ablation_estimator_choice(benchmark):
    """EP (Poisson) vs EB (Bayesian classes) as the scheduling estimator."""
    web = generate_web(ABLATION_WEB_CONFIG)

    def run():
        return {
            "EP (Poisson)": _run_variant(web, estimator="ep"),
            "EB (Bayesian classes)": _run_variant(web, estimator="eb"),
        }

    freshness = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["estimator", "steady-state freshness"],
        [(name, f"{value:.3f}") for name, value in freshness.items()],
        title="Ablation: change-frequency estimator feeding the scheduler",
    ))
    # Both estimators must produce a functional crawler; the paper treats
    # them as interchangeable implementations of the same role.
    assert all(value > 0.5 for value in freshness.values())
    assert abs(freshness["EP (Poisson)"] - freshness["EB (Bayesian classes)"]) < 0.2


def test_ablation_importance_weighted_scheduling(benchmark):
    """Importance-weighted revisit scheduling (Section 5.3 remark)."""
    web = generate_web(ABLATION_WEB_CONFIG)

    def run():
        plain = _run_variant(web, use_importance_in_scheduling=False)
        weighted = _run_variant(web, use_importance_in_scheduling=True)
        return plain, weighted

    plain, weighted = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["scheduling", "steady-state freshness"],
        [
            ("change rate only", f"{plain:.3f}"),
            ("importance-weighted", f"{weighted:.3f}"),
        ],
        title="Ablation: weighting revisit frequency by page importance",
    ))
    # Weighting by importance trades uniform freshness for importance-focused
    # freshness; it must not break the crawler, and the unweighted variant
    # should be at least as good on the unweighted freshness metric.
    assert weighted > 0.4
    assert plain >= weighted - 0.05
