"""Table 1 — number of monitored sites per domain.

The paper selected 400 candidate sites by site-level PageRank over the
WebBase snapshot, obtained webmaster consent for 270 of them, and reports
the domain mix: 132 com, 78 edu, 30 netorg, 30 gov. The benchmark runs the
same pipeline against the synthetic web and compares the domain *shares*
(the synthetic web is smaller, so absolute counts scale down).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiment.site_selection import (
    PAPER_TABLE1_SITE_COUNTS,
    domain_share,
    select_sites,
)


def test_table1_site_selection(benchmark, bench_web):
    """Regenerate Table 1: domain mix of the selected popular sites."""
    selection = benchmark.pedantic(
        lambda: select_sites(bench_web, n_candidates=bench_web.n_sites,
                             consent_rate=270.0 / 400.0, seed=3),
        rounds=1,
        iterations=1,
    )
    measured_share = domain_share(selection.domain_counts)
    paper_total = sum(PAPER_TABLE1_SITE_COUNTS.values())
    rows = []
    for domain in ("com", "edu", "netorg", "gov"):
        paper_share = PAPER_TABLE1_SITE_COUNTS[domain] / paper_total
        rows.append(
            (
                domain,
                f"{PAPER_TABLE1_SITE_COUNTS[domain]} sites ({paper_share:.2f})",
                f"{selection.domain_counts.get(domain, 0)} sites "
                f"({measured_share.get(domain, 0.0):.2f})",
            )
        )
    print()
    print(format_table(["domain", "paper (Table 1)", "measured"], rows,
                       title="Table 1: monitored sites per domain"))

    # Shape check: com dominates, edu second, netorg/gov smallest.
    counts = selection.domain_counts
    assert counts.get("com", 0) >= counts.get("edu", 0)
    assert counts.get("edu", 0) >= counts.get("gov", 0)
