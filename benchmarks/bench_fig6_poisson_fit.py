"""Figure 6 — are page changes Poisson?

The paper selects pages with average change intervals of 10 and 20 days and
shows that the distribution of their inter-change intervals is exponential
(straight line on a log scale), i.e. consistent with a Poisson change
process. The benchmark repeats the selection and fit on the monitored
synthetic web, and also fits a deliberately non-Poisson (periodic) process
as a negative control.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.statistics import fit_exponential
from repro.experiment.poisson_fit import fit_poisson_model


def test_fig6a_ten_day_pages(benchmark, bench_observation_log):
    """Figure 6(a): pages with ~10-day average change interval."""
    result = benchmark.pedantic(
        lambda: fit_poisson_model(bench_observation_log, target_interval_days=10.0),
        rounds=1,
        iterations=1,
    )
    print()
    rows = [
        ("pages selected", "-", result.n_pages),
        ("pooled intervals", "-", result.n_intervals),
        ("fitted mean interval (days)", "~10", f"{result.fit.mean_interval:.1f}"),
        ("log-survival R^2 (1.0 = exponential)", "visually linear",
         f"{result.fit.log_r_squared:.3f}"),
        ("KS distance to exponential", "small", f"{result.fit.ks_statistic:.3f}"),
    ]
    print(format_table(["quantity", "paper (Fig 6a)", "measured"], rows,
                       title="Figure 6(a): Poisson check for 10-day pages"))
    assert result.fit is not None
    assert result.fit.log_r_squared > 0.85


def test_fig6b_twenty_day_pages(benchmark, bench_observation_log):
    """Figure 6(b): pages with ~20-day average change interval."""
    result = benchmark.pedantic(
        lambda: fit_poisson_model(bench_observation_log, target_interval_days=20.0),
        rounds=1,
        iterations=1,
    )
    print()
    if result.fit is None:
        print("not enough 20-day pages at this web scale; paper shape not testable")
        return
    rows = [
        ("fitted mean interval (days)", "~20", f"{result.fit.mean_interval:.1f}"),
        ("log-survival R^2", "visually linear", f"{result.fit.log_r_squared:.3f}"),
    ]
    print(format_table(["quantity", "paper (Fig 6b)", "measured"], rows,
                       title="Figure 6(b): Poisson check for 20-day pages"))
    assert result.fit.log_r_squared > 0.8


def test_fig6_negative_control_periodic_changes(benchmark):
    """A page that changes like clockwork must NOT look exponential.

    This guards the meaningfulness of the Figure 6 check: the statistic must
    be able to reject non-Poisson behaviour, otherwise the positive results
    above would be vacuous.
    """
    rng = np.random.default_rng(0)

    def control():
        exponential = fit_exponential(rng.exponential(10.0, size=2000))
        periodic = fit_exponential(rng.normal(10.0, 0.2, size=2000).clip(0.1))
        return exponential, periodic

    exponential, periodic = benchmark.pedantic(control, rounds=1, iterations=1)
    print()
    print(format_table(
        ["process", "log-survival R^2", "plausibly Poisson?"],
        [
            ("Poisson (exponential intervals)", f"{exponential.log_r_squared:.3f}",
             exponential.is_plausibly_exponential),
            ("clockwork (periodic intervals)", f"{periodic.log_r_squared:.3f}",
             periodic.is_plausibly_exponential),
        ],
        title="Figure 6 negative control",
    ))
    assert exponential.is_plausibly_exponential
    assert not periodic.is_plausibly_exponential
