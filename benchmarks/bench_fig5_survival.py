"""Figure 5 — fraction of pages unchanged (and still present) over time.

Paper findings being reproduced:
* the unchanged fraction decays roughly exponentially;
* the com domain reaches 50% change far sooner than the other domains (the
  paper measured 11 days for com versus almost four months for gov);
* the gov/edu domains may not even reach 50% within the experiment.

Absolute crossover days depend on the calibrated rate mix; the ordering and
the roughly-exponential shape are the reproduced claims.
"""

from __future__ import annotations

from repro.analysis.report import format_series, format_table
from repro.experiment.survival import (
    PAPER_FIGURE5_HALF_CHANGE_DAYS,
    analyze_survival,
)


def test_fig5a_overall_survival(benchmark, bench_observation_log):
    """Figure 5(a): overall unchanged-fraction curve and 50% crossover."""
    analysis = benchmark.pedantic(
        lambda: analyze_survival(bench_observation_log), rounds=1, iterations=1
    )
    curve = analysis.overall
    print()
    print(format_series(
        list(curve.days), list(curve.unchanged_fraction),
        x_label="day", y_label="unchanged fraction",
        title="Figure 5(a): fraction of pages unchanged by day", max_points=15,
    ))
    half = curve.half_change_day()
    print(f"50% of the web changed by day: paper ~{PAPER_FIGURE5_HALF_CHANGE_DAYS['overall']:.0f}, "
          f"measured {half}")
    assert half is not None
    assert curve.unchanged_fraction[0] >= 0.9


def test_fig5b_survival_by_domain(benchmark, bench_observation_log):
    """Figure 5(b): per-domain curves; com changes fastest, gov slowest."""
    analysis = benchmark.pedantic(
        lambda: analyze_survival(bench_observation_log), rounds=1, iterations=1
    )
    half_days = analysis.half_change_days()
    rows = []
    for domain in ("com", "netorg", "edu", "gov"):
        paper = PAPER_FIGURE5_HALF_CHANGE_DAYS.get(domain, float("nan"))
        measured = half_days.get(domain)
        rows.append(
            (
                domain,
                f"{paper:.0f}" if paper == paper else "n/a",
                "not reached" if measured is None else f"{measured:.0f}",
            )
        )
    print()
    print(format_table(
        ["domain", "paper days to 50% change", "measured"], rows,
        title="Figure 5(b): days until half of the domain changed",
    ))
    com = half_days["com"]
    gov = half_days.get("gov")
    assert com is not None
    if gov is not None:
        assert gov > com
    edu = half_days.get("edu")
    if edu is not None:
        assert edu > com
