#!/usr/bin/env python
"""Perf trajectory of the vectorized hot paths vs. the reference loops.

Times each NumPy-batched kernel against the retained ``*_reference``
implementation on the same inputs and seeds, checks the results agree, and
writes the measurements to ``BENCH_perf.json`` at the repository root so
the speedup trajectory is tracked from PR to PR.

Kernels covered:

* ``simulate_revisit_allocation`` — the Figure 9/10 Monte-Carlo simulator;
* ``simulate_crawl_policy`` — the Table 2 / Figures 7-8 policy simulator;
* ``optimal_revisit_frequencies`` — the KKT water-level allocation solver;
* ``collection_freshness`` + ``collection_age`` — the batched-oracle
  measurement path used by every crawler measurement event;
* ``incremental_crawler_run`` — the end-to-end Figure 12 crawl loop:
  the batched tick-window engine against the pinned per-URL reference
  engine on the same web, with bit-identical counters and freshness
  series required.
* ``crawler_run_faulty`` — the cost of the fault-injection hooks when no
  fault fires: the batched engine plain vs. with a zero-rate fault layer
  and retry policy armed; the runs must be bit-identical and the armed
  run at most 2% slower (a real chaos run is timed alongside for the
  record).
* ``incremental_crawler_run_polite`` — the same crawl loop with the
  paper's politeness constraints on (10 s per-site minimum delay plus
  the nightly crawl window) over a multi-site web; the batched engine
  resolves politeness in site-grouped bulk passes and must additionally
  reproduce every fetch timestamp bit-for-bit.
* ``collection_store_io`` — storage-backend write/scan throughput: the
  columnar backend against SQLite (with the plain in-memory backend's
  time recorded alongside) on a crawl-shaped record/event workload, with
  exact invariant agreement required across all three backends.
* ``ranking_power_iteration`` — one PageRank solve: the sparse CSR kernel
  (including its CSR build) against the pinned dense reference on the
  same heavy-tailed graph; in full mode the sparse kernel additionally
  solves a million-page graph, with its build/solve times recorded in
  ``params``.
* ``ranking_refinement_scan`` — the RankingModule steady state: a scan
  that applies a small edge churn to a live ``LinkGraph`` and
  warm-starts power iteration from the previous fixed point, against a
  cold recompute that re-interns the whole collection adjacency into a
  fresh graph and iterates from the uniform prior.
* ``incremental_crawler_run_sharded`` — the multi-process sharded crawl:
  the same end-to-end crawl run through ``ShardedCrawler`` at 1/2/4
  shards against the single-process batched baseline on one web. The
  1-shard configuration must be bit-identical to the baseline; the
  multi-shard timings carry their worker counts in ``params``.
* ``scenario_matrix_parallel`` — a crawl-cell parameter sweep run through
  ``run_matrix`` serially vs. across worker processes, with per-cell
  result equality required.

The two multi-process kernels record honest wall times for the host they
run on; when the machine has fewer CPUs than the requested workers the
entry is marked ``"gated": false`` (with the reason in ``params``) and the
speedup gate skips it — a 1-CPU container cannot show a parallel speedup,
but the result-equality checks still apply. The payload's ``environment``
block records the CPU count and library versions the numbers were taken
under.

Usage::

    python benchmarks/bench_perf_hotpaths.py            # full sizes
    python benchmarks/bench_perf_hotpaths.py --quick    # CI smoke sizes

Exits non-zero when any vectorized kernel fails to beat its reference
implementation, which is what the CI smoke invocation gates on.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.incremental_crawler import (  # noqa: E402
    IncrementalCrawler,
    IncrementalCrawlerConfig,
)
from repro.faults import RetryPolicy  # noqa: E402
from repro.freshness.metrics import (  # noqa: E402
    collection_age,
    collection_age_reference,
    collection_freshness,
    collection_freshness_reference,
)
from repro.freshness.optimal_allocation import (  # noqa: E402
    optimal_revisit_frequencies,
    optimal_revisit_frequencies_reference,
)
from repro.simulation.crawler_sim import (  # noqa: E402
    simulate_crawl_policy,
    simulate_crawl_policy_reference,
    simulate_revisit_allocation,
    simulate_revisit_allocation_reference,
)
from repro.ranking.pagerank import pagerank_reference  # noqa: E402
from repro.ranking.sparse import LinkGraph, pagerank_scores  # noqa: E402
from repro.simulation.scenarios import paper_table2_policies  # noqa: E402
from repro.simweb.change_models import PoissonChangeProcess  # noqa: E402
from repro.simweb.page import SimulatedPage  # noqa: E402
from repro.simweb.site import SimulatedSite  # noqa: E402
from repro.simweb.web import SimulatedWeb  # noqa: E402
from repro.storage.backends import (  # noqa: E402
    ColumnarBackend,
    MemoryBackend,
    SqliteBackend,
)
from repro.storage.records import PageRecord  # noqa: E402


def _timed(fn: Callable[[], object]) -> tuple:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_revisit_allocation(n_pages: int, n_samples: int) -> Dict:
    rng = np.random.default_rng(101)
    rates = rng.exponential(0.15, size=n_pages)
    rates[: n_pages // 20] = 0.0
    intervals = rng.exponential(15.0, size=n_pages)
    intervals[: n_pages // 50] = np.inf

    vec_seconds, vec = _timed(
        lambda: simulate_revisit_allocation(rates, intervals, n_samples=n_samples, seed=7)
    )
    ref_seconds, ref = _timed(
        lambda: simulate_revisit_allocation_reference(
            rates, intervals, n_samples=n_samples, seed=7
        )
    )
    delta = max(abs(a - b) for a, b in zip(vec.freshness, ref.freshness))
    return {
        "kernel": "simulate_revisit_allocation",
        "params": {"n_pages": n_pages, "n_samples": n_samples},
        "ref_seconds": ref_seconds,
        "vec_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "max_abs_delta": delta,
    }


def bench_crawl_policy(n_pages: int, n_cycles: int) -> Dict:
    rng = np.random.default_rng(103)
    rates = rng.exponential(0.1, size=n_pages)
    policy = paper_table2_policies()["batch / shadowing"]

    vec_seconds, vec = _timed(
        lambda: simulate_crawl_policy(rates, policy, n_cycles=n_cycles, seed=7)
    )
    ref_seconds, ref = _timed(
        lambda: simulate_crawl_policy_reference(rates, policy, n_cycles=n_cycles, seed=7)
    )
    delta = max(abs(a - b) for a, b in zip(vec.freshness, ref.freshness))
    return {
        "kernel": "simulate_crawl_policy",
        "params": {"n_pages": n_pages, "n_cycles": n_cycles},
        "ref_seconds": ref_seconds,
        "vec_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "max_abs_delta": delta,
    }


def bench_optimal_allocation(n_pages: int) -> Dict:
    rng = np.random.default_rng(107)
    rates = rng.exponential(0.2, size=n_pages)
    rates[: n_pages // 20] = 0.0
    budget = n_pages / 15.0

    vec_seconds, vec = _timed(lambda: optimal_revisit_frequencies(rates, budget))
    ref_seconds, ref = _timed(
        lambda: optimal_revisit_frequencies_reference(list(rates), budget)
    )
    delta = max(abs(a - b) for a, b in zip(vec, ref))
    return {
        "kernel": "optimal_revisit_frequencies",
        "params": {"n_pages": n_pages, "budget": budget},
        "ref_seconds": ref_seconds,
        "vec_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "max_abs_delta": delta,
    }


def _build_synthetic_web(
    n_pages: int, horizon: float = 200.0, n_sites: int = 1
) -> SimulatedWeb:
    """Flat Poisson-page sites — cheap to build at any scale.

    ``n_sites`` spreads the pages over that many sites, which is what the
    politeness kernel needs: per-site minimum delays only constrain fetches
    within one site, so a single-site web would serialize the whole crawl.
    """
    rng = np.random.default_rng(109)
    web = SimulatedWeb(horizon_days=horizon)
    per_site = n_pages // n_sites
    remainder = n_pages - per_site * n_sites
    for s in range(n_sites):
        site_id = f"site{s:03d}.com"
        site_pages = per_site + (1 if s < remainder else 0)
        site = SimulatedSite(site_id, "com", window_size=site_pages)
        for i in range(site_pages):
            process = PoissonChangeProcess(float(rng.exponential(0.2)))
            process.materialise(horizon, rng)
            if i == 0:
                created, lifespan = 0.0, None
            else:
                created = float(rng.uniform(0.0, 20.0))
                lifespan = float(rng.uniform(50.0, horizon)) if i % 7 == 0 else None
            page = SimulatedPage(
                url=f"http://{site_id}/p{i}",
                site_id=site_id,
                domain="com",
                depth=0 if i == 0 else 1,
                created_at=created,
                lifespan=lifespan,
                change_process=process,
            )
            site.add_page(page, is_root=(i == 0))
        web.add_site(site)
    return web


def bench_collection_metrics(n_records: int, n_instants: int) -> Dict:
    web = _build_synthetic_web(n_records)
    rng = np.random.default_rng(113)
    records = [
        PageRecord(
            url=url,
            content="x",
            checksum="c",
            fetched_at=(fetched := float(rng.uniform(0.0, 140.0))),
            first_fetched_at=fetched,
        )
        for url in web.urls()
    ]
    instants = np.linspace(1.0, 199.0, n_instants)
    web.oracle_arrays()  # build the cache outside the timed region, like a crawl run

    def run_vec() -> List[float]:
        return [
            collection_freshness(records, web, float(t))
            + collection_age(records, web, float(t))
            for t in instants
        ]

    def run_ref() -> List[float]:
        return [
            collection_freshness_reference(records, web, float(t))
            + collection_age_reference(records, web, float(t))
            for t in instants
        ]

    vec_seconds, vec = _timed(run_vec)
    ref_seconds, ref = _timed(run_ref)
    delta = max(abs(a - b) for a, b in zip(vec, ref))
    return {
        "kernel": "collection_freshness+age",
        "params": {"n_records": n_records, "n_instants": n_instants},
        "ref_seconds": ref_seconds,
        "vec_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "max_abs_delta": delta,
    }


def bench_incremental_crawler(n_pages: int, duration_days: float) -> Dict:
    """End-to-end Figure 12 crawl loop: batched engine vs per-URL reference.

    Both engines run the full incremental crawler — steady crawl events,
    EP estimation, optimal revisit reallocation, freshness measurement —
    over the same synthetic web and must produce bit-identical counters
    and freshness series. Ranking is configured out of the steady state
    (one initial scan) so the kernel isolates the crawl loop itself.
    """

    def run(engine: str):
        # The helper draws page lifespans from uniform(50, horizon), so the
        # horizon must clear that even for short quick-mode runs.
        web = _build_synthetic_web(n_pages, horizon=max(duration_days + 20.0, 60.0))
        config = IncrementalCrawlerConfig(
            collection_capacity=n_pages,
            crawl_budget_per_day=2.0 * n_pages,
            revisit_policy="optimal",
            estimator="ep",
            engine=engine,
            ranking_interval_days=duration_days * 10.0,
            measurement_interval_days=0.5,
            track_quality=False,
        )
        crawler = IncrementalCrawler(web, config, seed_urls=list(web.urls()))
        return crawler.run(duration_days)

    vec_seconds, vec = _timed(lambda: run("batched"))
    ref_seconds, ref = _timed(lambda: run("reference"))
    counters_match = (
        vec.pages_crawled == ref.pages_crawled
        and vec.pages_failed == ref.pages_failed
        and vec.changes_detected == ref.changes_detected
        and vec.pages_replaced == ref.pages_replaced
    )
    series_match = (
        vec.freshness.times == ref.freshness.times
        and vec.freshness.freshness == ref.freshness.freshness
    )
    # Bit-identical or bust: report a sentinel delta the gate trips on.
    delta = 0.0 if (counters_match and series_match) else 1.0
    return {
        "kernel": "incremental_crawler_run",
        "params": {
            "n_pages": n_pages,
            "duration_days": duration_days,
            "pages_crawled": ref.pages_crawled,
        },
        "ref_seconds": ref_seconds,
        "vec_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "max_abs_delta": delta,
    }


def bench_crawler_run_faulty(
    n_pages: int, duration_days: float, repeats: int = 3
) -> Dict:
    """No-fault overhead of the fault-injection hooks, gated at < 2%.

    The batched engine runs the same crawl twice: plain, and with a
    zero-rate fault layer plus a retry policy armed — every failure-aware
    hook on the hot path live (bulk fault resolution, breaker checks,
    tracker bookkeeping), with no fault ever firing. The two runs must be
    bit-identical and the armed run at most 2% slower (best-of-``repeats``
    wall times); either violation trips the ``max_abs_delta`` sentinel.
    A real-weather chaos run is timed alongside for the record (its cost
    is workload-dependent, so it is reported, not gated).
    """
    zero_models = (
        ("transient", {"rate": 0.0}),
        ("site_outage", {"rate": 0.0}),
        ("rate_limit", {"rate": 0.0}),
        ("soft_404", {"rate": 0.0}),
    )
    chaos_models = (
        ("transient", {"rate": 0.05}),
        ("site_outage", {"rate": 0.2, "period_days": 7.0, "duration_days": 0.5}),
        ("rate_limit", {"rate": 0.03, "retry_after_days": 0.25}),
        ("soft_404", {"rate": 0.03}),
    )

    def run(fault_models):
        web = _build_synthetic_web(n_pages, horizon=max(duration_days + 20.0, 60.0))
        config = IncrementalCrawlerConfig(
            collection_capacity=n_pages,
            crawl_budget_per_day=2.0 * n_pages,
            revisit_policy="optimal",
            estimator="ep",
            engine="batched",
            ranking_interval_days=duration_days * 10.0,
            measurement_interval_days=0.5,
            track_quality=False,
            fault_models=fault_models,
            fault_seed=5,
            retry=None if fault_models is None else RetryPolicy(),
        )
        crawler = IncrementalCrawler(web, config, seed_urls=list(web.urls()))
        return crawler.run(duration_days), crawler

    # Interleave the plain and armed timed runs (pairwise, best-of): on a
    # noisy shared host, timing each variant in a consecutive block lets a
    # load spike land entirely on one side and fake a >2% overhead.
    plain_seconds = armed_seconds = float("inf")
    plain = armed = armed_crawler = None
    for _ in range(repeats):
        seconds, (result, _) = _timed(lambda: run(None))
        if seconds < plain_seconds:
            plain_seconds, plain = seconds, result
        seconds, (result, crawler) = _timed(lambda: run(zero_models))
        if seconds < armed_seconds:
            armed_seconds, armed, armed_crawler = seconds, result, crawler
    chaos_seconds, (chaos, chaos_crawler) = _timed(lambda: run(chaos_models))

    identical = (
        armed.pages_crawled == plain.pages_crawled
        and armed.pages_failed == plain.pages_failed
        and armed.changes_detected == plain.changes_detected
        and armed.pages_replaced == plain.pages_replaced
        and armed.freshness.times == plain.freshness.times
        and armed.freshness.freshness == plain.freshness.freshness
        and all(v == 0 for v in armed_crawler.failure_counters().values())
    )
    overhead = armed_seconds / plain_seconds - 1.0
    delta = 0.0 if (identical and overhead < 0.02) else 1.0
    chaos_counters = chaos_crawler.failure_counters()
    return {
        "kernel": "crawler_run_faulty",
        "params": {
            "n_pages": n_pages,
            "duration_days": duration_days,
            "repeats": repeats,
            "overhead_fraction": overhead,
            "zero_rate_identical": identical,
            "chaos_seconds": chaos_seconds,
            "chaos_transient_failures": sum(
                chaos_counters[k]
                for k in ("timeouts", "server_errors", "rate_limited", "soft_404s")
            ),
            "chaos_retries": chaos_counters["retries"],
            "chaos_breaker_trips": chaos_counters["breaker_trips"],
            "chaos_pages_crawled": chaos.pages_crawled,
            "gate_exemption": "overhead kernel: gated on max|delta| "
            "(bit-identity plus < 2% no-fault overhead), not on speedup",
        },
        "ref_seconds": plain_seconds,
        "vec_seconds": armed_seconds,
        "speedup": plain_seconds / armed_seconds,
        "max_abs_delta": delta,
        "gated": False,
    }


def bench_incremental_crawler_polite(
    n_pages: int, duration_days: float, n_sites: int
) -> Dict:
    """The crawl-loop kernel with politeness on: batched vs reference.

    Same end-to-end crawl as :func:`bench_incremental_crawler`, but over a
    multi-site web with the paper's politeness constraints enabled — a
    10-second per-site minimum delay plus the nightly crawl window. The
    batched engine resolves the per-site delay chains in bulk
    (site-grouped segmented scans) and must stay bit-identical to the
    reference engine's one-fetch-at-a-time resolution.
    """

    def run(engine: str):
        web = _build_synthetic_web(
            n_pages, horizon=max(duration_days + 20.0, 60.0), n_sites=n_sites
        )
        config = IncrementalCrawlerConfig(
            collection_capacity=n_pages,
            # Twice the plain kernel's crawl rate: politeness compresses
            # every fetch into the nightly window, and the production
            # regime this kernel models is a crawler saturating that
            # window. The higher rate also makes the tick windows dense,
            # which is exactly the case the batched resolution targets.
            crawl_budget_per_day=4.0 * n_pages,
            revisit_policy="optimal",
            estimator="ep",
            engine=engine,
            ranking_interval_days=duration_days * 10.0,
            measurement_interval_days=0.5,
            track_quality=False,
            use_politeness=True,
            politeness_min_delay_seconds=10.0,
            politeness_night_window=True,
        )
        crawler = IncrementalCrawler(web, config, seed_urls=list(web.urls()))
        return crawler.run(duration_days), crawler

    vec_seconds, (vec, vec_crawler) = _timed(lambda: run("batched"))
    ref_seconds, (ref, ref_crawler) = _timed(lambda: run("reference"))
    counters_match = (
        vec.pages_crawled == ref.pages_crawled
        and vec.pages_failed == ref.pages_failed
        and vec.changes_detected == ref.changes_detected
        and vec.pages_replaced == ref.pages_replaced
    )
    series_match = (
        vec.freshness.times == ref.freshness.times
        and vec.freshness.freshness == ref.freshness.freshness
    )
    # Politeness shifts every fetch instant, so also pin the per-record
    # fetch timestamps — the politeness chains themselves.
    records_match = {
        r.url: (r.fetched_at, r.visit_count, r.change_count)
        for r in vec_crawler.collection.current_records()
    } == {
        r.url: (r.fetched_at, r.visit_count, r.change_count)
        for r in ref_crawler.collection.current_records()
    }
    # Bit-identical or bust: report a sentinel delta the gate trips on.
    delta = 0.0 if (counters_match and series_match and records_match) else 1.0
    return {
        "kernel": "incremental_crawler_run_polite",
        "params": {
            "n_pages": n_pages,
            "duration_days": duration_days,
            "n_sites": n_sites,
            "pages_crawled": ref.pages_crawled,
        },
        "ref_seconds": ref_seconds,
        "vec_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "max_abs_delta": delta,
    }


def bench_incremental_crawler_sharded(
    n_pages: int, duration_days: float, n_sites: int, shard_counts: tuple
) -> Dict:
    """Sharded multi-process crawl vs. the single-process batched baseline.

    One web, one config; the baseline is the plain batched
    ``IncrementalCrawler`` and every sharded configuration runs through
    ``ShardedCrawler`` with ``workers=min(shards, cpu_count)``. The
    1-shard run must be bit-identical to the baseline (series, counters,
    records, estimator snapshot); the headline speedup compares the
    largest shard count against the baseline. On a host with fewer CPUs
    than shards the entry is marked ungated — the equality checks still
    hold, but no parallel speedup is physically possible.
    """
    from repro.core.sharded_crawler import ShardedCrawler
    from repro.storage.records import record_to_dict

    cpu_count = os.cpu_count() or 1
    web = _build_synthetic_web(
        n_pages, horizon=max(duration_days + 20.0, 60.0), n_sites=n_sites
    )
    config = IncrementalCrawlerConfig(
        collection_capacity=n_pages,
        crawl_budget_per_day=2.0 * n_pages,
        revisit_policy="optimal",
        estimator="ep",
        engine="batched",
        ranking_interval_days=duration_days * 10.0,
        measurement_interval_days=0.5,
        track_quality=False,
    )

    def run_baseline():
        crawler = IncrementalCrawler(web, config, seed_urls=list(web.urls()))
        return crawler.run(duration_days), crawler

    ref_seconds, (ref, ref_crawler) = _timed(run_baseline)

    timings = {}
    delta = 0.0
    max_shards = max(shard_counts)
    vec_seconds = None
    for shards in shard_counts:
        workers = min(shards, cpu_count)
        sharded = ShardedCrawler(
            web, config, seed_urls=list(web.urls()),
            shards=shards, workers=workers,
        )
        seconds, merged = _timed(lambda: sharded.run(duration_days))
        timings[f"shards_{shards}_seconds"] = seconds
        timings[f"shards_{shards}_workers"] = workers
        if shards == 1:
            identical = (
                list(merged.freshness.times) == list(ref.freshness.times)
                and list(merged.freshness.freshness)
                == list(ref.freshness.freshness)
                and merged.pages_crawled == ref.pages_crawled
                and merged.changes_detected == ref.changes_detected
                and merged.records
                == [
                    record_to_dict(r)
                    for r in ref_crawler.collection.working_records()
                ]
                and merged.estimator_state
                == ref_crawler.update_module.snapshot()
            )
            # Bit-identical or bust: sentinel delta the gate trips on.
            delta = max(delta, 0.0 if identical else 1.0)
        if shards == max_shards:
            vec_seconds = seconds

    gated = cpu_count >= max_shards
    result = {
        "kernel": "incremental_crawler_run_sharded",
        "params": {
            "n_pages": n_pages,
            "duration_days": duration_days,
            "n_sites": n_sites,
            "shard_counts": list(shard_counts),
            "cpu_count": cpu_count,
            "pages_crawled": ref.pages_crawled,
            **timings,
        },
        "ref_seconds": ref_seconds,
        "vec_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "max_abs_delta": delta,
    }
    if not gated:
        result["gated"] = False
        result["params"]["gate_exemption"] = (
            f"host has {cpu_count} CPU(s) for {max_shards} shards; no "
            "parallel speedup is physically possible here"
        )
    return result


def bench_scenario_matrix_parallel(n_cells: int, workers: int) -> Dict:
    """A crawl-cell sweep through ``run_matrix``: serial vs. process pool.

    Per-cell results must be identical between the two modes (the pool
    ships each distinct web once through shared memory, so workers crawl
    the very same ground truth). Marked ungated when the host has fewer
    CPUs than workers.
    """
    from repro.api.runner import ScenarioMatrix, run_matrix
    from repro.api.specs import CrawlerSpec, ExperimentSpec, WebSpec

    cpu_count = os.cpu_count() or 1
    budgets = [100.0 + 50.0 * i for i in range(n_cells)]
    matrix = ScenarioMatrix(
        base=ExperimentSpec(
            name="bench/matrix",
            kind="crawl",
            web=WebSpec(
                site_counts={"com": 12, "edu": 6, "gov": 4, "net": 4},
                pages_per_site=20,
                horizon_days=40.0,
                seed=29,
            ),
            crawler=CrawlerSpec(
                kind="incremental",
                collection_capacity=260,
                crawl_budget_per_day=400.0,
                duration_days=8.0,
            ),
        ),
        axes={"crawler.crawl_budget_per_day": budgets},
    )
    ref_seconds, serial = _timed(lambda: run_matrix(matrix))
    vec_seconds, parallel = _timed(lambda: run_matrix(matrix, workers=workers))
    identical = len(serial.cells) == len(parallel.cells) and all(
        ours.series == theirs.series
        and ours.summary == theirs.summary
        and ours.spec_hash == theirs.spec_hash
        for ours, theirs in zip(serial.cells, parallel.cells)
    )
    gated = cpu_count >= workers
    result = {
        "kernel": "scenario_matrix_parallel",
        "params": {
            "n_cells": n_cells,
            "workers": workers,
            "cpu_count": cpu_count,
        },
        "ref_seconds": ref_seconds,
        "vec_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "max_abs_delta": 0.0 if identical else 1.0,
    }
    if not gated:
        result["gated"] = False
        result["params"]["gate_exemption"] = (
            f"host has {cpu_count} CPU(s) for {workers} workers; no "
            "parallel speedup is physically possible here"
        )
    return result


def bench_collection_store_io(n_records: int) -> Dict:
    """Storage-backend write/scan throughput: columnar vs SQLite.

    Drives each backend through the same crawl-shaped workload —
    ``process_batch``-sized ``put_records``/``append_events`` bursts
    followed by a full scan plus a column aggregation — and checks all
    backends agree on exact integer invariants (record count, total visit
    count, a sampled record). SQLite runs in its in-memory form so the
    kernel measures engine cost, not disk noise; the ``memory`` backend's
    time rides along in ``params`` as the floor.
    """
    rng = np.random.default_rng(127)
    fetched = rng.uniform(0.0, 100.0, size=n_records)
    records = [
        PageRecord(
            url=f"http://bench.example/p{i}",
            content=f"body of page {i}",
            checksum=f"ck{i:08d}",
            fetched_at=float(t),
            first_fetched_at=float(t),
            outlinks=(f"http://bench.example/p{(i + 1) % n_records}",),
            importance=float(i % 97) / 97.0,
            visit_count=1 + i % 5,
            change_count=i % 2,
        )
        for i, t in enumerate(fetched)
    ]
    events = [
        (record.url, record.fetched_at, i % 3 == 0, True)
        for i, record in enumerate(records)
    ]
    batch = 2048  # a plausible process_batch tick-window size

    def drive(backend) -> tuple:
        for start in range(0, n_records, batch):
            backend.put_records(records[start:start + batch])
            backend.append_events(events[start:start + batch])
        scanned = backend.scan_records()
        sample = scanned[n_records // 2]
        return (
            backend.record_count(),
            backend.event_count(),
            sum(record.visit_count for record in scanned),
            (sample.url, sample.fetched_at, sample.visit_count),
        )

    memory = MemoryBackend()
    memory_seconds, memory_invariants = _timed(lambda: drive(memory))
    sqlite_backend = SqliteBackend()
    ref_seconds, sqlite_invariants = _timed(lambda: drive(sqlite_backend))
    sqlite_backend.close()
    columnar = ColumnarBackend()
    vec_seconds, columnar_invariants = _timed(lambda: drive(columnar))

    # Exact-invariant parity or bust: report a sentinel delta the gate
    # trips on (counts and sampled fields are integers/IEEE doubles, so
    # equality is the right comparison).
    agree = memory_invariants == sqlite_invariants == columnar_invariants
    delta = 0.0 if agree else 1.0
    return {
        "kernel": "collection_store_io",
        "params": {
            "n_records": n_records,
            "batch": batch,
            "memory_seconds": memory_seconds,
        },
        "ref_seconds": ref_seconds,
        "vec_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "max_abs_delta": delta,
    }


def _synthetic_link_arrays(
    n_pages: int, out_degree: int, seed: int
) -> tuple:
    """A heavy-tailed random link graph as pre-interned id arrays.

    Targets are drawn with density ``~ 3 * (1 - rank)**2`` over the node
    ids, so low ids accumulate most in-links — the same rich-get-richer
    skew the synthetic web's cross-site preferential attachment produces.
    About 5% of the pages state no out-links at all (dangling pages), which
    keeps the kernels honest about the dangling-mass term.
    """
    rng = np.random.default_rng(seed)
    urls = [f"http://bench.example/p{i}" for i in range(n_pages)]
    src = np.repeat(np.arange(n_pages, dtype=np.int64), out_degree)
    dst = (n_pages * rng.random(n_pages * out_degree) ** 3).astype(np.int64)
    dangling = rng.random(n_pages) < 0.05
    keep = ~dangling[src]
    return urls, src[keep], dst[keep]


def bench_ranking_power_iteration(
    n_pages: int, out_degree: int = 8, large_n_pages: int = 0
) -> Dict:
    """One PageRank solve: sparse CSR kernel vs the dense dict reference.

    The sparse side is timed from a freshly-loaded :class:`LinkGraph`
    whose CSR view has not been built yet, so its time covers compaction
    and CSR assembly — the cost a refinement scan actually pays. When
    ``large_n_pages`` is set, the sparse kernel additionally builds and
    solves a graph of that size (reference skipped — the dense loop does
    not finish at that scale) and records the times in ``params``.
    """
    urls, src, dst = _synthetic_link_arrays(n_pages, out_degree, seed=131)
    counts = np.bincount(src, minlength=n_pages)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    dense = {
        urls[i]: [urls[j] for j in dst[offsets[i]:offsets[i + 1]]]
        for i in range(n_pages)
    }
    graph = LinkGraph.from_arrays(
        urls, src, dst, sources=np.arange(n_pages, dtype=np.int64)
    )

    vec_seconds, (ids, scores) = _timed(lambda: pagerank_scores(graph))
    ref_seconds, ref = _timed(lambda: pagerank_reference(dense))
    sparse_by_url = {graph.url_of(int(i)): s for i, s in zip(ids, scores)}
    assert set(sparse_by_url) == set(ref)
    delta = max(abs(sparse_by_url[url] - ref[url]) for url in ref)

    params = {"n_pages": n_pages, "out_degree": out_degree}
    if large_n_pages:
        large = _synthetic_link_arrays(large_n_pages, out_degree, seed=137)
        build_seconds, large_graph = _timed(
            lambda: LinkGraph.from_arrays(
                large[0], large[1], large[2],
                sources=np.arange(large_n_pages, dtype=np.int64),
            )
        )
        solve_seconds, (large_ids, large_scores) = _timed(
            lambda: pagerank_scores(large_graph)
        )
        assert len(large_ids) == large_n_pages
        assert abs(float(large_scores.sum()) - 1.0) < 1e-9
        params.update(
            large_n_pages=large_n_pages,
            large_build_seconds=build_seconds,
            large_solve_seconds=solve_seconds,
        )
    return {
        "kernel": "ranking_power_iteration",
        "params": params,
        "ref_seconds": ref_seconds,
        "vec_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "max_abs_delta": delta,
    }


def bench_ranking_refinement_scan(
    n_pages: int, churn_nodes: int, out_degree: int = 8
) -> Dict:
    """One steady-state ranking scan: incremental warm path vs cold recompute.

    Setup (untimed) builds a collection-sized ``LinkGraph`` and converges
    it once — the state the RankingModule carries between scans. A scan
    then re-states the out-links of ``churn_nodes`` pages (the
    admissions/replacements since the last scan). The warm path applies
    those deltas to the live graph and warm-starts power iteration from
    the previous fixed point; the cold recompute re-interns the entire
    post-churn adjacency into a fresh graph and iterates from the uniform
    prior — what every scan cost before the graph became persistent.
    Both paths run at ``tolerance=1e-11`` so their fixed points agree to
    well under the harness's mismatch gate.
    """
    tolerance = 1e-11
    urls, src, dst = _synthetic_link_arrays(n_pages, out_degree, seed=139)
    graph = LinkGraph.from_arrays(
        urls, src, dst, sources=np.arange(n_pages, dtype=np.int64)
    )
    _, previous = pagerank_scores(graph, tolerance=tolerance)

    rng = np.random.default_rng(149)
    churned = rng.choice(n_pages, size=churn_nodes, replace=False)
    deltas = [
        (int(node), (n_pages * rng.random(out_degree) ** 3).astype(np.int64))
        for node in churned
    ]

    def warm_scan() -> np.ndarray:
        for node, targets in deltas:
            graph.set_outlinks_ids(node, targets)
        _, scores = pagerank_scores(graph, tolerance=tolerance, x0=previous)
        return scores

    vec_seconds, warm_scores = _timed(warm_scan)

    # The cold path sees the same post-churn adjacency, as URL lists — the
    # form the collection's records hold it in.
    new_targets = dict(deltas)
    counts = np.bincount(src, minlength=n_pages)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    adjacency = [
        [urls[j] for j in new_targets[i]]
        if i in new_targets
        else [urls[j] for j in dst[offsets[i]:offsets[i + 1]]]
        for i in range(n_pages)
    ]

    def cold_scan() -> tuple:
        rebuilt = LinkGraph()
        for url, targets in zip(urls, adjacency):
            rebuilt.set_outlinks(url, targets)
        _, scores = pagerank_scores(rebuilt, tolerance=tolerance)
        return rebuilt, scores

    ref_seconds, (rebuilt, cold_scores) = _timed(cold_scan)

    # Align the cold solve's scores (interned in rebuild order) with the
    # warm graph's id order before comparing.
    url_index = {url: i for i, url in enumerate(urls)}
    order = np.array([url_index[u] for u in rebuilt.active_urls()])
    cold_aligned = np.empty(n_pages)
    cold_aligned[order] = cold_scores
    assert len(cold_scores) == n_pages == len(warm_scores)
    delta = float(np.max(np.abs(warm_scores - cold_aligned)))
    return {
        "kernel": "ranking_refinement_scan",
        "params": {
            "n_pages": n_pages,
            "churn_nodes": churn_nodes,
            "out_degree": out_degree,
        },
        "ref_seconds": ref_seconds,
        "vec_seconds": vec_seconds,
        "speedup": ref_seconds / vec_seconds,
        "max_abs_delta": delta,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes for the CI smoke run (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="where to write the JSON results (default: BENCH_perf.json at the "
             "repo root, or BENCH_perf_quick.json with --quick so smoke runs "
             "never clobber the tracked full-size trajectory)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        name = "BENCH_perf_quick.json" if args.quick else "BENCH_perf.json"
        args.output = REPO_ROOT / name

    if args.quick:
        jobs = [
            lambda: bench_revisit_allocation(n_pages=1200, n_samples=120),
            lambda: bench_crawl_policy(n_pages=600, n_cycles=4),
            lambda: bench_optimal_allocation(n_pages=400),
            lambda: bench_collection_metrics(n_records=2000, n_instants=5),
            lambda: bench_incremental_crawler(n_pages=1500, duration_days=12.0),
            lambda: bench_crawler_run_faulty(
                n_pages=1500, duration_days=12.0, repeats=6
            ),
            lambda: bench_incremental_crawler_polite(
                n_pages=1500, duration_days=12.0, n_sites=30
            ),
            lambda: bench_collection_store_io(n_records=20_000),
            lambda: bench_ranking_power_iteration(n_pages=4000),
            lambda: bench_ranking_refinement_scan(n_pages=30_000, churn_nodes=10),
            lambda: bench_incremental_crawler_sharded(
                n_pages=2000, duration_days=8.0, n_sites=24, shard_counts=(1, 2)
            ),
            lambda: bench_scenario_matrix_parallel(n_cells=4, workers=2),
        ]
    else:
        jobs = [
            lambda: bench_revisit_allocation(n_pages=10_000, n_samples=400),
            lambda: bench_crawl_policy(n_pages=10_000, n_cycles=10),
            lambda: bench_optimal_allocation(n_pages=10_000),
            lambda: bench_collection_metrics(n_records=20_000, n_instants=20),
            lambda: bench_incremental_crawler(n_pages=10_000, duration_days=100.0),
            lambda: bench_crawler_run_faulty(
                n_pages=10_000, duration_days=100.0, repeats=3
            ),
            lambda: bench_incremental_crawler_polite(
                n_pages=10_000, duration_days=100.0, n_sites=250
            ),
            lambda: bench_collection_store_io(n_records=100_000),
            lambda: bench_ranking_power_iteration(
                n_pages=100_000, large_n_pages=1_000_000
            ),
            lambda: bench_ranking_refinement_scan(
                n_pages=300_000, churn_nodes=100
            ),
            lambda: bench_incremental_crawler_sharded(
                n_pages=10_000, duration_days=30.0, n_sites=64,
                shard_counts=(1, 2, 4),
            ),
            lambda: bench_scenario_matrix_parallel(n_cells=8, workers=4),
        ]

    results = []
    for job in jobs:
        result = job()
        results.append(result)
        print(
            f"{result['kernel']:32s} ref {result['ref_seconds']:8.3f}s  "
            f"vec {result['vec_seconds']:8.3f}s  speedup {result['speedup']:7.1f}x  "
            f"max|delta| {result['max_abs_delta']:.2e}"
        )

    import scipy

    payload = {
        "benchmark": "bench_perf_hotpaths",
        "mode": "quick" if args.quick else "full",
        "generated_unix": time.time(),
        "environment": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "platform": platform.platform(),
        },
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    # Entries marked "gated": false measured a parallelism the host cannot
    # express (see their params.gate_exemption); their timings are recorded
    # but only correctness gates them.
    failures = [
        r for r in results if r["speedup"] < 1.0 and r.get("gated", True)
    ]
    mismatches = [r for r in results if r["max_abs_delta"] > 1e-9]
    for result in results:
        if result.get("gated") is False:
            print(f"note: {result['kernel']} speedup not gated "
                  f"({result['params']['gate_exemption']})")
    for result in failures:
        print(f"FAIL: {result['kernel']} is slower than its reference "
              f"({result['speedup']:.2f}x)")
    for result in mismatches:
        print(f"FAIL: {result['kernel']} diverges from its reference "
              f"(max|delta| {result['max_abs_delta']:.2e})")
    return 1 if failures or mismatches else 0


if __name__ == "__main__":
    sys.exit(main())
