"""Section 5 — the incremental-crawler architecture vs. the periodic baseline.

This is the end-to-end experiment the paper's architecture exists for: run
the full incremental crawler (steady, in-place, variable revisit frequency,
RankingModule refinement) and the periodic crawler (batch, shadowing, fixed
frequency) against the same evolving synthetic web with the same *average*
crawl speed, and compare

* the freshness of the user-visible collection over time (goal 1 of
  Section 5.1),
* the quality of the collection — how much of the attainable PageRank mass
  it holds (goal 2 of Section 5.1),
* the peak crawl speed each needs (the paper's operational argument for the
  steady crawler).

Both crawler runs are declared as ``"crawl"`` experiment specs and executed
by :func:`repro.api.run` against one shared synthetic web. It also measures
the scheduling-throughput argument for separating the update decision from
the refinement decision (Section 5.3).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.api import CrawlerSpec, ExperimentSpec, PolicySpec, WebSpec, run
from repro.api.runner import build_web

#: A dedicated (smaller) web so this end-to-end benchmark stays fast.
CRAWLER_WEB_SPEC = WebSpec(
    site_scale=0.05,
    pages_per_site=25,
    horizon_days=70.0,
    new_page_fraction=0.25,
    seed=99,
)

CAPACITY = 150
CYCLE_DAYS = 10.0
DURATION_DAYS = 60.0
#: Average fetches per day granted to both crawlers.
AVERAGE_BUDGET = 4.0 * CAPACITY / CYCLE_DAYS

INCREMENTAL_SPEC = ExperimentSpec(
    name="bench/incremental",
    kind="crawl",
    web=CRAWLER_WEB_SPEC,
    crawler=CrawlerSpec(
        kind="incremental",
        collection_capacity=CAPACITY,
        crawl_budget_per_day=AVERAGE_BUDGET,
        duration_days=DURATION_DAYS,
        ranking_interval_days=5.0,
        measurement_interval_days=1.0,
        track_quality=True,
    ),
    policy=PolicySpec(revisit_policy="optimal", estimator="ep"),
)

PERIODIC_SPEC = ExperimentSpec(
    name="bench/periodic",
    kind="crawl",
    web=CRAWLER_WEB_SPEC,
    crawler=CrawlerSpec(
        kind="periodic",
        collection_capacity=CAPACITY,
        # The batch crawler compresses the same work into a shorter
        # window, so its peak speed is higher (the paper's point).
        crawl_budget_per_day=AVERAGE_BUDGET * 4.0,
        duration_days=DURATION_DAYS,
        cycle_days=CYCLE_DAYS,
        measurement_interval_days=1.0,
        track_quality=True,
    ),
)


def test_incremental_vs_periodic_crawler(benchmark):
    """The incremental crawler is fresher and at least as high-quality."""
    web = build_web(CRAWLER_WEB_SPEC)

    def run_specs():
        incremental = run(INCREMENTAL_SPEC, web=web)
        periodic = run(PERIODIC_SPEC, web=web)
        return incremental, periodic

    incremental, periodic = benchmark.pedantic(run_specs, rounds=1, iterations=1)

    inc_steady = incremental.artifacts["outcome"].freshness.after(CYCLE_DAYS)
    per_steady = periodic.artifacts["outcome"].freshness.after(CYCLE_DAYS)
    rows = [
        ("mean freshness (after warm-up)",
         f"{inc_steady.mean_freshness():.3f}", f"{per_steady.mean_freshness():.3f}"),
        ("final collection quality",
         f"{incremental.summary['final_quality']:.3f}",
         f"{periodic.summary['final_quality']:.3f}"),
        ("pages fetched", incremental.summary["pages_crawled"],
         periodic.summary["pages_crawled"]),
        ("peak crawl speed (pages/day)", f"{AVERAGE_BUDGET:.0f}",
         f"{AVERAGE_BUDGET * 4.0:.0f}"),
    ]
    print()
    print(format_table(
        ["metric", "incremental crawler", "periodic crawler"], rows,
        title="Section 5: incremental vs periodic crawler on the same evolving web",
    ))

    assert inc_steady.mean_freshness() > per_steady.mean_freshness()
    assert incremental.summary["final_quality"] > 0.3


def test_update_vs_refinement_separation(benchmark):
    """Separating the update decision from the refinement decision is what
    lets the UpdateModule run at full crawl speed (Section 5.3).

    The benchmark measures scheduling throughput with the RankingModule run
    rarely (the architecture's choice) versus recomputing importance after
    every fetch (the naive alternative the paper argues against).
    """
    web = build_web(CRAWLER_WEB_SPEC)

    def run_with(ranking_interval_days: float) -> float:
        result = run(ExperimentSpec(
            name="bench/refinement-separation",
            kind="crawl",
            web=CRAWLER_WEB_SPEC,
            crawler=CrawlerSpec(
                kind="incremental",
                collection_capacity=100,
                crawl_budget_per_day=300.0,
                duration_days=20.0,
                ranking_interval_days=ranking_interval_days,
                measurement_interval_days=5.0,
                track_quality=False,
            ),
            policy=PolicySpec(revisit_policy="uniform"),
        ), web=web)
        return result.summary["pages_crawled"] / max(result.wall_time_seconds, 1e-9)

    def run_specs():
        separated = run_with(ranking_interval_days=5.0)
        inline = run_with(ranking_interval_days=1.0 / 300.0)
        return separated, inline

    separated, inline = benchmark.pedantic(run_specs, rounds=1, iterations=1)
    print()
    print(format_table(
        ["architecture", "scheduling throughput (fetches per wall-clock second)"],
        [
            ("refinement separated (scan every 5 days)", f"{separated:,.0f}"),
            ("refinement inline (scan after every fetch)", f"{inline:,.0f}"),
        ],
        title="Section 5.3: why the RankingModule is separated from the UpdateModule",
    ))
    assert separated > inline
