"""Figure 8 — freshness of the crawler's and the current collection with shadowing.

Paper findings being reproduced:
* with shadowing, the crawler's collection is rebuilt from scratch (its
  freshness climbs from zero every cycle) and the current collection decays
  between swaps;
* for a steady crawler, the in-place (dashed) curve is strictly above the
  shadowed current collection at all times — "freshness of the current
  collection is always higher without shadowing";
* for a batch-mode crawler, the two differ only while the crawler runs.

Both variants run through the declarative API as the ``"figure8"`` scenario
registry entry (``variant="steady"`` / ``variant="batch"``).
"""

from __future__ import annotations

from repro.analysis.report import format_series, format_table
from repro.api import ExperimentSpec, run
from repro.simulation.scenarios import figure8_policies


def test_fig8a_steady_crawler_with_shadowing(benchmark):
    """Figure 8(a): steady crawler — shadowing always hurts."""
    spec = ExperimentSpec(
        name="bench/figure8a", kind="scenario", scenario="figure8",
        params={"variant": "steady"},
    )

    def run_spec():
        return run(spec)

    result = benchmark.pedantic(run_spec, rounds=1, iterations=1)
    times = result.series["times"]
    crawler = result.series["crawler"]
    current = result.series["current"]
    inplace = result.series["in_place"]
    print()
    print(format_series(times, current, x_label="day", y_label="freshness",
                        title="Figure 8(a) bottom: current collection (shadowing)",
                        max_points=12))
    gap = [i - c for i, c in zip(inplace, current)]
    print(f"in-place minus shadowed freshness: min gap {min(gap):.3f}, "
          f"max gap {max(gap):.3f} (paper: dashed line always higher)")
    assert min(gap) >= -1e-9
    assert max(gap) > 0.05
    assert result.summary["min_inplace_advantage"] >= -1e-9
    # The crawler's collection restarts from zero at each cycle boundary.
    assert crawler[0] < 0.01
    assert crawler[199] > crawler[10]


def test_fig8b_batch_crawler_with_shadowing(benchmark):
    """Figure 8(b): batch crawler — shadowing only matters while crawling."""
    policy = figure8_policies()["batch-mode with shadowing"]
    batch = policy.batch_duration_days
    spec = ExperimentSpec(
        name="bench/figure8b", kind="scenario", scenario="figure8",
        params={"variant": "batch"},
    )

    def run_spec():
        return run(spec)

    result = benchmark.pedantic(run_spec, rounds=1, iterations=1)
    times = result.series["times"]
    shadowed = result.series["current"]
    inplace = result.series["in_place"]
    print()
    rows = []
    for label, selector in (
        ("while crawling (t < 7 days)", lambda t: t < batch),
        ("while idle (t >= 7 days)", lambda t: t >= batch),
    ):
        diffs = [
            i - s for t, i, s in zip(times, inplace, shadowed) if selector(t)
        ]
        rows.append((label, f"{max(diffs):.3f}", f"{sum(diffs) / len(diffs):.3f}"))
    print(format_table(
        ["phase", "max in-place advantage", "mean in-place advantage"], rows,
        title="Figure 8(b): in-place vs shadowing for a batch crawler",
    ))

    crawling = [i - s for t, i, s in zip(times, inplace, shadowed) if t < batch]
    idle = [i - s for t, i, s in zip(times, inplace, shadowed) if t >= batch]
    # Shadowing costs freshness only during the crawl window; afterwards the
    # two curves coincide ("the dashed line and the solid line are the same
    # most of the time").
    assert max(crawling) > 0.05
    assert max(idle) < 1e-6
