"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures. They share
one synthetic web and one completed monitoring run (both session scoped), so
each individual benchmark measures the analysis it is named after rather
than the cost of rebuilding the substrate.

The benchmarks print a paper-vs-measured comparison; absolute agreement is
not expected (the substrate is a calibrated simulator, not the 1999 web),
but the shape — orderings, crossovers, who wins — should match. The recorded
outcome of a full run is kept in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiment.monitor import ActiveMonitor, ObservationLog
from repro.simweb.generator import WebGeneratorConfig, generate_web
from repro.simweb.web import SimulatedWeb

#: Scale of the benchmark web. Larger than the unit-test web so the figure
#: statistics are smoother, still small enough to run in seconds.
BENCH_WEB_CONFIG = WebGeneratorConfig(
    site_scale=0.1,
    pages_per_site=40,
    horizon_days=127.0,
    new_page_fraction=0.25,
    seed=2026,
)


@pytest.fixture(scope="session")
def bench_web() -> SimulatedWeb:
    """The synthetic web shared by all benchmarks."""
    return generate_web(BENCH_WEB_CONFIG)


@pytest.fixture(scope="session")
def bench_observation_log(bench_web: SimulatedWeb) -> ObservationLog:
    """A completed 127-day monitoring run over the benchmark web."""
    monitor = ActiveMonitor(bench_web)
    return monitor.run(start_day=0, end_day=int(bench_web.horizon_days) - 1)
