"""Figure 10 / Section 4.3 — variable (optimal) revisit frequency vs fixed.

Figure 10 summarises the design space: the incremental crawler (left column)
uses steady crawling, in-place updates and a variable revisit frequency; the
periodic crawler (right column) uses batch crawling, shadowing and a fixed
frequency. Section 4.3 quantifies the scheduling part, citing [CGM99b]:
optimising revisit frequencies improves freshness by 10-23% over the fixed
(uniform) policy.

The benchmark evaluates uniform, proportional and optimal revisit policies
over a page population drawn from the calibrated domain mix, both with the
closed-form freshness formula and with the Monte-Carlo simulator, and also
reports the full design-space comparison (crawl mode x update mode x
scheduling) that Figure 10 tabulates qualitatively.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.freshness.analytic import time_averaged_freshness
from repro.freshness.optimal_allocation import (
    optimal_revisit_frequencies,
    proportional_revisit_frequencies,
    total_freshness,
    uniform_revisit_frequencies,
)
from repro.simulation.crawler_sim import simulate_crawl_policy, simulate_revisit_allocation
from repro.simulation.scenarios import paper_table2_policies
from repro.simweb.domains import DOMAIN_PROFILES, RATE_CLASSES


def _calibrated_rate_population(n_pages: int, seed: int = 5) -> list:
    """Draw page change rates from the calibrated per-domain mixtures."""
    rng = np.random.default_rng(seed)
    total_sites = sum(p.site_count for p in DOMAIN_PROFILES.values())
    rates = []
    for profile in DOMAIN_PROFILES.values():
        share = profile.site_count / total_sites
        for _ in range(int(round(n_pages * share))):
            rate_class = RATE_CLASSES[
                rng.choice(len(RATE_CLASSES), p=np.asarray(profile.rate_mixture))
            ]
            rates.append(rate_class.rate_per_day)
    return rates


def test_fig10_revisit_policy_comparison(benchmark):
    """Variable-frequency scheduling beats fixed-frequency scheduling."""
    rates = _calibrated_rate_population(400)
    budget = len(rates) / 15.0  # on average each page can be visited every 15 days

    def run():
        allocations = {
            "fixed (uniform)": uniform_revisit_frequencies(rates, budget),
            "proportional": proportional_revisit_frequencies(rates, budget),
            "optimal (variable)": optimal_revisit_frequencies(rates, budget),
        }
        analytic = {
            name: total_freshness(rates, freqs) for name, freqs in allocations.items()
        }
        simulated = {}
        for name, freqs in allocations.items():
            intervals = [1.0 / f if f > 0 else float("inf") for f in freqs]
            simulated[name] = simulate_revisit_allocation(
                rates, intervals, duration_days=240.0, n_samples=200, seed=9
            ).mean_freshness
        return analytic, simulated

    analytic, simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    uniform = analytic["fixed (uniform)"]
    rows = [
        (
            name,
            f"{analytic[name]:.3f}",
            f"{simulated[name]:.3f}",
            f"{100.0 * (analytic[name] - uniform) / uniform:+.1f}%",
        )
        for name in analytic
    ]
    print()
    print(format_table(
        ["revisit policy", "analytic freshness", "simulated freshness",
         "vs fixed frequency"],
        rows,
        title="Section 4.3: freshness gain from variable revisit frequencies "
              "(paper cites 10-23%)",
    ))

    improvement = (analytic["optimal (variable)"] - uniform) / uniform
    assert improvement > 0.05
    assert analytic["optimal (variable)"] >= analytic["proportional"] - 1e-9
    assert abs(simulated["optimal (variable)"] - analytic["optimal (variable)"]) < 0.06


def test_fig10_design_space_summary(benchmark):
    """The qualitative Figure 10 grid, quantified with the Table 2 scenario."""
    from repro.simulation.scenarios import table2_scenario_rate

    rate = table2_scenario_rate()
    policies = paper_table2_policies()

    def run():
        return {
            name: time_averaged_freshness(policy, rate)
            for name, policy in policies.items()
        }

    freshness = benchmark.pedantic(run, rounds=1, iterations=1)
    incremental = freshness["steady / in-place"]
    periodic = freshness["batch / shadowing"]
    print()
    print(format_table(
        ["crawler archetype", "freshness (Table 2 scenario)"],
        [
            ("incremental (steady, in-place, variable freq)", f"{incremental:.3f}"),
            ("periodic (batch, shadowing, fixed freq)", f"{periodic:.3f}"),
        ],
        title="Figure 10: the incremental crawler's choices dominate on freshness",
    ))
    assert incremental >= periodic
