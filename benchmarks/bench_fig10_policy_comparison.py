"""Figure 10 / Section 4.3 — variable (optimal) revisit frequency vs fixed.

Figure 10 summarises the design space: the incremental crawler (left column)
uses steady crawling, in-place updates and a variable revisit frequency; the
periodic crawler (right column) uses batch crawling, shadowing and a fixed
frequency. Section 4.3 quantifies the scheduling part, citing [CGM99b]:
optimising revisit frequencies improves freshness by 10-23% over the fixed
(uniform) policy.

Both experiments run through the declarative API: the ``"revisit-policies"``
scenario evaluates uniform, proportional and optimal revisit policies over
one calibrated-rate population (drawn by
:func:`repro.simweb.domains.sample_calibrated_rates`) with the closed-form
freshness formula and the vectorized Monte-Carlo simulator; the ``"table2"``
scenario quantifies the full design-space comparison (crawl mode x update
mode) that Figure 10 tabulates qualitatively.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.api import ExperimentSpec, run

#: Scenario policy name -> the label Figure 10 uses for it.
POLICY_LABELS = {
    "uniform": "fixed (uniform)",
    "proportional": "proportional",
    "optimal": "optimal (variable)",
}


def test_fig10_revisit_policy_comparison(benchmark):
    """Variable-frequency scheduling beats fixed-frequency scheduling."""
    spec = ExperimentSpec(
        name="bench/revisit-policies", kind="scenario", scenario="revisit-policies"
    )

    def run_spec():
        return run(spec)

    result = benchmark.pedantic(run_spec, rounds=1, iterations=1)
    analytic = result.tables["analytic"]
    simulated = result.tables["simulated"]
    uniform = analytic["uniform"]
    rows = [
        (
            POLICY_LABELS[name],
            f"{analytic[name]:.3f}",
            f"{simulated[name]:.3f}",
            f"{100.0 * (analytic[name] - uniform) / uniform:+.1f}%",
        )
        for name in analytic
    ]
    print()
    print(format_table(
        ["revisit policy", "analytic freshness", "simulated freshness",
         "vs fixed frequency"],
        rows,
        title="Section 4.3: freshness gain from variable revisit frequencies "
              "(paper cites 10-23%)",
    ))

    improvement = (analytic["optimal"] - uniform) / uniform
    assert improvement > 0.05
    assert analytic["optimal"] >= analytic["proportional"] - 1e-9
    assert abs(simulated["optimal"] - analytic["optimal"]) < 0.06


def test_fig10_design_space_summary(benchmark):
    """The qualitative Figure 10 grid, quantified with the Table 2 scenario."""
    spec = ExperimentSpec(
        name="bench/design-space", kind="scenario", scenario="table2",
        params={"simulate": False},
    )

    def run_spec():
        return run(spec)

    result = benchmark.pedantic(run_spec, rounds=1, iterations=1)
    freshness = result.tables["analytic"]
    incremental = freshness["steady / in-place"]
    periodic = freshness["batch / shadowing"]
    print()
    print(format_table(
        ["crawler archetype", "freshness (Table 2 scenario)"],
        [
            ("incremental (steady, in-place, variable freq)", f"{incremental:.3f}"),
            ("periodic (batch, shadowing, fixed freq)", f"{periodic:.3f}"),
        ],
        title="Figure 10: the incremental crawler's choices dominate on freshness",
    ))
    assert incremental >= periodic
