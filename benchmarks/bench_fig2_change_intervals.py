"""Figure 2 — fraction of pages with a given average change interval.

Paper findings being reproduced:
* more than 20% of all pages changed at (almost) every daily visit;
* more than 40% of com pages changed every day, under 10% elsewhere;
* more than half of the edu and gov pages did not change during the whole
  four-month experiment;
* the crude overall average change interval is about four months.
"""

from __future__ import annotations

from repro.analysis.report import format_bar_chart, format_table
from repro.experiment.change_interval import (
    PAPER_FIGURE2_OVERALL,
    analyze_change_intervals,
)


def test_fig2a_overall_change_intervals(benchmark, bench_observation_log):
    """Figure 2(a): change-interval histogram over all domains."""
    analysis = benchmark.pedantic(
        lambda: analyze_change_intervals(bench_observation_log),
        rounds=1,
        iterations=1,
    )
    measured = analysis.overall_fractions()
    rows = [
        (label, f"{PAPER_FIGURE2_OVERALL[label]:.2f}", f"{measured[label]:.2f}")
        for label in measured
    ]
    print()
    print(format_table(["interval bucket", "paper (Fig 2a)", "measured"], rows,
                       title="Figure 2(a): fraction of pages per change-interval bucket"))
    print(format_bar_chart(measured, title="measured histogram"))
    print(f"crude mean change interval: paper ~120 days, "
          f"measured {analysis.mean_interval_estimate_days:.0f} days")

    assert measured["<=1day"] > 0.15, "a large share of pages changes every visit"


def test_fig2b_change_intervals_by_domain(benchmark, bench_observation_log):
    """Figure 2(b): change-interval histograms per domain."""
    analysis = benchmark.pedantic(
        lambda: analyze_change_intervals(bench_observation_log),
        rounds=1,
        iterations=1,
    )
    print()
    rows = []
    for domain in ("com", "netorg", "edu", "gov"):
        fractions = analysis.domain_fractions(domain)
        rows.append(
            (
                domain,
                f"{fractions['<=1day']:.2f}",
                f"{fractions['>4months']:.2f}",
            )
        )
    print(format_table(
        ["domain", "changed every day", "never changed (4 months)"], rows,
        title="Figure 2(b): per-domain change behaviour "
              "(paper: com > 0.40 daily; edu/gov > 0.50 static)"))

    com = analysis.domain_fractions("com")
    gov = analysis.domain_fractions("gov")
    edu = analysis.domain_fractions("edu")
    assert com["<=1day"] > 0.3
    assert gov["<=1day"] < 0.1
    assert edu[">4months"] > 0.4
    assert gov[">4months"] > 0.4
