"""Figure 7 — freshness evolution of a batch-mode vs. a steady crawler.

Paper findings being reproduced:
* the batch-mode crawler's freshness rises during each crawl and decays
  exponentially while the crawler is idle (a saw-tooth);
* the steady crawler's freshness is stable over time;
* both have the same time-averaged freshness when they revisit pages at the
  same average speed.

The experiment runs through the declarative API: the ``"figure7"`` scenario
registry entry produces both the analytic trajectories and a Monte-Carlo
simulation of the same policies, and the benchmark checks they agree.
"""

from __future__ import annotations

from repro.analysis.report import format_series, format_table
from repro.api import ExperimentSpec, run

POLICY_NAMES = ("batch-mode", "steady")


def test_fig7_trajectories_and_time_average(benchmark):
    """Figure 7(a)/(b): trajectories plus the equal-time-average claim."""
    spec = ExperimentSpec(name="bench/figure7", kind="scenario", scenario="figure7")

    def run_spec():
        return run(spec)

    result = benchmark.pedantic(run_spec, rounds=1, iterations=1)
    analytic_mean = result.tables["analytic_mean"]
    simulated_mean = result.tables["simulated_mean"]

    print()
    for name in POLICY_NAMES:
        times = result.series[f"{name}/times"]
        values = result.series[f"{name}/freshness"]
        print(format_series(times, values, x_label="day", y_label="freshness",
                            title=f"Figure 7 ({name}) analytic trajectory",
                            max_points=12))

    rows = [
        (name, f"{analytic_mean[name]:.3f}", f"{simulated_mean[name]:.3f}")
        for name in POLICY_NAMES
    ]
    print(format_table(
        ["crawler", "analytic mean freshness", "simulated mean freshness"], rows,
        title="Figure 7: batch and steady crawlers have equal time-averaged freshness",
    ))

    assert analytic_mean["batch-mode"] == analytic_mean["steady"]
    # Simulation agrees with the analytic time averages.
    for name in POLICY_NAMES:
        assert abs(simulated_mean[name] - analytic_mean[name]) < 0.05
    # Saw-tooth vs. flat: the batch trajectory oscillates, the steady one not.
    batch_values = result.series["batch-mode/freshness"]
    steady_values = result.series["steady/freshness"]
    assert max(batch_values) - min(batch_values) > 0.2
    assert max(steady_values) - min(steady_values) < 1e-9
