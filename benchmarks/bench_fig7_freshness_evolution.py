"""Figure 7 — freshness evolution of a batch-mode vs. a steady crawler.

Paper findings being reproduced:
* the batch-mode crawler's freshness rises during each crawl and decays
  exponentially while the crawler is idle (a saw-tooth);
* the steady crawler's freshness is stable over time;
* both have the same time-averaged freshness when they revisit pages at the
  same average speed.

The benchmark produces both the analytic trajectories and a Monte-Carlo
simulation of the same policies and checks they agree.
"""

from __future__ import annotations

from repro.analysis.report import format_series, format_table
from repro.freshness.analytic import freshness_trajectory, time_averaged_freshness
from repro.simulation.crawler_sim import simulate_crawl_policy
from repro.simulation.scenarios import figure7_change_rate, figure7_policies


def test_fig7_trajectories_and_time_average(benchmark):
    """Figure 7(a)/(b): trajectories plus the equal-time-average claim."""
    rate = figure7_change_rate()
    policies = figure7_policies()

    def run():
        analytic = {
            name: freshness_trajectory(policy, rate, duration_days=90.0, n_points=90)
            for name, policy in policies.items()
        }
        simulated = {
            name: simulate_crawl_policy([rate] * 300, policy, n_cycles=6, seed=7)
            for name, policy in policies.items()
        }
        return analytic, simulated

    analytic, simulated = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    for name in policies:
        times, values = analytic[name]
        print(format_series(times, values, x_label="day", y_label="freshness",
                            title=f"Figure 7 ({name}) analytic trajectory",
                            max_points=12))

    rows = []
    for name, policy in policies.items():
        rows.append(
            (
                name,
                f"{time_averaged_freshness(policy, rate):.3f}",
                f"{simulated[name].mean_freshness:.3f}",
            )
        )
    print(format_table(
        ["crawler", "analytic mean freshness", "simulated mean freshness"], rows,
        title="Figure 7: batch and steady crawlers have equal time-averaged freshness",
    ))

    batch_mean = time_averaged_freshness(policies["batch-mode"], rate)
    steady_mean = time_averaged_freshness(policies["steady"], rate)
    assert batch_mean == steady_mean
    # Simulation agrees with the analytic time averages.
    for name, policy in policies.items():
        assert abs(simulated[name].mean_freshness
                   - time_averaged_freshness(policy, rate)) < 0.05
    # Saw-tooth vs. flat: the batch trajectory oscillates, the steady one not.
    batch_values = analytic["batch-mode"][1]
    steady_values = analytic["steady"][1]
    assert max(batch_values) - min(batch_values) > 0.2
    assert max(steady_values) - min(steady_values) < 1e-9
