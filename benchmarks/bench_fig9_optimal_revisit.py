"""Figure 9 — change frequency of a page vs. its optimal revisit frequency.

The paper's counter-intuitive result (from [CGM99b]): the freshness-optimal
revisit frequency is NOT proportional to the change frequency. It rises for
slowly changing pages, peaks, and then *decreases* for pages that change too
often — those pages go stale immediately no matter what, so bandwidth is
better spent elsewhere. The paper's two-page example (p1 changes daily, p2
every second, one fetch per day available) is also reproduced.
"""

from __future__ import annotations

from repro.analysis.report import format_series, format_table
from repro.freshness.optimal_allocation import (
    optimal_frequency_curve,
    optimal_revisit_frequencies,
)


def test_fig9_optimal_revisit_curve(benchmark):
    """Figure 9: the f(lambda) curve is unimodal (rises then falls)."""
    rates = [0.002 * (1.45 ** i) for i in range(36)]

    def run():
        return optimal_frequency_curve(rates, budget=len(rates) / 20.0)

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series(rates, curve, x_label="change rate (1/day)",
                        y_label="optimal revisit frequency (1/day)",
                        title="Figure 9: optimal revisit frequency vs change frequency",
                        max_points=18))
    peak_index = curve.index(max(curve))
    print(f"peak at change rate {rates[peak_index]:.3f}/day; "
          f"frequency falls to {curve[-1]:.4f}/day for the fastest pages")

    # Shape: rises to an interior peak, then falls toward zero.
    assert 0 < peak_index < len(curve) - 1
    assert all(curve[i] <= curve[i + 1] + 1e-9 for i in range(peak_index))
    assert all(curve[i] >= curve[i + 1] - 1e-9 for i in range(peak_index, len(curve) - 1))
    assert curve[-1] < 0.5 * max(curve)


def test_fig9_two_page_example(benchmark):
    """Section 4's example: visit the daily-changing page, not the per-second one."""

    def run():
        seconds_per_day = 86400.0
        rates = [1.0, seconds_per_day]
        return optimal_revisit_frequencies(rates, budget=1.0)

    frequencies = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["page", "change rate", "optimal visits/day"],
        [
            ("p1 (changes every day)", "1/day", f"{frequencies[0]:.3f}"),
            ("p2 (changes every second)", "86400/day", f"{frequencies[1]:.6f}"),
        ],
        title="Paper's two-page example: it is better to visit p1 than p2",
    ))
    assert frequencies[0] > 0.99
    assert frequencies[1] < 0.01
